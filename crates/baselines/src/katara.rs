//! KATARA: knowledge-base powered detection.
//!
//! KATARA aligns table columns with knowledge-base relations and flags values
//! that cannot be matched. This implementation consumes the knowledge-base
//! entries exported with each dataset: a cell is flagged when its column has a
//! KB domain and the (non-missing) value does not belong to it, or when a
//! conditioned relation (e.g. country → capital) is contradicted. Columns
//! without KB coverage are never flagged, which mirrors the paper's
//! observation that KATARA detects nothing on datasets lacking a relevant
//! knowledge base.

use crate::{Baseline, BaselineInput};
use zeroed_table::value::is_missing;
use zeroed_table::ErrorMask;

/// The KATARA baseline (no configuration).
#[derive(Debug, Clone, Default)]
pub struct Katara;

impl Baseline for Katara {
    fn name(&self) -> &'static str {
        "KATARA"
    }

    fn detect(&self, input: &BaselineInput<'_>) -> ErrorMask {
        let table = input.dirty;
        let mut mask = ErrorMask::for_table(table);
        for entry in &input.metadata.kb {
            let Some(col) = table.column_index(&entry.column) else {
                continue;
            };
            let context_col = entry
                .conditioned_on
                .as_ref()
                .and_then(|(name, _)| table.column_index(name));
            for (row_idx, row) in table.rows().iter().enumerate() {
                let value = row[col].trim().to_lowercase();
                if is_missing(&value) {
                    continue;
                }
                let mut violated = !entry.valid_values.is_empty()
                    && !entry.valid_values.contains(&value);
                if !violated {
                    if let (Some((_, mapping)), Some(ctx_col)) =
                        (entry.conditioned_on.as_ref(), context_col)
                    {
                        let ctx_value = row[ctx_col].trim().to_lowercase();
                        if let Some(expected) = mapping.get(&ctx_value) {
                            violated = *expected != value;
                        }
                    }
                }
                if violated {
                    mask.set(row_idx, col, true);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use zeroed_datagen::{DatasetMetadata, KnowledgeBaseEntry};
    use zeroed_table::Table;

    fn fixture() -> (Table, DatasetMetadata) {
        let rows = vec![
            vec!["France".to_string(), "Paris".to_string()],
            vec!["France".to_string(), "Lyon".to_string()], // wrong capital
            vec!["Wakanda".to_string(), "Paris".to_string()], // unknown country
            vec!["".to_string(), "Paris".to_string()],      // missing → ignored
        ];
        let table = Table::new("t", vec!["country".into(), "capital".into()], rows).unwrap();
        let mut capital_map = HashMap::new();
        capital_map.insert("france".to_string(), "paris".to_string());
        let metadata = DatasetMetadata {
            kb: vec![
                KnowledgeBaseEntry::domain(
                    "country",
                    ["France".to_string(), "Germany".to_string()],
                ),
                KnowledgeBaseEntry {
                    column: "capital".into(),
                    valid_values: ["paris", "berlin", "lyon"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    conditioned_on: Some(("country".into(), capital_map)),
                },
            ],
            ..DatasetMetadata::default()
        };
        (table, metadata)
    }

    #[test]
    fn flags_out_of_kb_and_inconsistent_values() {
        let (table, metadata) = fixture();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        let mask = Katara.detect(&input);
        assert!(mask.get(2, 0), "unknown country flagged");
        assert!(mask.get(1, 1), "inconsistent capital flagged");
        assert!(!mask.get(0, 0));
        assert!(!mask.get(0, 1));
        assert!(!mask.get(3, 0), "missing values are not KATARA's job");
    }

    #[test]
    fn no_kb_means_no_detection() {
        let (table, _) = fixture();
        let metadata = DatasetMetadata::default();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        assert_eq!(Katara.detect(&input).error_count(), 0);
        assert_eq!(Katara.name(), "KATARA");
    }
}
