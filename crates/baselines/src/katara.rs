//! KATARA: knowledge-base powered detection.
//!
//! KATARA aligns table columns with knowledge-base relations and flags values
//! that cannot be matched. This implementation consumes the knowledge-base
//! entries exported with each dataset: a cell is flagged when its column has a
//! KB domain and the (non-missing) value does not belong to it, or when a
//! conditioned relation (e.g. country → capital) is contradicted. Columns
//! without KB coverage are never flagged, which mirrors the paper's
//! observation that KATARA detects nothing on datasets lacking a relevant
//! knowledge base.
//!
//! KB lookups run over interned [`zeroed_table::ColumnDict`]s: the
//! normalise-trim-lowercase pass, the domain-membership test and the
//! conditioned-relation lookup are each evaluated once per *distinct* value
//! code rather than once per row — the seed per-cell path re-lowercased and
//! re-hashed every cell. Only the columns the knowledge base actually
//! references are interned (and each at most once, however many entries name
//! it): a full `TableDict` over every column would cost more than the
//! per-row work it saves. [`Katara::detect_reference`] keeps the seed path
//! as the correctness oracle.

use crate::{Baseline, BaselineInput};
use std::collections::HashMap;
use zeroed_table::value::is_missing;
use zeroed_table::{ColumnDict, ErrorMask};

/// The KATARA baseline (no configuration).
#[derive(Debug, Clone, Default)]
pub struct Katara;

impl Katara {
    /// The seed per-cell implementation, kept as the correctness oracle for
    /// the interned fast path.
    pub fn detect_reference(&self, input: &BaselineInput<'_>) -> ErrorMask {
        let table = input.dirty;
        let mut mask = ErrorMask::for_table(table);
        for entry in &input.metadata.kb {
            let Some(col) = table.column_index(&entry.column) else {
                continue;
            };
            let context_col = entry
                .conditioned_on
                .as_ref()
                .and_then(|(name, _)| table.column_index(name));
            for (row_idx, row) in table.rows().iter().enumerate() {
                let value = row[col].trim().to_lowercase();
                if is_missing(&value) {
                    continue;
                }
                let mut violated = !entry.valid_values.is_empty()
                    && !entry.valid_values.contains(&value);
                if !violated {
                    if let (Some((_, mapping)), Some(ctx_col)) =
                        (entry.conditioned_on.as_ref(), context_col)
                    {
                        let ctx_value = row[ctx_col].trim().to_lowercase();
                        if let Some(expected) = mapping.get(&ctx_value) {
                            violated = *expected != value;
                        }
                    }
                }
                if violated {
                    mask.set(row_idx, col, true);
                }
            }
        }
        mask
    }
}

impl Baseline for Katara {
    fn name(&self) -> &'static str {
        "KATARA"
    }

    fn detect(&self, input: &BaselineInput<'_>) -> ErrorMask {
        let table = input.dirty;
        let mut mask = ErrorMask::for_table(table);
        if table.n_rows() == 0 {
            return mask;
        }
        // Intern and normalise exactly the columns the KB references, each
        // once — however many entries or conditioned relations name them.
        struct InternedColumn {
            dict: ColumnDict,
            /// Trimmed, lower-cased form of each distinct value (code order).
            norm: Vec<String>,
            /// Missing flag per distinct value.
            missing: Vec<bool>,
        }
        let mut columns: HashMap<usize, InternedColumn> = HashMap::new();
        for entry in &input.metadata.kb {
            for name in std::iter::once(&entry.column)
                .chain(entry.conditioned_on.as_ref().map(|(ctx, _)| ctx))
            {
                if let Some(col) = table.column_index(name) {
                    columns.entry(col).or_insert_with(|| {
                        let dict = ColumnDict::for_column(table, col);
                        let norm: Vec<String> =
                            dict.values().iter().map(|v| v.trim().to_lowercase()).collect();
                        let missing = norm.iter().map(|v| is_missing(v)).collect();
                        InternedColumn {
                            dict,
                            norm,
                            missing,
                        }
                    });
                }
            }
        }
        for entry in &input.metadata.kb {
            let Some(col) = table.column_index(&entry.column) else {
                continue;
            };
            let interned = &columns[&col];
            let context = entry.conditioned_on.as_ref().and_then(|(name, mapping)| {
                table.column_index(name).map(|ctx_col| (ctx_col, mapping))
            });

            // Entry-specific verdict per distinct value code (the domain set
            // differs per entry; the normalised values are memoised above).
            let out_of_domain: Vec<bool> = interned
                .norm
                .iter()
                .map(|v| !entry.valid_values.is_empty() && !entry.valid_values.contains(v))
                .collect();

            // Per distinct context code: the expected dependent value, if the
            // conditioned relation knows this context value.
            let expected: Option<(&InternedColumn, Vec<Option<&String>>)> =
                context.map(|(ctx_col, mapping)| {
                    let ctx = &columns[&ctx_col];
                    let per_code = ctx.norm.iter().map(|v| mapping.get(v)).collect();
                    (ctx, per_code)
                });

            for row in 0..table.n_rows() {
                let code = interned.dict.code(row) as usize;
                if interned.missing[code] {
                    continue;
                }
                let mut violated = out_of_domain[code];
                if !violated {
                    if let Some((ctx, per_code)) = &expected {
                        let ctx_code = ctx.dict.code(row) as usize;
                        if let Some(exp) = per_code[ctx_code] {
                            violated = *exp != interned.norm[code];
                        }
                    }
                }
                if violated {
                    mask.set(row, col, true);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use zeroed_datagen::{DatasetMetadata, KnowledgeBaseEntry};
    use zeroed_table::Table;

    fn fixture() -> (Table, DatasetMetadata) {
        let rows = vec![
            vec!["France".to_string(), "Paris".to_string()],
            vec!["France".to_string(), "Lyon".to_string()], // wrong capital
            vec!["Wakanda".to_string(), "Paris".to_string()], // unknown country
            vec!["".to_string(), "Paris".to_string()],      // missing → ignored
        ];
        let table = Table::new("t", vec!["country".into(), "capital".into()], rows).unwrap();
        let mut capital_map = HashMap::new();
        capital_map.insert("france".to_string(), "paris".to_string());
        let metadata = DatasetMetadata {
            kb: vec![
                KnowledgeBaseEntry::domain(
                    "country",
                    ["France".to_string(), "Germany".to_string()],
                ),
                KnowledgeBaseEntry {
                    column: "capital".into(),
                    valid_values: ["paris", "berlin", "lyon"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    conditioned_on: Some(("country".into(), capital_map)),
                },
            ],
            ..DatasetMetadata::default()
        };
        (table, metadata)
    }

    #[test]
    fn flags_out_of_kb_and_inconsistent_values() {
        let (table, metadata) = fixture();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        let mask = Katara.detect(&input);
        assert!(mask.get(2, 0), "unknown country flagged");
        assert!(mask.get(1, 1), "inconsistent capital flagged");
        assert!(!mask.get(0, 0));
        assert!(!mask.get(0, 1));
        assert!(!mask.get(3, 0), "missing values are not KATARA's job");
    }

    #[test]
    fn no_kb_means_no_detection() {
        let (table, _) = fixture();
        let metadata = DatasetMetadata::default();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        assert_eq!(Katara.detect(&input).error_count(), 0);
        assert_eq!(Katara.detect_reference(&input).error_count(), 0);
        assert_eq!(Katara.name(), "KATARA");
    }

    #[test]
    fn interned_path_matches_the_reference() {
        // The hand-built fixture plus a generated dataset with real KB
        // entries: the interned fast path must be bit-identical to the seed
        // per-cell oracle on both.
        let (table, metadata) = fixture();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        assert_eq!(Katara.detect(&input), Katara.detect_reference(&input));

        for spec in [
            zeroed_datagen::DatasetSpec::Hospital,
            zeroed_datagen::DatasetSpec::Flights,
        ] {
            let ds = zeroed_datagen::generate(
                spec,
                &zeroed_datagen::GenerateOptions {
                    n_rows: 400,
                    seed: 5,
                    error_spec: None,
                },
            );
            let input = BaselineInput {
                dirty: &ds.dirty,
                metadata: &ds.metadata,
                labeled: &[],
            };
            let interned = Katara.detect(&input);
            assert_eq!(interned, Katara.detect_reference(&input), "{spec:?}");
            assert!(
                interned.error_count() > 0,
                "{spec:?}: the generated KB must flag something for the bench to mean anything"
            );
        }
    }

    #[test]
    fn empty_table_is_a_no_op_on_both_paths() {
        let table = Table::empty("e", vec!["country".into(), "capital".into()]);
        let (_, metadata) = fixture();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        assert_eq!(Katara.detect(&input).error_count(), 0);
        assert_eq!(Katara.detect_reference(&input).error_count(), 0);
    }
}
