//! dBoost: statistical outlier detection over numeric and formatted columns.
//!
//! The original dBoost fits simple statistical models (Gaussians, histograms,
//! partitioned models) per column and flags low-likelihood cells. This
//! implementation keeps the two models that matter for the benchmark error
//! types it targets (outliers and pattern/rule side effects): a Gaussian
//! z-score test on numeric columns and a rare-format test on textual columns.
//! Missing values and typos are out of scope by design (paper Table I).

use crate::{Baseline, BaselineInput};
use zeroed_features::pattern::{generalize, Level};
use zeroed_table::value::parse_numeric;
use zeroed_table::ErrorMask;
use std::collections::HashMap;

/// Configuration of the dBoost baseline.
#[derive(Debug, Clone)]
pub struct DBoost {
    /// Z-score above which a numeric value is an outlier (dBoost's common
    /// configuration uses 3 standard deviations).
    pub z_threshold: f64,
    /// Formats rarer than this fraction of a column are flagged.
    pub pattern_threshold: f64,
}

impl Default for DBoost {
    fn default() -> Self {
        Self {
            z_threshold: 3.0,
            pattern_threshold: 0.02,
        }
    }
}

impl Baseline for DBoost {
    fn name(&self) -> &'static str {
        "dBoost"
    }

    fn detect(&self, input: &BaselineInput<'_>) -> ErrorMask {
        let table = input.dirty;
        let mut mask = ErrorMask::for_table(table);
        let n_rows = table.n_rows();
        if n_rows == 0 {
            return mask;
        }
        for col in 0..table.n_cols() {
            let values: Vec<&str> = table.column_refs(col);
            // Gaussian model on numeric columns.
            let numerics: Vec<f64> = values.iter().filter_map(|v| parse_numeric(v)).collect();
            let is_numeric_col = numerics.len() as f64 >= 0.9 * n_rows as f64;
            let gaussian = if is_numeric_col && numerics.len() > 1 {
                let mean = numerics.iter().sum::<f64>() / numerics.len() as f64;
                let var = numerics.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
                    / numerics.len() as f64;
                Some((mean, var.sqrt().max(1e-9)))
            } else {
                None
            };
            // Histogram of L2 formats.
            let mut pattern_counts: HashMap<String, usize> = HashMap::new();
            for v in &values {
                *pattern_counts
                    .entry(generalize(v, Level::L2))
                    .or_insert(0) += 1;
            }
            for (row, v) in values.iter().enumerate() {
                let mut flagged = false;
                if let (Some((mean, std)), Some(x)) = (gaussian, parse_numeric(v)) {
                    if ((x - mean) / std).abs() > self.z_threshold {
                        flagged = true;
                    }
                }
                if !flagged {
                    let count = pattern_counts[&generalize(v, Level::L2)];
                    if (count as f64 / n_rows as f64) < self.pattern_threshold {
                        flagged = true;
                    }
                }
                if flagged {
                    mask.set(row, col, true);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_datagen::DatasetMetadata;
    use zeroed_table::Table;

    fn input_fixture() -> (Table, DatasetMetadata) {
        let mut rows: Vec<Vec<String>> = (0..100)
            .map(|i| vec![format!("{}", 50_000 + (i % 10) * 100), "7:45 am".to_string()])
            .collect();
        rows[3][0] = "5000000".into(); // numeric outlier
        rows[8][1] = "0745".into(); // rare format
        (
            Table::new("t", vec!["salary".into(), "time".into()], rows).unwrap(),
            DatasetMetadata::default(),
        )
    }

    #[test]
    fn flags_numeric_outliers_and_rare_formats() {
        let (table, metadata) = input_fixture();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        let mask = DBoost::default().detect(&input);
        assert!(mask.get(3, 0), "numeric outlier should be flagged");
        assert!(mask.get(8, 1), "rare format should be flagged");
        assert!(!mask.get(0, 0));
        assert!(!mask.get(0, 1));
        assert!(mask.error_count() < 10);
    }

    #[test]
    fn empty_table_yields_empty_mask() {
        let table = Table::empty("e", vec!["a".into()]);
        let metadata = DatasetMetadata::default();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        assert_eq!(DBoost::default().detect(&input).error_count(), 0);
        assert_eq!(DBoost::default().name(), "dBoost");
    }
}
