//! dBoost: statistical outlier detection over numeric and formatted columns.
//!
//! The original dBoost fits simple statistical models (Gaussians, histograms,
//! partitioned models) per column and flags low-likelihood cells. This
//! implementation keeps the two models that matter for the benchmark error
//! types it targets (outliers and pattern/rule side effects): a Gaussian
//! z-score test on numeric columns and a rare-format test on textual columns.
//! Missing values and typos are out of scope by design (paper Table I).
//!
//! The hot path consumes the shared distinct-value machinery
//! ([`zeroed_table::TableDict`] via the code-keyed
//! [`zeroed_features::FrequencyModel`]): numeric parsing, format
//! generalisation and the per-format histogram all run once per *distinct*
//! value and are scattered to rows by code, instead of re-hashing owned
//! strings per cell as the seed implementation did.
//! [`DBoost::detect_reference`] keeps the seed per-cell path as the
//! correctness oracle (same discipline as `zeroed_features::reference`).

use crate::{Baseline, BaselineInput};
use std::collections::HashMap;
use std::sync::Arc;
use zeroed_features::pattern::{generalize, Level};
use zeroed_features::FrequencyModel;
use zeroed_table::value::parse_numeric;
use zeroed_table::ErrorMask;

/// Configuration of the dBoost baseline.
#[derive(Debug, Clone)]
pub struct DBoost {
    /// Z-score above which a numeric value is an outlier (dBoost's common
    /// configuration uses 3 standard deviations).
    pub z_threshold: f64,
    /// Formats rarer than this fraction of a column are flagged.
    pub pattern_threshold: f64,
}

impl Default for DBoost {
    fn default() -> Self {
        Self {
            z_threshold: 3.0,
            pattern_threshold: 0.02,
        }
    }
}

impl DBoost {
    /// The seed per-cell implementation: recomputes numeric parses and format
    /// generalisations for every cell over string-keyed histograms. Kept as
    /// the correctness oracle for the interned fast path and as the slow side
    /// of the `bench_features` baselines ledger.
    pub fn detect_reference(&self, input: &BaselineInput<'_>) -> ErrorMask {
        let table = input.dirty;
        let mut mask = ErrorMask::for_table(table);
        let n_rows = table.n_rows();
        if n_rows == 0 {
            return mask;
        }
        for col in 0..table.n_cols() {
            let values: Vec<&str> = table.column_refs(col);
            // Gaussian model on numeric columns.
            let numerics: Vec<f64> = values.iter().filter_map(|v| parse_numeric(v)).collect();
            let is_numeric_col = numerics.len() as f64 >= 0.9 * n_rows as f64;
            let gaussian = if is_numeric_col && numerics.len() > 1 {
                let mean = numerics.iter().sum::<f64>() / numerics.len() as f64;
                let var = numerics.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
                    / numerics.len() as f64;
                Some((mean, var.sqrt().max(1e-9)))
            } else {
                None
            };
            // Histogram of L2 formats.
            let mut pattern_counts: HashMap<String, usize> = HashMap::new();
            for v in &values {
                *pattern_counts
                    .entry(generalize(v, Level::L2))
                    .or_insert(0) += 1;
            }
            for (row, v) in values.iter().enumerate() {
                let mut flagged = false;
                if let (Some((mean, std)), Some(x)) = (gaussian, parse_numeric(v)) {
                    if ((x - mean) / std).abs() > self.z_threshold {
                        flagged = true;
                    }
                }
                if !flagged {
                    let count = pattern_counts[&generalize(v, Level::L2)];
                    if (count as f64 / n_rows as f64) < self.pattern_threshold {
                        flagged = true;
                    }
                }
                if flagged {
                    mask.set(row, col, true);
                }
            }
        }
        mask
    }
}

impl Baseline for DBoost {
    fn name(&self) -> &'static str {
        "dBoost"
    }

    fn detect(&self, input: &BaselineInput<'_>) -> ErrorMask {
        let table = input.dirty;
        let mut mask = ErrorMask::for_table(table);
        let n_rows = table.n_rows();
        if n_rows == 0 {
            return mask;
        }
        // Shared interned machinery: one dictionary pass, format histograms
        // memoised per distinct code inside the frequency model.
        let fm = FrequencyModel::from_dict(Arc::new(table.intern()));
        for col in 0..table.n_cols() {
            let dict = fm.dict().column(col);
            let n_distinct = dict.n_distinct();
            // Numeric parse once per distinct value; occurrence counts come
            // from the dictionary, so the weighted moments equal the seed's
            // per-row accumulation.
            let parsed: Vec<Option<f64>> = dict.values().iter().map(|v| parse_numeric(v)).collect();
            let mut numeric_rows = 0usize;
            let mut sum = 0.0f64;
            for (code, x) in parsed.iter().enumerate() {
                if let Some(x) = x {
                    let c = dict.count(code as u32) as usize;
                    numeric_rows += c;
                    sum += x * c as f64;
                }
            }
            let is_numeric_col = numeric_rows as f64 >= 0.9 * n_rows as f64;
            let gaussian = if is_numeric_col && numeric_rows > 1 {
                let mean = sum / numeric_rows as f64;
                let var = parsed
                    .iter()
                    .enumerate()
                    .filter_map(|(code, x)| {
                        x.map(|x| (x - mean).powi(2) * dict.count(code as u32) as f64)
                    })
                    .sum::<f64>()
                    / numeric_rows as f64;
                Some((mean, var.sqrt().max(1e-9)))
            } else {
                None
            };
            // Decide once per distinct value, scatter by code.
            let flagged: Vec<bool> = (0..n_distinct)
                .map(|code| {
                    if let (Some((mean, std)), Some(x)) = (gaussian, parsed[code]) {
                        if ((x - mean) / std).abs() > self.z_threshold {
                            return true;
                        }
                    }
                    fm.pattern_frequency_code(col, code as u32, Level::L2)
                        < self.pattern_threshold
                })
                .collect();
            for (row, &code) in dict.codes().iter().enumerate() {
                if flagged[code as usize] {
                    mask.set(row, col, true);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_datagen::DatasetMetadata;
    use zeroed_table::Table;

    fn input_fixture() -> (Table, DatasetMetadata) {
        let mut rows: Vec<Vec<String>> = (0..100)
            .map(|i| vec![format!("{}", 50_000 + (i % 10) * 100), "7:45 am".to_string()])
            .collect();
        rows[3][0] = "5000000".into(); // numeric outlier
        rows[8][1] = "0745".into(); // rare format
        (
            Table::new("t", vec!["salary".into(), "time".into()], rows).unwrap(),
            DatasetMetadata::default(),
        )
    }

    #[test]
    fn flags_numeric_outliers_and_rare_formats() {
        let (table, metadata) = input_fixture();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        let mask = DBoost::default().detect(&input);
        assert!(mask.get(3, 0), "numeric outlier should be flagged");
        assert!(mask.get(8, 1), "rare format should be flagged");
        assert!(!mask.get(0, 0));
        assert!(!mask.get(0, 1));
        assert!(mask.error_count() < 10);
    }

    #[test]
    fn interned_path_matches_the_reference() {
        let (table, metadata) = input_fixture();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        let detector = DBoost::default();
        assert_eq!(detector.detect(&input), detector.detect_reference(&input));
    }

    #[test]
    fn empty_table_yields_empty_mask() {
        let table = Table::empty("e", vec!["a".into()]);
        let metadata = DatasetMetadata::default();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        assert_eq!(DBoost::default().detect(&input).error_count(), 0);
        assert_eq!(DBoost::default().detect_reference(&input).error_count(), 0);
        assert_eq!(DBoost::default().name(), "dBoost");
    }
}
