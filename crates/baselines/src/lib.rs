//! # zeroed-baselines
//!
//! The six baseline error-detection methods the ZeroED paper compares against
//! (Table III):
//!
//! * [`DBoost`] — statistical outlier detection (Gaussian models on numeric
//!   columns plus rare-format detection), following the dBoost tool;
//! * [`Nadeef`] — violations of manually supplied integrity constraints
//!   (functional dependencies) and format rules;
//! * [`Katara`] — knowledge-base lookups: values outside the curated domains
//!   are flagged;
//! * [`Raha`] — the configuration-free ensemble: many cheap detection
//!   strategies become per-cell feature vectors, cells are clustered per
//!   column, a handful of user-labelled tuples are propagated through the
//!   clusters, and a classifier predicts the rest;
//! * [`ActiveClean`] — record-level dirty detection with a convex model
//!   trained on a few labelled records;
//! * [`FmEd`] — the LLM prompt-per-tuple detector ("can foundation models
//!   wrangle your data?"-style), which queries an [`zeroed_llm::LlmClient`]
//!   for every tuple in isolation.
//!
//! The manual-criteria baselines receive their constraints, patterns and
//! knowledge bases from [`zeroed_datagen::DatasetMetadata`], mirroring how the
//! paper takes them from the datasets' public repositories. The manual-label
//! baselines receive a small set of labelled tuples (the paper uses 2 by
//! default, and sweeps 1–45 in Fig. 6).

pub mod activeclean;
pub mod dboost;
pub mod fm_ed;
pub mod katara;
pub mod nadeef;
pub mod raha;

pub use activeclean::ActiveClean;
pub use dboost::DBoost;
pub use fm_ed::FmEd;
pub use katara::Katara;
pub use nadeef::Nadeef;
pub use raha::Raha;

use zeroed_datagen::DatasetMetadata;
use zeroed_table::{ErrorMask, Table};

/// A tuple labelled by the (hypothetical) human expert: the row index and one
/// `is_error` flag per attribute.
#[derive(Debug, Clone)]
pub struct LabeledTuple {
    /// Row index of the labelled tuple.
    pub row: usize,
    /// Per-attribute error flags.
    pub flags: Vec<bool>,
}

impl LabeledTuple {
    /// Builds labelled tuples for the given rows by reading the ground-truth
    /// mask — the stand-in for the paper's human annotator.
    pub fn from_mask(mask: &ErrorMask, rows: &[usize]) -> Vec<LabeledTuple> {
        rows.iter()
            .map(|&row| LabeledTuple {
                row,
                flags: (0..mask.n_cols()).map(|col| mask.get(row, col)).collect(),
            })
            .collect()
    }
}

/// Everything a baseline may consume. Individual baselines use only the parts
/// their paper-described counterpart has access to.
#[derive(Clone, Copy)]
pub struct BaselineInput<'a> {
    /// The dirty table.
    pub dirty: &'a Table,
    /// Manually curated constraints/patterns/knowledge bases (criteria-based
    /// baselines only).
    pub metadata: &'a DatasetMetadata,
    /// A small number of human-labelled tuples (label-based baselines only).
    pub labeled: &'a [LabeledTuple],
}

/// The common interface of all baselines.
pub trait Baseline {
    /// Method name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Detects errors, returning one flag per cell.
    fn detect(&self, input: &BaselineInput<'_>) -> ErrorMask;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_tuples_read_the_mask() {
        let mut mask = ErrorMask::new(3, 2);
        mask.set(1, 0, true);
        let labeled = LabeledTuple::from_mask(&mask, &[0, 1]);
        assert_eq!(labeled.len(), 2);
        assert_eq!(labeled[0].flags, vec![false, false]);
        assert_eq!(labeled[1].flags, vec![true, false]);
    }
}
