//! # zeroed-baselines
//!
//! The six baseline error-detection methods the ZeroED paper compares against
//! (Table III):
//!
//! * [`DBoost`] — statistical outlier detection (Gaussian models on numeric
//!   columns plus rare-format detection), following the dBoost tool;
//! * [`Nadeef`] — violations of manually supplied integrity constraints
//!   (functional dependencies) and format rules;
//! * [`Katara`] — knowledge-base lookups: values outside the curated domains
//!   are flagged;
//! * [`Raha`] — the configuration-free ensemble: many cheap detection
//!   strategies become per-cell feature vectors, cells are clustered per
//!   column, a handful of user-labelled tuples are propagated through the
//!   clusters, and a classifier predicts the rest;
//! * [`ActiveClean`] — record-level dirty detection with a convex model
//!   trained on a few labelled records;
//! * [`FmEd`] — the LLM prompt-per-tuple detector ("can foundation models
//!   wrangle your data?"-style), which queries an [`zeroed_llm::LlmClient`]
//!   for every tuple in isolation.
//!
//! The manual-criteria baselines receive their constraints, patterns and
//! knowledge bases from [`zeroed_datagen::DatasetMetadata`], mirroring how the
//! paper takes them from the datasets' public repositories. The manual-label
//! baselines receive a small set of labelled tuples (the paper uses 2 by
//! default, and sweeps 1–45 in Fig. 6).

pub mod activeclean;
pub mod dboost;
pub mod fm_ed;
pub mod katara;
pub mod nadeef;
pub mod raha;

pub use activeclean::ActiveClean;
pub use dboost::DBoost;
pub use fm_ed::FmEd;
pub use katara::Katara;
pub use nadeef::Nadeef;
pub use raha::Raha;

use zeroed_datagen::DatasetMetadata;
use zeroed_table::{ErrorMask, Table};

/// A tuple labelled by the (hypothetical) human expert: the row index and one
/// `is_error` flag per attribute.
#[derive(Debug, Clone)]
pub struct LabeledTuple {
    /// Row index of the labelled tuple.
    pub row: usize,
    /// Per-attribute error flags.
    pub flags: Vec<bool>,
}

impl LabeledTuple {
    /// Builds labelled tuples for the given rows by reading the ground-truth
    /// mask — the stand-in for the paper's human annotator.
    pub fn from_mask(mask: &ErrorMask, rows: &[usize]) -> Vec<LabeledTuple> {
        rows.iter()
            .map(|&row| LabeledTuple {
                row,
                flags: (0..mask.n_cols()).map(|col| mask.get(row, col)).collect(),
            })
            .collect()
    }

    /// A labelling budget with both classes represented: the first `n` rows
    /// that contain errors plus the first `n` row indices outright (mostly
    /// clean), labelled from the ground-truth mask. This is the deterministic
    /// recipe the Fig. 6 style sweeps, the interning-equivalence suite and
    /// the `bench_features` ledger all share — one definition, so they can
    /// never silently measure different inputs.
    pub fn mixed_from_mask(mask: &ErrorMask, n: usize) -> Vec<LabeledTuple> {
        let error_rows: Vec<usize> = (0..mask.n_rows())
            .filter(|&row| (0..mask.n_cols()).any(|col| mask.get(row, col)))
            .take(n)
            .collect();
        // The clean half is clamped to rows that exist (a budget larger than
        // the table degrades to "label everything available") and excludes
        // rows the error half already took, so every tuple is distinct and
        // the budget really is at most n + n labels.
        let rows: Vec<usize> = error_rows
            .iter()
            .copied()
            .chain((0..n.min(mask.n_rows())).filter(|row| !error_rows.contains(row)))
            .collect();
        Self::from_mask(mask, &rows)
    }
}

/// Everything a baseline may consume. Individual baselines use only the parts
/// their paper-described counterpart has access to.
#[derive(Clone, Copy)]
pub struct BaselineInput<'a> {
    /// The dirty table.
    pub dirty: &'a Table,
    /// Manually curated constraints/patterns/knowledge bases (criteria-based
    /// baselines only).
    pub metadata: &'a DatasetMetadata,
    /// A small number of human-labelled tuples (label-based baselines only).
    pub labeled: &'a [LabeledTuple],
}

/// The common interface of all baselines.
pub trait Baseline {
    /// Method name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Detects errors, returning one flag per cell.
    fn detect(&self, input: &BaselineInput<'_>) -> ErrorMask;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_tuples_read_the_mask() {
        let mut mask = ErrorMask::new(3, 2);
        mask.set(1, 0, true);
        let labeled = LabeledTuple::from_mask(&mask, &[0, 1]);
        assert_eq!(labeled.len(), 2);
        assert_eq!(labeled[0].flags, vec![false, false]);
        assert_eq!(labeled[1].flags, vec![true, false]);
    }

    #[test]
    fn mixed_budget_covers_error_and_clean_rows_and_clamps_to_the_table() {
        let mut mask = ErrorMask::new(4, 2);
        mask.set(2, 1, true);
        let labeled = LabeledTuple::mixed_from_mask(&mask, 2);
        // One error row exists (row 2), plus the first two rows outright.
        let rows: Vec<usize> = labeled.iter().map(|l| l.row).collect();
        assert_eq!(rows, vec![2, 0, 1]);
        // A budget larger than the table degrades gracefully instead of
        // indexing past the mask, and never labels a row twice.
        let oversized = LabeledTuple::mixed_from_mask(&mask, 20);
        assert!(oversized.iter().all(|l| l.row < 4));
        let mut seen: Vec<usize> = oversized.iter().map(|l| l.row).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), oversized.len(), "all labelled rows distinct");
        assert_eq!(oversized.len(), 4, "every row labelled exactly once");
    }
}
