//! The interned dBoost / NADEEF / KATARA / Raha fast paths must reproduce
//! the seed per-cell reference implementations bit-for-bit on real generated
//! benchmark data (duplicate-heavy columns, injected errors of all five
//! types).

use zeroed_baselines::{Baseline, BaselineInput, DBoost, Katara, LabeledTuple, Nadeef, Raha};
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};

fn check_dataset(spec: DatasetSpec, rows: usize, seed: u64) {
    let ds = generate(
        spec,
        &GenerateOptions {
            n_rows: rows,
            seed,
            error_spec: None,
        },
    );
    let input = BaselineInput {
        dirty: &ds.dirty,
        metadata: &ds.metadata,
        labeled: &[],
    };

    let dboost = DBoost::default();
    assert_eq!(
        dboost.detect(&input),
        dboost.detect_reference(&input),
        "dBoost mismatch on {}",
        spec.name()
    );

    for nadeef in [Nadeef::default(), Nadeef::with_all_rules()] {
        assert_eq!(
            nadeef.detect(&input),
            nadeef.detect_reference(&input),
            "NADEEF ({}/{} rules) mismatch on {}",
            nadeef.max_fds,
            nadeef.max_patterns,
            spec.name()
        );
    }

    assert_eq!(
        Katara.detect(&input),
        Katara.detect_reference(&input),
        "KATARA mismatch on {}",
        spec.name()
    );

    // Raha needs labelled tuples (its detection is label-propagated): label
    // a mix of error rows and clean rows, as the Fig. 6 sweeps do.
    let labels = LabeledTuple::mixed_from_mask(&ds.mask, 10);
    let labeled_input = BaselineInput {
        dirty: &ds.dirty,
        metadata: &ds.metadata,
        labeled: &labels,
    };
    let raha = Raha::default();
    assert_eq!(
        raha.detect(&labeled_input),
        raha.detect_reference(&labeled_input),
        "Raha mismatch on {}",
        spec.name()
    );
}

#[test]
fn interned_baseline_paths_match_reference_on_benchmarks() {
    for (spec, seed) in [
        (DatasetSpec::Hospital, 7),
        (DatasetSpec::Flights, 11),
        (DatasetSpec::Beers, 23),
    ] {
        check_dataset(spec, 1_500, seed);
    }
}
