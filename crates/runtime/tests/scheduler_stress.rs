//! Scheduler stress tests: bounded-queue saturation with hostile workloads.
//!
//! The pipeline trusts [`zeroed_runtime::Scheduler`] with two guarantees that
//! only matter under pressure: results come back in task order no matter how
//! workers interleave, and nothing — not a saturated queue, not an erroring
//! task, not a panicking worker — can deadlock a batch. Each test here runs
//! under a watchdog so a regression surfaces as a clean failure instead of a
//! hung CI job.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;
use zeroed_runtime::{RuntimeConfig, Scheduler};

/// Generous CI watchdog: the workloads below finish in well under a second on
/// one core; a minute means a deadlock.
const WATCHDOG: Duration = Duration::from_secs(60);

/// Runs `f` on a helper thread and panics if it does not finish in time.
/// A panic inside `f` is rethrown with its original payload (so assertion
/// failures read as themselves, not as deadlocks); on a true timeout the
/// runaway thread is leaked — the test is failing anyway.
fn with_watchdog<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(value) => {
            handle.join().expect("stress worker panicked after sending");
            value
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(panic) => std::panic::resume_unwind(panic),
            Ok(_) => panic!("stress worker exited without delivering a result"),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("scheduler deadlocked: no result within {WATCHDOG:?}")
        }
    }
}

fn scheduler(workers: usize, queue_capacity: usize, max_retries: usize) -> Scheduler {
    Scheduler::from_config(&RuntimeConfig {
        workers,
        queue_capacity,
        max_retries,
        ..RuntimeConfig::default()
    })
}

#[test]
fn saturated_tiny_queue_preserves_task_order() {
    with_watchdog(|| {
        // 2000 tasks through a 1-slot queue on 8 workers: the producer blocks
        // on nearly every push, workers contend on nearly every pop.
        let s = scheduler(8, 1, 0);
        let out = s.run(2000, |i| {
            if i % 97 == 0 {
                // A sprinkle of slow tasks to force reordering pressure.
                std::thread::sleep(Duration::from_micros(200));
            }
            i * 31
        });
        assert_eq!(out.len(), 2000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 31, "task {i} out of order");
        }
        assert_eq!(s.stats().tasks, 2000);
    });
}

#[test]
fn erroring_tasks_respect_the_retry_cap_exactly() {
    with_watchdog(|| {
        let max_retries = 3;
        let s = scheduler(4, 2, max_retries);
        let n = 200usize;
        let attempts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let attempts = Arc::new(attempts);
        let a = Arc::clone(&attempts);
        // Tasks divisible by 3 always fail; tasks divisible by 5 (not 3)
        // succeed on their final attempt; the rest succeed immediately.
        let out = s.run_fallible(n, move |i| {
            let attempt = a[i].fetch_add(1, Ordering::SeqCst);
            if i % 3 == 0 {
                Err(format!("task {i} permanently broken"))
            } else if i % 5 == 0 && attempt < max_retries {
                Err(format!("task {i} flaky"))
            } else {
                Ok(i)
            }
        });
        let mut expected_retries = 0u64;
        for i in 0..n {
            let tries = attempts[i].load(Ordering::SeqCst);
            if i % 3 == 0 {
                assert_eq!(out[i], Err(format!("task {i} permanently broken")));
                assert_eq!(tries, 1 + max_retries, "task {i} must exhaust its budget");
            } else if i % 5 == 0 {
                assert_eq!(out[i], Ok(i), "flaky task {i} must succeed eventually");
                assert_eq!(tries, 1 + max_retries, "task {i} succeeds on the last try");
            } else {
                assert_eq!(out[i], Ok(i));
                assert_eq!(tries, 1, "healthy task {i} must not be retried");
            }
            expected_retries += (tries - 1) as u64;
        }
        assert_eq!(s.stats().retries, expected_retries, "retry accounting");
    });
}

#[test]
fn panicking_worker_aborts_the_batch_without_deadlock() {
    with_watchdog(|| {
        // Workers die on task 5 while the producer is wedged against a full
        // 1-slot queue; the panic guard must close the queue so the producer
        // bails and the scope join rethrows instead of hanging.
        let s = scheduler(2, 1, 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.run(5000, |i| {
                if i == 5 {
                    panic!("worker died mid-batch");
                }
                i
            })
        }));
        assert!(result.is_err(), "the worker panic must propagate");
    });
}

#[test]
fn every_worker_panicking_still_terminates() {
    with_watchdog(|| {
        let s = scheduler(8, 1, 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.run(1000, |i: usize| -> usize { panic!("task {i}") })
        }));
        assert!(result.is_err());
    });
}

#[test]
fn panics_interleaved_with_errors_neither_hang_nor_corrupt_results() {
    with_watchdog(|| {
        // First a poisoned batch, then a healthy one on the *same* scheduler:
        // a panicked batch must leave no residue (closed queues are per-run).
        let s = scheduler(4, 2, 1);
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.run_fallible(300, |i| {
                if i == 150 {
                    panic!("poison");
                }
                if i % 2 == 0 {
                    Err("even tasks error")
                } else {
                    Ok(i)
                }
            })
        }));
        assert!(poisoned.is_err());

        let healthy = s.run_fallible(300, |i| {
            if i % 2 == 0 {
                Err("even tasks error")
            } else {
                Ok(i)
            }
        });
        for (i, r) in healthy.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(*r, Err("even tasks error"));
            } else {
                assert_eq!(*r, Ok(i));
            }
        }
    });
}

#[test]
fn concurrent_batches_on_one_scheduler_stay_isolated() {
    with_watchdog(|| {
        // The pipeline shares one scheduler across stages; concurrent run()
        // calls from different threads must not cross results.
        let s = Arc::new(scheduler(4, 4, 0));
        let mut handles = Vec::new();
        for batch in 0..4u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let out = s.run(500, move |i| batch * 10_000 + i as u64);
                (batch, out)
            }));
        }
        for h in handles {
            let (batch, out) = h.join().unwrap();
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, batch * 10_000 + i as u64);
            }
        }
        assert_eq!(s.stats().tasks, 2000);
        assert_eq!(s.stats().batches, 4);
    });
}
