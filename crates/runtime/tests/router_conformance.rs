//! Router conformance suite: multi-backend routing must be invisible in the
//! detection result.
//!
//! The contract under test: for **every** fault schedule (hard errors,
//! timeouts, latency slow-tails, mixtures), with hedging on or off and any
//! backend count, a routed concurrent+cached detection produces a mask
//! **bit-identical** to a single-backend sequential oracle, and the token
//! ledgers reconcile exactly:
//!
//! ```text
//! sequential total  =  Σ per-backend useful tokens  +  cache savings
//! router spend      =  Σ per-backend useful tokens  +  hedge_waste
//! ```
//!
//! Breaker trips, failovers and fail-open executions may shuffle *who* serves
//! a request, but never lose one and never duplicate one — asserted through
//! request-count conservation on the same ledgers.

use zeroed_core::{RuntimeConfig, ZeroEd, ZeroEdConfig};
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
use zeroed_llm::{FaultSchedule, LlmClient, SimLlm};
use zeroed_runtime::{RouterConfig, RouterLlm};

fn dataset() -> zeroed_datagen::GeneratedDataset {
    generate(
        DatasetSpec::Beers,
        &GenerateOptions {
            n_rows: 160,
            seed: 5,
            error_spec: None,
        },
    )
}

fn oracle_llm(ds: &zeroed_datagen::GeneratedDataset, seed: u64) -> SimLlm {
    let types: Vec<_> = ds
        .injected
        .iter()
        .map(|e| ((e.row, e.col), e.error_type))
        .collect();
    SimLlm::default_model(seed)
        .with_oracle(ds.mask.clone())
        .with_error_types(types)
}

fn config() -> ZeroEdConfig {
    ZeroEdConfig {
        label_rate: 0.08,
        ..ZeroEdConfig::fast()
    }
}

/// The fault matrix: name → per-backend schedule generator (`i` is the
/// backend index, so replicas fault on statistically disjoint request sets).
fn schedules() -> Vec<(&'static str, fn(usize) -> FaultSchedule)> {
    vec![
        ("healthy", |i| FaultSchedule::healthy(i as u64)),
        ("errors", |i| FaultSchedule {
            seed: 100 + i as u64,
            error_rate: 0.3,
            ..FaultSchedule::healthy(0)
        }),
        ("timeouts", |i| FaultSchedule {
            seed: 200 + i as u64,
            timeout_rate: 0.3,
            ..FaultSchedule::healthy(0)
        }),
        ("slow_tail", |i| {
            FaultSchedule::slow_tail(300 + i as u64, 0.5, 5.0)
        }),
        ("mixed", |i| FaultSchedule {
            seed: 400 + i as u64,
            error_rate: 0.15,
            timeout_rate: 0.15,
            slow_tail_rate: 0.25,
            slow_tail_ms: 5.0,
        }),
    ]
}

struct Oracle {
    ds: zeroed_datagen::GeneratedDataset,
    mask: zeroed_table::ErrorMask,
    requests: usize,
    tokens: usize,
}

fn sequential_oracle() -> Oracle {
    let ds = dataset();
    let llm = oracle_llm(&ds, 5);
    let outcome = ZeroEd::new(config().sequential_runtime()).detect(&ds.dirty, &llm);
    let usage = llm.ledger().usage();
    Oracle {
        mask: outcome.mask,
        requests: usage.requests,
        tokens: usage.total(),
        ds,
    }
}

/// Runs one matrix cell and asserts the full conformance contract.
fn check_cell(oracle: &Oracle, n_backends: usize, schedule: fn(usize) -> FaultSchedule, hedge: bool) {
    let sims: Vec<SimLlm> = (0..n_backends)
        .map(|i| oracle_llm(&oracle.ds, 5).with_faults(schedule(i)))
        .collect();
    let clients: Vec<&dyn LlmClient> = sims.iter().map(|s| s as &dyn LlmClient).collect();
    let mut router_config = RouterConfig::for_backends(n_backends);
    router_config.hedge.enabled = hedge;
    let detector = ZeroEd::new(
        config()
            .with_runtime(RuntimeConfig {
                workers: 4,
                ..RuntimeConfig::default()
            })
            .with_router(router_config),
    );
    let router = RouterLlm::from_runtime(&detector.config().runtime, clients);
    let outcome = detector.detect_routed(&oracle.ds.dirty, &router);
    let label = format!("backends={n_backends} hedge={hedge}");

    // 1. Bit-identical mask under every fault schedule.
    assert_eq!(
        oracle.mask, outcome.mask,
        "{label}: routed mask diverged from the sequential oracle"
    );

    // 2. Ledger reconciliation: useful tokens + cache savings equal the
    //    sequential bill; the router's own ledger agrees with the backends.
    let backend_tokens: usize = sims.iter().map(|s| s.ledger().usage().total()).sum();
    let backend_requests: usize = sims.iter().map(|s| s.ledger().usage().requests).sum();
    assert_eq!(
        backend_tokens + outcome.stats.cache_tokens_saved,
        oracle.tokens,
        "{label}: per-backend tokens + cache savings must equal the sequential total"
    );
    assert_eq!(
        router.ledger().usage().total(),
        backend_tokens,
        "{label}: the router ledger must mirror the backend ledgers"
    );
    let stats = router.stats();
    assert_eq!(
        stats.tokens() as usize, backend_tokens,
        "{label}: router per-backend stats must mirror the backend ledgers"
    );
    // Hedge waste is charged iff hedges fired, and a cancelled loser can cost
    // at most what the executed calls did (one duplicate per hedged request).
    assert_eq!(
        stats.hedges_fired == 0,
        stats.hedge_waste_tokens == 0,
        "{label}: waste must be charged exactly when hedges fire"
    );
    assert!(
        stats.hedge_waste_tokens as usize <= backend_tokens,
        "{label}: total waste cannot exceed total useful cost"
    );

    // 3. Request conservation: breaker trips, failovers and hedges never lose
    //    or duplicate a request. Exactly one backend executes per routed
    //    request, and routed requests + cache hits cover the oracle exactly.
    assert_eq!(
        backend_requests + outcome.stats.cache_hits,
        oracle.requests,
        "{label}: executed requests + cache hits must equal the sequential count"
    );
    assert_eq!(
        stats.backends.iter().map(|b| b.requests).sum::<u64>() as usize,
        backend_requests,
        "{label}: every routed request executes exactly one backend call"
    );
    assert_eq!(
        stats.requests as usize, outcome.stats.router_requests,
        "{label}: PipelineStats must carry the router request count"
    );
    assert_eq!(outcome.stats.router_backends, n_backends, "{label}");
    if !hedge {
        assert_eq!(stats.hedges_fired, 0, "{label}: hedging disabled");
    }
}

#[test]
fn healthy_and_error_schedules_conform_with_hedging() {
    let oracle = sequential_oracle();
    for (name, schedule) in schedules().into_iter().take(2) {
        eprintln!("cell: {name} x3 hedged");
        check_cell(&oracle, 3, schedule, true);
    }
}

#[test]
fn timeout_and_slow_schedules_conform_with_hedging() {
    let oracle = sequential_oracle();
    for (name, schedule) in schedules().into_iter().skip(2).take(2) {
        eprintln!("cell: {name} x3 hedged");
        check_cell(&oracle, 3, schedule, true);
    }
}

#[test]
fn mixed_schedule_conforms_across_backend_counts() {
    let oracle = sequential_oracle();
    let (_, mixed) = schedules().pop().unwrap();
    for n in [1usize, 2, 3] {
        eprintln!("cell: mixed x{n} hedged");
        check_cell(&oracle, n, mixed, true);
    }
}

#[test]
fn mixed_schedule_conforms_without_hedging() {
    let oracle = sequential_oracle();
    let (_, mixed) = schedules().pop().unwrap();
    check_cell(&oracle, 3, mixed, false);
}

/// Property-style sweep at the raw request level: many distinct fingerprints,
/// every schedule, hedge on and off — responses must match a fault-free
/// reference client call-for-call, with exact cost conservation.
#[test]
fn raw_request_sweep_is_response_identical_under_every_schedule() {
    let ds = dataset();
    let reference = oracle_llm(&ds, 5);
    let corr = vec![0usize];
    let n_requests = 120usize;
    let n_rows = ds.dirty.n_rows();
    let expected: Vec<Vec<bool>> = (0..n_requests)
        .map(|i| {
            let rows = [(i * 13) % n_rows, (i * 29 + 7) % n_rows];
            let ctx = zeroed_llm::AttributeContext {
                table: &ds.dirty,
                column: i % ds.dirty.n_cols(),
                correlated: &corr,
                sample_rows: &rows,
            };
            reference.label_batch(&ctx, None, &rows)
        })
        .collect();
    let reference_usage = reference.ledger().usage();

    for (name, schedule) in schedules() {
        for hedge in [false, true] {
            let sims: Vec<SimLlm> = (0..3)
                .map(|i| oracle_llm(&ds, 5).with_faults(schedule(i)))
                .collect();
            let clients: Vec<&dyn LlmClient> = sims.iter().map(|s| s as &dyn LlmClient).collect();
            let mut cfg = RouterConfig::for_backends(3);
            cfg.hedge.enabled = hedge;
            let router = RouterLlm::new(clients, &cfg);
            for (i, want) in expected.iter().enumerate() {
                let rows = [(i * 13) % n_rows, (i * 29 + 7) % n_rows];
                let ctx = zeroed_llm::AttributeContext {
                    table: &ds.dirty,
                    column: i % ds.dirty.n_cols(),
                    correlated: &corr,
                    sample_rows: &rows,
                };
                let got = router.label_batch(&ctx, None, &rows);
                assert_eq!(want, &got, "{name} hedge={hedge} request {i}");
            }
            let executed: usize = sims.iter().map(|s| s.ledger().usage().requests).sum();
            assert_eq!(executed, n_requests, "{name} hedge={hedge}: conservation");
            let tokens: usize = sims.iter().map(|s| s.ledger().usage().total()).sum();
            assert_eq!(
                tokens, reference_usage.total(),
                "{name} hedge={hedge}: token conservation"
            );
        }
    }
}
