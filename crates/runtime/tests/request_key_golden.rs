//! Golden [`RequestKey`] values.
//!
//! The ROADMAP's next runtime item is cross-process response-cache
//! persistence: completed entries serialised *keyed by `RequestKey`*, so a
//! later process can replay them. That plan only works if key derivation is
//! stable across builds — any accidental reordering of hash inputs, change of
//! seeds, or tweak to the length-prefixing rules silently invalidates every
//! persisted entry. These tests pin exact 128-bit key values for fixed inputs
//! (the persistence contract) and prove that every key component —
//! kind, model, column, rows, prompt, salt — independently perturbs the key.
//!
//! If a test here fails because key derivation changed *intentionally*, bump
//! `zeroed_store::KEY_SCHEMA_VERSION` alongside the new golden values — the
//! persisted store stamps that version into every segment header and skips
//! segments written under a different scheme, so entries keyed by the old
//! derivation are never consulted by a process hashing with the new one.

use zeroed_runtime::key::table_fingerprint;
use zeroed_runtime::{RequestKey, RequestKind};

/// Builds a key the way [`zeroed_runtime::CachedLlm`] does for a
/// column-scoped request: kind + model, table fingerprint, column, rows,
/// prompt, salt.
fn column_key(
    kind: RequestKind,
    model: &str,
    table_fp: u64,
    column: Option<usize>,
    rows: &[usize],
    prompt: &str,
    salt: u64,
) -> RequestKey {
    let mut b = RequestKey::builder(kind, model);
    b.word(table_fp);
    b.column(column).rows(rows).text(prompt).word(salt);
    b.finish()
}

#[test]
fn golden_128bit_keys_for_fixed_inputs() {
    // Pinned values — the cross-process cache-persistence contract. Do not
    // update without bumping the persisted-cache format version.
    let label = column_key(
        RequestKind::LabelBatch,
        "Qwen2.5-72b",
        0x00c0_ffee,
        Some(3),
        &[0, 1, 2, 41],
        "label these cells",
        7,
    );
    assert_eq!(label.to_u128(), 0xc4020b2ae9c1fd7d505b58fa7c24e6d0);

    let criteria = column_key(
        RequestKind::Criteria,
        "Llama3.1-8b",
        0xdead_beef,
        Some(0),
        &[],
        "derive criteria",
        0,
    );
    assert_eq!(criteria.to_u128(), 0xa429205deb7b28322399a3466249cdb6);

    let tuple = column_key(
        RequestKind::Tuple,
        "GPT-4o-mini",
        1,
        None,
        &[17],
        "tuple check",
        99,
    );
    assert_eq!(tuple.to_u128(), 0x015f074411f56ea0f44ec08f1718d8e7);

    // Degenerate key: no inputs beyond the kind/model prefix.
    let empty = RequestKey::builder(RequestKind::Analysis, "").finish();
    assert_eq!(empty.to_u128(), 0xd62cc11a4a0be0e7121e3e94b64937e0);
}

#[test]
fn store_key_schema_version_is_pinned_with_these_golden_keys() {
    // The persistence format versions and the golden keys above are one
    // contract: segments stamped `KEY_SCHEMA_VERSION = 1` hold entries keyed
    // by exactly the derivation these tests freeze. Changing key derivation
    // without bumping the schema version (or vice versa) silently corrupts
    // warm starts, so the pairing is asserted here.
    assert_eq!(zeroed_store::KEY_SCHEMA_VERSION, 1);
    // FORMAT_VERSION 2 added the per-record epoch (TTL/GC) — a byte-layout
    // change only; key derivation and the key schema are untouched, and v1
    // segments keyed under schema 1 remain readable.
    assert_eq!(zeroed_store::FORMAT_VERSION, 2);
    assert_eq!(zeroed_store::MIN_READ_FORMAT_VERSION, 1);
    // Round-trip through the store's index key: a warm-starting process
    // rebuilds RequestKeys from persisted u128s.
    let key = RequestKey::builder(RequestKind::LabelBatch, "m").finish();
    assert_eq!(RequestKey::from_u128(key.to_u128()), key);
}

#[test]
fn golden_table_fingerprint() {
    let t = zeroed_table::Table::new(
        "golden",
        vec!["a".into(), "b".into()],
        vec![
            vec!["x".into(), "y".into()],
            vec!["1".into(), "2".into()],
        ],
    )
    .unwrap();
    assert_eq!(table_fingerprint(&t), 0xf95c7eee0114b808);
}

#[test]
fn every_component_perturbs_the_key() {
    let base = || {
        column_key(
            RequestKind::LabelBatch,
            "Qwen2.5-72b",
            42,
            Some(3),
            &[0, 1, 2],
            "prompt",
            7,
        )
    };
    // Reproducibility first: the same inputs always produce the same key.
    assert_eq!(base(), base());

    let perturbations = [
        (
            "kind",
            column_key(RequestKind::Refine, "Qwen2.5-72b", 42, Some(3), &[0, 1, 2], "prompt", 7),
        ),
        (
            "model",
            column_key(RequestKind::LabelBatch, "Qwen2.5-72B", 42, Some(3), &[0, 1, 2], "prompt", 7),
        ),
        (
            "table fingerprint",
            column_key(RequestKind::LabelBatch, "Qwen2.5-72b", 43, Some(3), &[0, 1, 2], "prompt", 7),
        ),
        (
            "column index",
            column_key(RequestKind::LabelBatch, "Qwen2.5-72b", 42, Some(4), &[0, 1, 2], "prompt", 7),
        ),
        (
            "column presence",
            column_key(RequestKind::LabelBatch, "Qwen2.5-72b", 42, None, &[0, 1, 2], "prompt", 7),
        ),
        (
            "row order",
            column_key(RequestKind::LabelBatch, "Qwen2.5-72b", 42, Some(3), &[0, 2, 1], "prompt", 7),
        ),
        (
            "row set",
            column_key(RequestKind::LabelBatch, "Qwen2.5-72b", 42, Some(3), &[0, 1], "prompt", 7),
        ),
        (
            "prompt",
            column_key(RequestKind::LabelBatch, "Qwen2.5-72b", 42, Some(3), &[0, 1, 2], "prompt!", 7),
        ),
        (
            "salt",
            column_key(RequestKind::LabelBatch, "Qwen2.5-72b", 42, Some(3), &[0, 1, 2], "prompt", 8),
        ),
    ];
    let reference = base();
    for (what, perturbed) in &perturbations {
        assert_ne!(
            reference, *perturbed,
            "changing the {what} must change the key"
        );
    }
    // And all perturbations are pairwise distinct (no two collapse).
    for i in 0..perturbations.len() {
        for j in i + 1..perturbations.len() {
            assert_ne!(
                perturbations[i].1, perturbations[j].1,
                "{} vs {}",
                perturbations[i].0, perturbations[j].0
            );
        }
    }
}

#[test]
fn every_request_kind_separates_keys() {
    let kinds = [
        RequestKind::Criteria,
        RequestKind::Analysis,
        RequestKind::Guideline,
        RequestKind::LabelBatch,
        RequestKind::Refine,
        RequestKind::Augment,
        RequestKind::Tuple,
    ];
    let keys: Vec<RequestKey> = kinds
        .iter()
        .map(|&k| column_key(k, "m", 1, Some(0), &[0], "same prompt", 0))
        .collect();
    for i in 0..keys.len() {
        for j in i + 1..keys.len() {
            assert_ne!(keys[i], keys[j], "{:?} vs {:?}", kinds[i], kinds[j]);
        }
    }
}
