//! The response cache: completed- and in-flight-request deduplication.
//!
//! Maps [`RequestKey`]s to stored responses. Lookups follow the single-flight
//! discipline: the first thread to miss claims the key and computes; any
//! thread that asks for the same key while that computation is in flight
//! parks on a condition variable and receives the published response without
//! a second model call. Counters track hits, misses, coalesced waits and the
//! exact token cost the hits avoided.

use crate::key::RequestKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use zeroed_obs::{emit_current, EventKind, Histogram, HistogramSnapshot};

/// A structured LLM response, stored by value so a hit replays the exact
/// object the wrapped client originally returned.
///
/// This is `zeroed-store`'s [`zeroed_store::ResponseValue`] re-exported: the
/// on-disk codec and the in-memory cache share one value type, so persisting
/// and warm-start preloading involve no conversion at all.
pub use zeroed_store::ResponseValue as CachedResponse;

/// Where a published response came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseOrigin {
    /// Computed by the wrapped client in this process.
    Computed,
    /// Preloaded from the persisted response store (a cross-process warm
    /// start); hits on such entries count as `store_hits`.
    Persisted,
}

/// A published response plus the token cost its original call charged.
#[derive(Debug)]
pub struct StoredResponse {
    /// The response value.
    pub value: CachedResponse,
    /// Prompt tokens the original call consumed.
    pub input_tokens: usize,
    /// Completion tokens the original call produced.
    pub output_tokens: usize,
    /// Provenance (computed here vs preloaded from the store).
    pub origin: ResponseOrigin,
}

enum Slot {
    /// A worker is computing this response right now.
    InFlight,
    /// The response has been published.
    Ready(Arc<StoredResponse>),
    /// The computing worker unwound while callers were still parked. The
    /// entry must survive (the parked callers' pins reference it); the first
    /// waiter to wake claims the flight and recomputes, the rest stay
    /// coalesced behind the new computation.
    Vacated,
}

/// One cache entry: its slot plus the number of callers currently parked on
/// (or waking up for) it. The waiter count *pins* the entry across
/// generational flushes: a response published while callers are still parked
/// must survive until every one of them has consumed it, otherwise a flush
/// racing the wake-up would evict the entry and force the waiters to
/// recompute — a duplicated model call the single-flight contract forbids.
struct Entry {
    slot: Slot,
    waiters: usize,
}

/// How a [`ResponseCache::get_or_compute`] call was satisfied. Returned to
/// the caller so per-consumer accounting (e.g. one pipeline run's
/// `PipelineStats`) can attribute activity precisely even when several
/// consumers share one cache concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The caller executed the computation.
    Miss,
    /// Served from a published entry; `coalesced` is true when the caller
    /// parked behind an in-flight computation.
    Hit {
        /// Whether the caller waited on another caller's in-flight request.
        coalesced: bool,
    },
}

/// Snapshot of cache activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from a published entry (no model call).
    pub hits: u64,
    /// Requests that had to execute the model call.
    pub misses: u64,
    /// Hits that waited for an in-flight computation (subset of `hits`).
    pub coalesced: u64,
    /// Prompt tokens the hits avoided sending.
    pub input_tokens_saved: u64,
    /// Completion tokens the hits avoided generating.
    pub output_tokens_saved: u64,
    /// Generational flushes triggered by the capacity bound.
    pub flushes: u64,
    /// Completed entries evicted by those flushes. Store write-through uses
    /// this to account for entries dropped from memory: a flushed entry that
    /// was persisted remains servable across processes, one that was not is
    /// recomputed on next request.
    pub flushed_entries: u64,
    /// Hits served by entries preloaded from the persisted response store
    /// (subset of `hits`).
    pub store_hits: u64,
}

impl CacheStats {
    /// Total tokens saved by deduplication.
    pub fn tokens_saved(&self) -> u64 {
        self.input_tokens_saved + self.output_tokens_saved
    }

    /// Component-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            coalesced: self.coalesced - earlier.coalesced,
            input_tokens_saved: self.input_tokens_saved - earlier.input_tokens_saved,
            output_tokens_saved: self.output_tokens_saved - earlier.output_tokens_saved,
            flushes: self.flushes - earlier.flushes,
            flushed_entries: self.flushed_entries - earlier.flushed_entries,
            store_hits: self.store_hits - earlier.store_hits,
        }
    }
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    input_tokens_saved: AtomicU64,
    output_tokens_saved: AtomicU64,
    flushes: AtomicU64,
    flushed_entries: AtomicU64,
    store_hits: AtomicU64,
}

/// Contention distributions for one cache's lifetime, from
/// [`ResponseCache::timings`]. Quantiles are exact nearest-rank over each
/// histogram's sample window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTimings {
    /// Total time each [`ResponseCache::get_or_compute`] call held the map
    /// mutex (summed across that call's critical sections: lookup, claim,
    /// publish — parked time excluded). One sample per call.
    pub lock_hold: HistogramSnapshot,
    /// Time callers spent parked on the publish condvar waiting for an
    /// in-flight computation. One sample per caller that parked at least
    /// once; non-parking calls record nothing here.
    pub park_wait: HistogramSnapshot,
    /// Duration of each [`ResponseCache::preload`] call (the warm-start
    /// insertion path; essentially its lock-hold time).
    pub preload: HistogramSnapshot,
}

struct Timings {
    lock_hold: Histogram,
    park_wait: Histogram,
    preload: Histogram,
}

impl Default for Timings {
    fn default() -> Self {
        Self {
            lock_hold: Histogram::new(),
            park_wait: Histogram::new(),
            preload: Histogram::new(),
        }
    }
}

/// Thread-safe single-flight response cache.
///
/// Cloneable handles share one store ([`Arc`] inside), mirroring
/// [`zeroed_llm::TokenLedger`]'s sharing model.
pub struct ResponseCache {
    map: Mutex<HashMap<RequestKey, Entry>>,
    published: Condvar,
    counters: Counters,
    timings: Timings,
    /// Entry budget; exceeding it flushes completed entries (generational
    /// eviction — in-flight slots survive so waiters are never orphaned).
    capacity: usize,
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseCache")
            .field("entries", &self.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ResponseCache {
    /// Creates a cache holding at most `capacity` completed entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            published: Condvar::new(),
            counters: Counters::default(),
            timings: Timings::default(),
            capacity: capacity.max(1),
        }
    }

    /// Number of entries currently stored (including in-flight slots).
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of callers currently pinning `key` (tests only).
    #[cfg(test)]
    fn waiter_count(&self, key: &RequestKey) -> usize {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .map(|entry| entry.waiters)
            .unwrap_or(0)
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            input_tokens_saved: self.counters.input_tokens_saved.load(Ordering::Relaxed),
            output_tokens_saved: self.counters.output_tokens_saved.load(Ordering::Relaxed),
            flushes: self.counters.flushes.load(Ordering::Relaxed),
            flushed_entries: self.counters.flushed_entries.load(Ordering::Relaxed),
            store_hits: self.counters.store_hits.load(Ordering::Relaxed),
        }
    }

    /// Contention distributions: per-call map-lock hold time, condvar park
    /// time of coalesced waiters, and preload-call durations.
    pub fn timings(&self) -> CacheTimings {
        CacheTimings {
            lock_hold: self.timings.lock_hold.snapshot(),
            park_wait: self.timings.park_wait.snapshot(),
            preload: self.timings.preload.snapshot(),
        }
    }

    fn record_hit(&self, stored: &StoredResponse, coalesced: bool) {
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
        if coalesced {
            self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        if stored.origin == ResponseOrigin::Persisted {
            self.counters.store_hits.fetch_add(1, Ordering::Relaxed);
        }
        self.counters
            .input_tokens_saved
            .fetch_add(stored.input_tokens as u64, Ordering::Relaxed);
        self.counters
            .output_tokens_saved
            .fetch_add(stored.output_tokens as u64, Ordering::Relaxed);
    }

    /// Evicts completed entries, retaining in-flight computations and any
    /// entry with parked waiters (either would orphan callers otherwise).
    /// Returns how many entries were evicted; counters are the caller's job.
    fn flush_locked(map: &mut HashMap<RequestKey, Entry>) -> usize {
        let before = map.len();
        map.retain(|_, entry| matches!(entry.slot, Slot::InFlight) || entry.waiters > 0);
        before - map.len()
    }

    /// Drops every completed entry (an explicit generational flush) and
    /// returns how many entries were evicted. Entries that are still in
    /// flight, or whose response has parked waiters that have not consumed it
    /// yet, survive — flushing can never orphan a caller or force a duplicate
    /// computation. Store write-through layers use the count (also summed in
    /// [`CacheStats::flushed_entries`]) to account for entries dropped from
    /// memory before or after persistence.
    pub fn flush(&self) -> usize {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let evicted = Self::flush_locked(&mut map);
        drop(map);
        self.counters.flushes.fetch_add(1, Ordering::Relaxed);
        self.counters
            .flushed_entries
            .fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Inserts a completed response for `key` without counting a miss or a
    /// hit — the warm-start preload path from a persisted store. Returns
    /// `false` (and drops `response`) when the key is already present
    /// (published or in flight) or the preload budget is exhausted.
    ///
    /// The budget is the capacity minus a 1/8 headroom (for capacities ≥ 8):
    /// filling the map *exactly* to capacity would make the very next novel
    /// request trigger a generational flush that evicts every preloaded
    /// entry — a warm start silently discarded. The headroom lets a run
    /// absorb novel requests while keeping the preloaded generation alive.
    pub fn preload(&self, key: RequestKey, response: StoredResponse) -> bool {
        use std::collections::hash_map::Entry as MapEntry;
        let t = Instant::now();
        let budget = self.capacity - self.capacity / 8;
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let loaded = if map.len() >= budget {
            false
        } else {
            match map.entry(key) {
                MapEntry::Occupied(_) => false,
                MapEntry::Vacant(slot) => {
                    slot.insert(Entry {
                        slot: Slot::Ready(Arc::new(response)),
                        waiters: 0,
                    });
                    true
                }
            }
        };
        drop(map);
        self.timings.preload.record(t.elapsed());
        loaded
    }

    /// Returns the response for `key` (and how it was obtained), computing it
    /// with `compute` on a miss.
    ///
    /// Exactly one caller executes `compute` per key (single flight);
    /// concurrent callers with the same key block until the response is
    /// published. If `compute` panics, the in-flight slot is released and the
    /// panic propagates (waiters retry the computation themselves).
    pub fn get_or_compute(
        &self,
        key: RequestKey,
        compute: impl FnOnce() -> StoredResponse,
    ) -> (Arc<StoredResponse>, Lookup) {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        // Observability: `held_nanos` accumulates this call's time under the
        // map mutex (parked intervals excluded); `park_start` marks the first
        // park so total coalesced wait records as one sample on exit.
        let mut hold_start = Instant::now();
        let mut held_nanos: u64 = 0;
        let mut park_start: Option<Instant> = None;
        // `waited` feeds the coalesced counter; `pinned` tracks whether this
        // caller currently holds a waiter pin on the entry. They are distinct:
        // a waiter that claims a vacated flight has waited but no longer pins.
        let mut waited = false;
        let mut pinned = false;
        loop {
            match map.get_mut(&key) {
                Some(entry) => match &entry.slot {
                    Slot::Ready(stored) => {
                        let stored = Arc::clone(stored);
                        if pinned {
                            // Release the pin taken before parking.
                            entry.waiters -= 1;
                        }
                        held_nanos += hold_start.elapsed().as_nanos() as u64;
                        drop(map);
                        self.timings.lock_hold.record_nanos(held_nanos);
                        if let Some(t) = park_start {
                            let parked = t.elapsed();
                            self.timings.park_wait.record(parked);
                            emit_current(
                                EventKind::CacheParkWait,
                                parked.as_nanos().min(u64::MAX as u128) as u64,
                            );
                        }
                        self.record_hit(&stored, waited);
                        emit_current(EventKind::CacheHit, 0);
                        if waited {
                            emit_current(EventKind::CacheCoalesced, 0);
                        }
                        return (stored, Lookup::Hit { coalesced: waited });
                    }
                    Slot::InFlight => {
                        if !pinned {
                            // Pin the entry so a generational flush racing
                            // the publish cannot evict the response before
                            // this caller wakes up and reads it.
                            entry.waiters += 1;
                            pinned = true;
                        }
                        waited = true;
                        park_start.get_or_insert_with(Instant::now);
                        held_nanos += hold_start.elapsed().as_nanos() as u64;
                        map = self
                            .published
                            .wait(map)
                            .unwrap_or_else(|e| e.into_inner());
                        hold_start = Instant::now();
                    }
                    Slot::Vacated => {
                        // The previous computer panicked. Claim the flight in
                        // place (releasing our pin — the computer does not pin
                        // itself); other parked waiters keep theirs and stay
                        // coalesced behind us.
                        if pinned {
                            entry.waiters -= 1;
                        }
                        entry.slot = Slot::InFlight;
                        break;
                    }
                },
                None => {
                    // A pinned waiter's entry is never removed (a panicking
                    // computer vacates it instead), so reaching here means
                    // this caller holds no pin: claim a fresh flight.
                    debug_assert!(!pinned);
                    if map.len() >= self.capacity {
                        // Generational flush: drop completed entries, keep
                        // in-flight slots and pinned responses alive for
                        // their waiters.
                        let evicted = Self::flush_locked(&mut map);
                        self.counters.flushes.fetch_add(1, Ordering::Relaxed);
                        self.counters
                            .flushed_entries
                            .fetch_add(evicted as u64, Ordering::Relaxed);
                    }
                    map.insert(
                        key,
                        Entry {
                            slot: Slot::InFlight,
                            waiters: 0,
                        },
                    );
                    break;
                }
            }
        }
        held_nanos += hold_start.elapsed().as_nanos() as u64;
        drop(map);
        if let Some(t) = park_start {
            // Parked behind a computation that was vacated by a panic; this
            // caller's wait ends here (it recomputes itself below).
            let parked = t.elapsed();
            self.timings.park_wait.record(parked);
            emit_current(
                EventKind::CacheParkWait,
                parked.as_nanos().min(u64::MAX as u128) as u64,
            );
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        emit_current(EventKind::CacheMiss, 0);

        // Release the in-flight claim if `compute` unwinds, so parked waiters
        // wake up and recompute instead of deadlocking.
        struct FlightGuard<'a> {
            cache: &'a ResponseCache,
            key: RequestKey,
            armed: bool,
        }
        impl Drop for FlightGuard<'_> {
            fn drop(&mut self) {
                if self.armed {
                    let mut map = self.cache.map.lock().unwrap_or_else(|e| e.into_inner());
                    match map.get_mut(&self.key) {
                        // Parked waiters pin the entry; removing it would
                        // orphan their pins (a later decrement would
                        // underflow a fresh entry's count). Vacate in place:
                        // the first waiter to wake claims the flight.
                        Some(entry) if entry.waiters > 0 => entry.slot = Slot::Vacated,
                        Some(_) => {
                            map.remove(&self.key);
                        }
                        None => {}
                    }
                    drop(map);
                    self.cache.published.notify_all();
                }
            }
        }
        let mut guard = FlightGuard {
            cache: self,
            key,
            armed: true,
        };

        let stored = Arc::new(compute());
        guard.armed = false;

        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let hold_start = Instant::now();
        // Publish in place: the entry's waiter pin count must survive, so the
        // response stays flush-proof until every parked caller has read it.
        match map.get_mut(&key) {
            Some(entry) => entry.slot = Slot::Ready(Arc::clone(&stored)),
            None => {
                map.insert(
                    key,
                    Entry {
                        slot: Slot::Ready(Arc::clone(&stored)),
                        waiters: 0,
                    },
                );
            }
        }
        held_nanos += hold_start.elapsed().as_nanos() as u64;
        drop(map);
        self.timings.lock_hold.record_nanos(held_nanos);
        self.published.notify_all();
        emit_current(EventKind::CachePublish, 0);
        (stored, Lookup::Miss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{RequestKey, RequestKind};
    use std::sync::atomic::AtomicUsize;

    fn test_key(n: u64) -> RequestKey {
        let mut b = RequestKey::builder(RequestKind::LabelBatch, "m");
        b.word(n);
        b.finish()
    }

    fn response(flag: bool) -> StoredResponse {
        StoredResponse {
            value: CachedResponse::Flags(vec![flag]),
            input_tokens: 10,
            output_tokens: 3,
            origin: ResponseOrigin::Computed,
        }
    }

    #[test]
    fn hit_replays_the_stored_value_and_counts_savings() {
        let cache = ResponseCache::new(16);
        let calls = AtomicUsize::new(0);
        for round in 0..3 {
            let (stored, lookup) = cache.get_or_compute(test_key(1), || {
                calls.fetch_add(1, Ordering::SeqCst);
                response(true)
            });
            if round == 0 {
                assert_eq!(lookup, Lookup::Miss);
            } else {
                assert_eq!(lookup, Lookup::Hit { coalesced: false });
            }
            match &stored.value {
                CachedResponse::Flags(f) => assert_eq!(f, &vec![true]),
                other => panic!("wrong variant: {other:?}"),
            }
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.input_tokens_saved, 20);
        assert_eq!(stats.output_tokens_saved, 6);
        assert_eq!(stats.tokens_saved(), 26);
    }

    #[test]
    fn single_flight_under_contention_computes_once() {
        let cache = ResponseCache::new(64);
        let calls = AtomicUsize::new(0);
        let n_threads = 8;
        std::thread::scope(|s| {
            for _ in 0..n_threads {
                s.spawn(|| {
                    let (stored, _) = cache.get_or_compute(test_key(2), || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for others to park.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        response(false)
                    });
                    assert!(matches!(stored.value, CachedResponse::Flags(_)));
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "compute must run once");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits as usize, n_threads - 1);
        assert!(stats.coalesced >= 1, "some callers must have parked");
    }

    #[test]
    fn capacity_flush_keeps_working() {
        let cache = ResponseCache::new(2);
        for i in 0..10 {
            let _ = cache.get_or_compute(test_key(i), || response(true));
        }
        assert!(cache.stats().flushes >= 1);
        assert!(cache.len() <= 2);
        // Still functional after flushes.
        let (stored, lookup) = cache.get_or_compute(test_key(99), || response(true));
        assert!(matches!(stored.value, CachedResponse::Flags(_)));
        assert_eq!(lookup, Lookup::Miss);
    }

    #[test]
    fn panic_in_compute_releases_the_flight() {
        let cache = ResponseCache::new(8);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute(test_key(5), || panic!("boom"));
        }));
        assert!(result.is_err());
        // The key is free again: a later caller computes normally.
        let (stored, _) = cache.get_or_compute(test_key(5), || response(true));
        assert!(matches!(stored.value, CachedResponse::Flags(_)));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn flush_never_evicts_a_response_with_parked_waiters() {
        // Regression: the generational flush used to retain only in-flight
        // slots, so a response published while callers were still parked
        // could be evicted before they woke — forcing a duplicate model call.
        // Waiter pins must keep the entry alive until the last parked caller
        // has consumed it.
        use std::sync::mpsc;
        let cache = ResponseCache::new(4);
        let calls = AtomicUsize::new(0);
        let (started_tx, started_rx) = mpsc::channel();
        let (go_tx, go_rx) = mpsc::channel::<()>();
        let cache = &cache;
        let calls = &calls;
        std::thread::scope(|s| {
            // T1 claims the flight and blocks inside compute.
            let t1 = s.spawn(move || {
                cache.get_or_compute(test_key(7), || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    started_tx.send(()).unwrap();
                    go_rx.recv().unwrap();
                    response(true)
                })
            });
            started_rx.recv().unwrap();
            // T2 parks behind the in-flight computation.
            let t2 = s.spawn(|| {
                cache.get_or_compute(test_key(7), || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    response(false)
                })
            });
            while cache.waiter_count(&test_key(7)) == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            // Publish, then hammer flushes while T2 races to wake up.
            go_tx.send(()).unwrap();
            for _ in 0..10_000 {
                cache.flush();
            }
            let (stored1, l1) = t1.join().unwrap();
            let (stored2, l2) = t2.join().unwrap();
            assert_eq!(l1, Lookup::Miss);
            assert_eq!(
                l2,
                Lookup::Hit { coalesced: true },
                "the parked waiter must receive the published response"
            );
            for stored in [&stored1, &stored2] {
                match &stored.value {
                    CachedResponse::Flags(f) => assert_eq!(f, &vec![true]),
                    other => panic!("wrong variant: {other:?}"),
                }
            }
        });
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "a flush racing the wake-up must never force a recompute"
        );
        // Once the waiter has consumed the entry, flushing may evict it.
        cache.flush();
        assert!(cache.is_empty());
    }

    #[test]
    fn panicking_computer_hands_the_flight_to_a_parked_waiter() {
        // Regression: the panic path used to remove the entry wholesale,
        // orphaning parked waiters' pins — a waiter that re-parked behind a
        // later computation would then decrement a fresh entry's zero count
        // (underflow). Vacating in place keeps pins valid: the parked waiter
        // claims the flight, recomputes, and bookkeeping balances.
        use std::sync::mpsc;
        let cache = ResponseCache::new(8);
        let calls = AtomicUsize::new(0);
        let (started_tx, started_rx) = mpsc::channel();
        let (go_tx, go_rx) = mpsc::channel::<()>();
        let cache_ref = &cache;
        let calls_ref = &calls;
        std::thread::scope(|s| {
            // T1 claims the flight, then panics on signal.
            let t1 = s.spawn(move || {
                cache_ref.get_or_compute(test_key(11), || {
                    started_tx.send(()).unwrap();
                    go_rx.recv().unwrap();
                    panic!("computer died");
                })
            });
            started_rx.recv().unwrap();
            // T2 parks (and pins) behind the in-flight computation.
            let t2 = s.spawn(move || {
                cache_ref.get_or_compute(test_key(11), || {
                    calls_ref.fetch_add(1, Ordering::SeqCst);
                    response(true)
                })
            });
            while cache.waiter_count(&test_key(11)) == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            go_tx.send(()).unwrap();
            assert!(t1.join().is_err(), "T1's panic must propagate");
            let (stored, lookup) = t2.join().unwrap();
            assert_eq!(lookup, Lookup::Miss, "the waiter claims the vacated flight");
            assert!(matches!(stored.value, CachedResponse::Flags(_)));
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        // Pins are balanced: the entry is flushable and the cache reusable.
        assert_eq!(cache.waiter_count(&test_key(11)), 0);
        cache.flush();
        assert!(cache.is_empty());
        let (_, lookup) = cache.get_or_compute(test_key(11), || response(false));
        assert_eq!(lookup, Lookup::Miss);
    }

    #[test]
    fn explicit_flush_spares_in_flight_entries() {
        let cache = ResponseCache::new(64);
        let _ = cache.get_or_compute(test_key(1), || response(true));
        let cache = &cache;
        std::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::channel::<()>();
            let (started_tx, started_rx) = std::sync::mpsc::channel();
            s.spawn(move || {
                let _ = cache.get_or_compute(test_key(2), || {
                    started_tx.send(()).unwrap();
                    rx.recv().unwrap();
                    response(false)
                });
            });
            started_rx.recv().unwrap();
            cache.flush();
            // The completed entry is gone; the in-flight one survives.
            assert_eq!(cache.len(), 1);
            tx.send(()).unwrap();
        });
        // The in-flight entry completed normally after the flush.
        let (_, lookup) = cache.get_or_compute(test_key(2), || response(true));
        assert_eq!(lookup, Lookup::Hit { coalesced: false });
    }

    #[test]
    fn flush_reports_how_many_entries_it_evicted() {
        let cache = ResponseCache::new(64);
        for i in 0..5 {
            let _ = cache.get_or_compute(test_key(i), || response(true));
        }
        assert_eq!(cache.flush(), 5);
        assert_eq!(cache.flush(), 0, "second flush has nothing left");
        let stats = cache.stats();
        assert_eq!(stats.flushes, 2);
        assert_eq!(stats.flushed_entries, 5);
    }

    #[test]
    fn capacity_flush_counts_evicted_entries_too() {
        let cache = ResponseCache::new(2);
        for i in 0..3 {
            let _ = cache.get_or_compute(test_key(i), || response(true));
        }
        let stats = cache.stats();
        assert!(stats.flushes >= 1);
        assert!(stats.flushed_entries >= 2);
    }

    #[test]
    fn preloaded_entries_hit_without_a_miss_and_count_store_hits() {
        let cache = ResponseCache::new(16);
        let preloaded = StoredResponse {
            value: CachedResponse::Flags(vec![true, true]),
            input_tokens: 40,
            output_tokens: 4,
            origin: ResponseOrigin::Persisted,
        };
        assert!(cache.preload(test_key(1), preloaded));
        // Re-preloading the same key is refused.
        assert!(!cache.preload(test_key(1), response(false)));

        let calls = AtomicUsize::new(0);
        let (stored, lookup) = cache.get_or_compute(test_key(1), || {
            calls.fetch_add(1, Ordering::SeqCst);
            response(false)
        });
        assert_eq!(calls.load(Ordering::SeqCst), 0, "preload must satisfy the request");
        assert_eq!(lookup, Lookup::Hit { coalesced: false });
        match &stored.value {
            CachedResponse::Flags(f) => assert_eq!(f, &vec![true, true]),
            other => panic!("wrong variant: {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.store_hits, 1);
        assert_eq!(stats.misses, 0);
        // The replayed savings are the persisted token counts, exactly.
        assert_eq!(stats.input_tokens_saved, 40);
        assert_eq!(stats.output_tokens_saved, 4);
    }

    #[test]
    fn preload_respects_the_capacity_bound() {
        let cache = ResponseCache::new(2);
        assert!(cache.preload(test_key(1), response(true)));
        assert!(cache.preload(test_key(2), response(true)));
        assert!(!cache.preload(test_key(3), response(true)), "cache full");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn preload_leaves_headroom_so_a_novel_miss_cannot_wipe_the_warm_start() {
        // Capacity 16 → preload budget 14. Filling to capacity would make
        // the first novel request's generational flush evict every preloaded
        // entry; the headroom keeps the warm generation alive.
        let cache = ResponseCache::new(16);
        let mut loaded = 0;
        for i in 0..16 {
            if cache.preload(test_key(i), response(true)) {
                loaded += 1;
            }
        }
        assert_eq!(loaded, 14, "1/8 headroom withheld");
        // A novel request computes without flushing the preloads.
        let (_, lookup) = cache.get_or_compute(test_key(100), || response(false));
        assert_eq!(lookup, Lookup::Miss);
        assert_eq!(cache.stats().flushes, 0, "no flush while headroom lasts");
        // Preloaded entries still serve.
        let (_, lookup) = cache.get_or_compute(test_key(0), || response(false));
        assert_eq!(lookup, Lookup::Hit { coalesced: false });
    }

    #[test]
    fn timings_record_holds_parks_and_preloads() {
        let cache = ResponseCache::new(64);
        let _ = cache.get_or_compute(test_key(1), || response(true));
        let _ = cache.get_or_compute(test_key(1), || response(true));
        assert!(cache.preload(test_key(2), response(false)));
        let t = cache.timings();
        assert_eq!(t.lock_hold.count, 2, "one hold sample per call");
        assert_eq!(t.preload.count, 1);
        assert_eq!(t.park_wait.count, 0, "nobody parked");

        // A coalesced waiter records a park at least as long as the flight.
        let cache = &cache;
        std::thread::scope(|s| {
            let (started_tx, started_rx) = std::sync::mpsc::channel();
            s.spawn(move || {
                let _ = cache.get_or_compute(test_key(3), || {
                    started_tx.send(()).unwrap();
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    response(true)
                });
            });
            started_rx.recv().unwrap();
            let _ = cache.get_or_compute(test_key(3), || response(false));
        });
        let t = cache.timings();
        assert_eq!(t.park_wait.count, 1);
        assert!(t.park_wait.max_nanos >= 1_000_000);
    }

    #[test]
    fn stats_since_diffs_componentwise() {
        let cache = ResponseCache::new(8);
        let _ = cache.get_or_compute(test_key(1), || response(true));
        let snap = cache.stats();
        let _ = cache.get_or_compute(test_key(1), || response(true));
        let delta = cache.stats().since(&snap);
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.misses, 0);
    }
}
