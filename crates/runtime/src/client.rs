//! [`CachedLlm`]: the dedup-caching adapter around any [`LlmClient`].
//!
//! Each trait method renders its prompt (the same template the wrapped client
//! uses), derives the request's [`RequestKey`] and resolves it through the
//! shared [`ResponseCache`]. Misses execute the wrapped client (which charges
//! its own [`zeroed_llm::TokenLedger`] and simulated latency); hits replay the
//! stored response and charge nothing — the avoided cost is accounted in
//! [`crate::CacheStats`] instead, using the exact same token arithmetic the
//! original call was charged with (shared `prompts::render_*` helpers).
//!
//! The adapter is constructed per table ([`CachedLlm::for_table`]): a
//! fingerprint of the full table contents is folded into every key, because
//! several responses (distribution analyses, guidelines) depend on cells the
//! prompt never serialises. Requests about any *other* table must not go
//! through the same adapter.

use crate::cache::{
    CacheStats, CachedResponse, Lookup, ResponseCache, ResponseOrigin, StoredResponse,
};
use crate::key::{table_fingerprint, RequestKey, RequestKeyBuilder, RequestKind};
use crate::persist::StoreSink;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use zeroed_criteria::CriteriaSet;
use zeroed_llm::{
    count_tokens, prompts, AttributeContext, DistributionAnalysis, Guideline, LlmClient,
    TokenLedger,
};
use zeroed_obs::{request_scope, TraceRecorder};
use zeroed_table::Table;

/// A caching [`LlmClient`] adapter (see module docs).
pub struct CachedLlm<'a> {
    inner: &'a dyn LlmClient,
    cache: Arc<ResponseCache>,
    table_fp: u64,
    /// Write-through persistence: misses are offered here (off the hot path)
    /// so later processes can warm-start from the on-disk store.
    persist: Option<StoreSink>,
    /// Per-request flight recorder. When present, [`CachedLlm::resolve`] mints
    /// the request's [`zeroed_obs::TraceId`] from its [`RequestKey`] and
    /// installs a thread-local trace scope around the cache lookup, so every
    /// layer underneath (cache, router, repair) journals into the same trace.
    recorder: Option<Arc<TraceRecorder>>,
    /// Activity of *this adapter only*. The shared cache's counters aggregate
    /// every consumer; a detection run reads these instead so its
    /// `PipelineStats` stay correct even when cloned detectors sharing the
    /// cache run concurrently.
    local: LocalCounters,
}

#[derive(Default)]
struct LocalCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    input_tokens_saved: AtomicU64,
    output_tokens_saved: AtomicU64,
    store_hits: AtomicU64,
}

impl std::fmt::Debug for CachedLlm<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedLlm")
            .field("model", &self.inner.name())
            .field("table_fp", &format_args!("{:016x}", self.table_fp))
            .field("cache", &self.cache)
            .finish()
    }
}

impl<'a> CachedLlm<'a> {
    /// Wraps `inner` for requests against `table`, fingerprinting the table's
    /// full contents into every request key.
    pub fn for_table(inner: &'a dyn LlmClient, cache: Arc<ResponseCache>, table: &Table) -> Self {
        Self {
            inner,
            cache,
            table_fp: table_fingerprint(table),
            persist: None,
            recorder: None,
            local: LocalCounters::default(),
        }
    }

    /// Attaches a write-through persistence sink: every miss this adapter
    /// resolves is offered to the sink (asynchronously — the hot path never
    /// waits on disk), so the backing [`crate::StoreLayer`]'s store can
    /// warm-start later processes.
    pub fn with_persistence(mut self, sink: StoreSink) -> Self {
        self.persist = Some(sink);
        self
    }

    /// Attaches a flight recorder: every request resolved through this
    /// adapter runs inside a [`zeroed_obs::TraceScope`] whose id is minted
    /// deterministically from the request's key
    /// ([`TraceRecorder::trace_for_key`]), so cache, router and repair events
    /// correlate per logical request across execution modes.
    pub fn with_recorder(mut self, recorder: Arc<TraceRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The shared cache handle.
    pub fn cache(&self) -> &Arc<ResponseCache> {
        &self.cache
    }

    /// Cache activity attributable to this adapter alone (`flushes` /
    /// `flushed_entries` are store-wide properties and always 0 here).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.local.hits.load(Ordering::Relaxed),
            misses: self.local.misses.load(Ordering::Relaxed),
            coalesced: self.local.coalesced.load(Ordering::Relaxed),
            input_tokens_saved: self.local.input_tokens_saved.load(Ordering::Relaxed),
            output_tokens_saved: self.local.output_tokens_saved.load(Ordering::Relaxed),
            flushes: 0,
            flushed_entries: 0,
            store_hits: self.local.store_hits.load(Ordering::Relaxed),
        }
    }

    fn key_builder(&self, kind: RequestKind) -> RequestKeyBuilder {
        // `cache_identity`, not `name`: composite clients (the router)
        // answer with their backends' responses and share their identity, so
        // cached — and persisted — entries stay valid across execution modes.
        let mut b = RequestKey::builder(kind, self.inner.cache_identity());
        b.word(self.table_fp);
        b
    }

    /// Resolves one request: `value()` runs the wrapped client on a miss;
    /// `render` turns a response value into the exact response text the
    /// client charges for, so hits account precise savings.
    fn resolve(
        &self,
        key: RequestKey,
        prompt: &str,
        value: impl FnOnce() -> CachedResponse,
        render: impl Fn(&CachedResponse) -> String,
    ) -> Arc<StoredResponse> {
        // Install the per-request trace scope for the duration of the lookup
        // (and, on a miss, the wrapped-client computation inside it): the
        // single choke point every logical request passes through.
        let _scope = self
            .recorder
            .as_ref()
            .map(|rec| request_scope(rec, rec.trace_for_key(key.to_u128())));
        let (stored, lookup) = self.cache.get_or_compute(key, || {
            let value = value();
            let response = render(&value);
            StoredResponse {
                input_tokens: count_tokens(prompt),
                output_tokens: count_tokens(&response),
                value,
                origin: ResponseOrigin::Computed,
            }
        });
        match lookup {
            Lookup::Miss => {
                self.local.misses.fetch_add(1, Ordering::Relaxed);
                // Write-through: offer the freshly computed response for
                // persistence. Asynchronous — publishing never waits on I/O.
                if let Some(sink) = &self.persist {
                    sink.offer(key, &stored);
                }
            }
            Lookup::Hit { coalesced } => {
                self.local.hits.fetch_add(1, Ordering::Relaxed);
                if coalesced {
                    self.local.coalesced.fetch_add(1, Ordering::Relaxed);
                }
                if stored.origin == ResponseOrigin::Persisted {
                    self.local.store_hits.fetch_add(1, Ordering::Relaxed);
                }
                self.local
                    .input_tokens_saved
                    .fetch_add(stored.input_tokens as u64, Ordering::Relaxed);
                self.local
                    .output_tokens_saved
                    .fetch_add(stored.output_tokens as u64, Ordering::Relaxed);
            }
        }
        stored
    }
}

fn as_criteria(stored: &StoredResponse) -> CriteriaSet {
    match &stored.value {
        CachedResponse::Criteria(set) => set.clone(),
        other => unreachable!("criteria key resolved to {other:?}"),
    }
}

fn as_flags(stored: &StoredResponse) -> Vec<bool> {
    match &stored.value {
        CachedResponse::Flags(flags) => flags.clone(),
        other => unreachable!("flags key resolved to {other:?}"),
    }
}

fn render_criteria(value: &CachedResponse) -> String {
    match value {
        CachedResponse::Criteria(set) => prompts::render_criteria_response(set),
        _ => unreachable!(),
    }
}

fn render_flags(value: &CachedResponse, tuple: bool) -> String {
    match value {
        CachedResponse::Flags(flags) if tuple => prompts::render_tuple_response(flags),
        CachedResponse::Flags(flags) => prompts::render_labels_response(flags),
        _ => unreachable!(),
    }
}

impl LlmClient for CachedLlm<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn ledger(&self) -> &TokenLedger {
        self.inner.ledger()
    }

    fn generate_criteria(&self, ctx: &AttributeContext<'_>) -> CriteriaSet {
        let prompt = prompts::criteria_prompt(ctx);
        let salt = self
            .inner
            .request_salt(ctx.table, Some(ctx.column), ctx.sample_rows);
        let mut b = self.key_builder(RequestKind::Criteria);
        b.column(Some(ctx.column))
            .rows(ctx.sample_rows)
            .text(&prompt)
            .word(salt);
        let stored = self.resolve(
            b.finish(),
            &prompt,
            || CachedResponse::Criteria(self.inner.generate_criteria(ctx)),
            render_criteria,
        );
        as_criteria(&stored)
    }

    fn analyze_distribution(&self, ctx: &AttributeContext<'_>) -> DistributionAnalysis {
        let prompt = prompts::analysis_prompt(ctx);
        let salt = self
            .inner
            .request_salt(ctx.table, Some(ctx.column), ctx.sample_rows);
        let mut b = self.key_builder(RequestKind::Analysis);
        b.column(Some(ctx.column))
            .rows(ctx.sample_rows)
            .text(&prompt)
            .word(salt);
        let stored = self.resolve(
            b.finish(),
            &prompt,
            || CachedResponse::Analysis(self.inner.analyze_distribution(ctx)),
            |value| match value {
                CachedResponse::Analysis(a) => prompts::render_analysis(a),
                _ => unreachable!(),
            },
        );
        match &stored.value {
            CachedResponse::Analysis(a) => a.clone(),
            other => unreachable!("analysis key resolved to {other:?}"),
        }
    }

    fn generate_guideline(
        &self,
        ctx: &AttributeContext<'_>,
        analysis: &DistributionAnalysis,
    ) -> Guideline {
        let prompt = prompts::guideline_prompt(ctx, analysis);
        let salt = self
            .inner
            .request_salt(ctx.table, Some(ctx.column), ctx.sample_rows);
        let mut b = self.key_builder(RequestKind::Guideline);
        b.column(Some(ctx.column))
            .rows(ctx.sample_rows)
            .text(&prompt)
            .word(salt);
        let stored = self.resolve(
            b.finish(),
            &prompt,
            || CachedResponse::Guideline(self.inner.generate_guideline(ctx, analysis)),
            |value| match value {
                CachedResponse::Guideline(g) => g.render(),
                _ => unreachable!(),
            },
        );
        match &stored.value {
            CachedResponse::Guideline(g) => g.clone(),
            other => unreachable!("guideline key resolved to {other:?}"),
        }
    }

    fn label_batch(
        &self,
        ctx: &AttributeContext<'_>,
        guideline: Option<&Guideline>,
        rows: &[usize],
    ) -> Vec<bool> {
        let prompt = prompts::labeling_prompt(ctx, guideline, rows);
        let salt = self.inner.request_salt(ctx.table, Some(ctx.column), rows);
        let mut b = self.key_builder(RequestKind::LabelBatch);
        b.column(Some(ctx.column)).rows(rows).text(&prompt).word(salt);
        let stored = self.resolve(
            b.finish(),
            &prompt,
            || CachedResponse::Flags(self.inner.label_batch(ctx, guideline, rows)),
            |value| render_flags(value, false),
        );
        as_flags(&stored)
    }

    fn refine_criteria(
        &self,
        ctx: &AttributeContext<'_>,
        clean_examples: &[String],
        error_examples: &[String],
        existing: &CriteriaSet,
    ) -> CriteriaSet {
        let prompt = prompts::contrastive_prompt(ctx, clean_examples, error_examples);
        let salt = self.inner.request_salt(ctx.table, Some(ctx.column), &[]);
        let mut b = self.key_builder(RequestKind::Refine);
        // The contrastive prompt does not serialise the existing criteria the
        // refinement starts from, so fold their full *canonical* encoding in
        // (sorted collections — `Debug` would vary with `HashSet` iteration
        // order across processes, splitting persisted warm-start keys).
        b.column(Some(ctx.column))
            .text(&prompt)
            .bytes(&zeroed_store::canonical_criteria(existing))
            .word(salt);
        let stored = self.resolve(
            b.finish(),
            &prompt,
            || {
                CachedResponse::Criteria(self.inner.refine_criteria(
                    ctx,
                    clean_examples,
                    error_examples,
                    existing,
                ))
            },
            render_criteria,
        );
        as_criteria(&stored)
    }

    fn augment_errors(
        &self,
        ctx: &AttributeContext<'_>,
        clean_examples: &[String],
        count: usize,
    ) -> Vec<String> {
        let prompt = prompts::augmentation_prompt(ctx, clean_examples, count);
        let salt = self.inner.request_salt(ctx.table, Some(ctx.column), &[]);
        let mut b = self.key_builder(RequestKind::Augment);
        b.column(Some(ctx.column))
            .word(count as u64)
            .text(&prompt)
            .word(salt);
        let stored = self.resolve(
            b.finish(),
            &prompt,
            || CachedResponse::Values(self.inner.augment_errors(ctx, clean_examples, count)),
            |value| match value {
                CachedResponse::Values(v) => prompts::render_augment_response(v),
                _ => unreachable!(),
            },
        );
        match &stored.value {
            CachedResponse::Values(v) => v.clone(),
            other => unreachable!("augment key resolved to {other:?}"),
        }
    }

    fn detect_tuple(&self, table: &Table, row: usize) -> Vec<bool> {
        let prompt = prompts::tuple_prompt(table, row);
        let salt = self.inner.request_salt(table, None, &[row]);
        let mut b = self.key_builder(RequestKind::Tuple);
        b.column(None).rows(&[row]).text(&prompt).word(salt);
        let stored = self.resolve(
            b.finish(),
            &prompt,
            || CachedResponse::Flags(self.inner.detect_tuple(table, row)),
            |value| render_flags(value, true),
        );
        as_flags(&stored)
    }

    fn request_salt(&self, table: &Table, column: Option<usize>, rows: &[usize]) -> u64 {
        self.inner.request_salt(table, column, rows)
    }

    fn note_reask(&self, salt: u64, attempt: u32) {
        self.inner.note_reask(salt, attempt);
    }

    fn cache_identity(&self) -> &str {
        self.inner.cache_identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_llm::SimLlm;

    fn fixture() -> Table {
        let rows: Vec<Vec<String>> = (0..60)
            .map(|i| {
                vec![
                    ["Boston", "Denver", "Phoenix"][i % 3].to_string(),
                    ["MA", "CO", "AZ"][i % 3].to_string(),
                ]
            })
            .collect();
        Table::new("cities", vec!["city".into(), "state".into()], rows).unwrap()
    }

    #[test]
    fn repeated_requests_hit_the_cache_and_charge_no_tokens() {
        let table = fixture();
        let sim = SimLlm::default_model(3);
        let cache = Arc::new(ResponseCache::new(1 << 10));
        let llm = CachedLlm::for_table(&sim, cache, &table);
        let corr = vec![0usize];
        let samples: Vec<usize> = (0..10).collect();
        let ctx = AttributeContext {
            table: &table,
            column: 1,
            correlated: &corr,
            sample_rows: &samples,
        };

        let first = llm.label_batch(&ctx, None, &samples);
        let usage_after_first = sim.ledger().usage();
        let second = llm.label_batch(&ctx, None, &samples);
        let usage_after_second = sim.ledger().usage();

        assert_eq!(first, second, "replayed response must be identical");
        assert_eq!(
            usage_after_first, usage_after_second,
            "a hit must not charge the ledger"
        );
        let stats = llm.cache().stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        // The savings equal exactly what the original call charged.
        assert_eq!(stats.input_tokens_saved as usize, usage_after_first.input_tokens);
        assert_eq!(stats.output_tokens_saved as usize, usage_after_first.output_tokens);
        // The adapter-local view matches the (single-consumer) global one.
        let local = llm.stats();
        assert_eq!(local.hits, stats.hits);
        assert_eq!(local.misses, stats.misses);
        assert_eq!(local.input_tokens_saved, stats.input_tokens_saved);
        assert_eq!(local.output_tokens_saved, stats.output_tokens_saved);
    }

    #[test]
    fn different_rows_never_share_an_entry() {
        let table = fixture();
        let sim = SimLlm::default_model(3);
        let cache = Arc::new(ResponseCache::new(1 << 10));
        let llm = CachedLlm::for_table(&sim, cache, &table);
        let corr = vec![0usize];
        let samples: Vec<usize> = (0..4).collect();
        let ctx = AttributeContext {
            table: &table,
            column: 1,
            correlated: &corr,
            sample_rows: &samples,
        };
        // Rows 0 and 3 hold the same *content* ("MA" in Boston context): an
        // index-blind key would conflate them; the exact key must not.
        let _ = llm.label_batch(&ctx, None, &[0]);
        let _ = llm.label_batch(&ctx, None, &[3]);
        assert_eq!(llm.cache().stats().misses, 2);
        assert_eq!(llm.cache().stats().hits, 0);
    }

    #[test]
    fn full_surface_round_trips_through_the_cache() {
        let table = fixture();
        let sim = SimLlm::default_model(1);
        let cache = Arc::new(ResponseCache::new(1 << 10));
        let llm = CachedLlm::for_table(&sim, Arc::clone(&cache), &table);
        let corr = vec![0usize];
        let samples: Vec<usize> = (0..8).collect();
        let ctx = AttributeContext {
            table: &table,
            column: 1,
            correlated: &corr,
            sample_rows: &samples,
        };
        for _ in 0..2 {
            let criteria = llm.generate_criteria(&ctx);
            let analysis = llm.analyze_distribution(&ctx);
            let guideline = llm.generate_guideline(&ctx, &analysis);
            let labels = llm.label_batch(&ctx, Some(&guideline), &samples);
            assert_eq!(labels.len(), samples.len());
            let refined =
                llm.refine_criteria(&ctx, &["MA".into()], &["".into()], &criteria);
            assert!(refined.len() >= criteria.len());
            let values = llm.augment_errors(&ctx, &["MA".into(), "CO".into()], 4);
            assert_eq!(values.len(), 4);
            let flags = llm.detect_tuple(&table, 2);
            assert_eq!(flags.len(), 2);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 7, "seven distinct requests");
        assert_eq!(stats.hits, 7, "second pass replays all seven");
        // Second pass charged nothing: requests in the ledger equal misses.
        assert_eq!(sim.ledger().usage().requests, 7);
    }
}
