//! The worker-pool scheduler and its configuration.
//!
//! [`Scheduler::run`] fans `n` index-addressed tasks out across a fixed pool
//! of scoped worker threads fed by a bounded queue. The ZeroED pipeline maps
//! one task to one attribute's stage chain (e.g. analysis → guideline →
//! label batches), which preserves stage ordering *within* an attribute while
//! attributes proceed concurrently. Results come back in task-index order, so
//! downstream consumers are oblivious to scheduling — the foundation of the
//! bit-identical-to-sequential guarantee.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use zeroed_obs::{EventKind, Histogram, HistogramSnapshot, TraceId, TraceRecorder};

/// How the pipeline executes its per-attribute work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// The seed behaviour: plain loops on the calling thread, no scheduler,
    /// no cache. Kept as the correctness oracle.
    Sequential,
    /// Fan attributes out across the worker pool.
    Concurrent,
}

/// Configuration of the orchestration runtime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Execution mode (default concurrent).
    pub mode: ExecMode,
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Bounded submit-queue capacity; submission blocks when full.
    pub queue_capacity: usize,
    /// Additional attempts for fallible tasks (see
    /// [`Scheduler::run_fallible`]).
    pub max_retries: usize,
    /// Enable the request-dedup response cache.
    pub cache: bool,
    /// Response-cache entry budget (completed entries; exceeding it triggers
    /// a generational flush).
    pub cache_capacity: usize,
    /// Multi-backend routing policy (see [`crate::RouterConfig`]): per-backend
    /// budgets, hedged-request policy and circuit-breaker thresholds. `None`
    /// (the default) means single-backend operation; routers built through
    /// [`crate::RouterLlm::from_runtime`] fall back to
    /// [`crate::RouterConfig::for_backends`] defaults in that case.
    pub router: Option<crate::router::RouterConfig>,
    /// Crash-safe on-disk response store (see [`zeroed_store::StoreConfig`]):
    /// when set, published responses are persisted write-through and a new
    /// detector warm-starts its cache from the store directory — repeated
    /// sweeps and service restarts skip the LLM across processes. `None` (the
    /// default) keeps the cache purely in-memory. Requires `cache`; the
    /// sequential oracle path ignores it by design.
    pub store: Option<zeroed_store::StoreConfig>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            mode: ExecMode::Concurrent,
            workers: 0,
            queue_capacity: 256,
            max_retries: 2,
            cache: true,
            cache_capacity: 1 << 20,
            router: None,
            store: None,
        }
    }
}

impl RuntimeConfig {
    /// The sequential correctness oracle: no pool, no cache.
    pub fn sequential() -> Self {
        Self {
            mode: ExecMode::Sequential,
            cache: false,
            ..Self::default()
        }
    }

    /// Concurrent execution with caching disabled.
    pub fn concurrent_uncached() -> Self {
        Self {
            cache: false,
            ..Self::default()
        }
    }

    /// Resolved worker count (`workers == 0` → available parallelism).
    pub fn effective_workers(&self) -> usize {
        match self.mode {
            ExecMode::Sequential => 1,
            ExecMode::Concurrent => {
                if self.workers == 0 {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                } else {
                    self.workers
                }
            }
        }
    }
}

/// Snapshot of scheduler activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Fan-out batches executed (one per [`Scheduler::run`] call).
    pub batches: u64,
    /// Tasks completed.
    pub tasks: u64,
    /// Retry attempts performed by [`Scheduler::run_fallible`].
    pub retries: u64,
}

/// Per-task timing distributions for one scheduler's lifetime: how long each
/// task sat in the bounded queue before a worker picked it up, and how long
/// its closure ran. Snapshots come from [`Scheduler::timings`]; quantiles are
/// exact nearest-rank over the histogram's sample window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerTimings {
    /// Submit-to-pop latency per task (zero on the inline fast path, which
    /// has no queue and records nothing here).
    pub queue_wait: HistogramSnapshot,
    /// Closure execution time per task (recorded on both paths).
    pub execute: HistogramSnapshot,
}

#[derive(Default)]
struct Counters {
    batches: AtomicU64,
    tasks: AtomicU64,
    retries: AtomicU64,
}

/// A bounded multi-producer multi-consumer queue of task indices.
struct BoundedQueue {
    inner: Mutex<QueueState>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

struct QueueState {
    items: VecDeque<usize>,
    closed: bool,
}

impl BoundedQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks while the queue is at capacity. Returns `false` once the queue
    /// has been closed (e.g. by a panicking worker's guard) — submitters must
    /// stop producing, otherwise a producer blocked on a full queue whose
    /// consumers all died would wait forever.
    fn push(&self, item: usize) -> bool {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.closed {
                return false;
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                drop(state);
                self.not_empty.notify_one();
                return true;
            }
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until an item is available; `None` once closed and drained.
    fn pop(&self) -> Option<usize> {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        // Wake everyone: blocked producers must observe `closed` and bail,
        // idle workers must drain and exit.
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Closes the queue when its worker unwinds, so the producer and sibling
/// workers cannot deadlock on a queue nobody will ever drain; the panic
/// itself still propagates when the worker scope joins.
struct PanicGuard<'a>(&'a BoundedQueue);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.close();
        }
    }
}

/// The worker-pool scheduler.
pub struct Scheduler {
    workers: usize,
    queue_capacity: usize,
    max_retries: usize,
    counters: Counters,
    queue_wait: Histogram,
    execute: Histogram,
    /// Per-run flight recorder (see [`Scheduler::with_recorder`]); when set,
    /// every task journals submit/start/end under a deterministic
    /// [`TraceId::for_task`] id.
    recorder: Option<Arc<TraceRecorder>>,
    /// Numbers each [`Scheduler::run`] fan-out so task trace ids stay unique
    /// across the many batches one detection runs.
    fanouts: AtomicU64,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("max_retries", &self.max_retries)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Scheduler {
    /// Builds the scheduler a config describes.
    pub fn from_config(config: &RuntimeConfig) -> Self {
        Self {
            workers: config.effective_workers().max(1),
            queue_capacity: config.queue_capacity,
            max_retries: config.max_retries,
            counters: Counters::default(),
            queue_wait: Histogram::new(),
            execute: Histogram::new(),
            recorder: None,
            fanouts: AtomicU64::new(0),
        }
    }

    /// A scheduler with an explicit worker count (tests/benches).
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            queue_capacity: 256,
            max_retries: 2,
            counters: Counters::default(),
            queue_wait: Histogram::new(),
            execute: Histogram::new(),
            recorder: None,
            fanouts: AtomicU64::new(0),
        }
    }

    /// Attach a flight recorder: every task emits
    /// [`EventKind::TaskSubmit`] / [`EventKind::TaskStart`] /
    /// [`EventKind::TaskEnd`] (`arg` = task index) under a deterministic
    /// per-task [`TraceId`].
    pub fn with_recorder(mut self, recorder: Arc<TraceRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Resolved worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            batches: self.counters.batches.load(Ordering::Relaxed),
            tasks: self.counters.tasks.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
        }
    }

    /// Per-task queue-wait and execute-time distributions accumulated across
    /// every batch this scheduler has run.
    pub fn timings(&self) -> SchedulerTimings {
        SchedulerTimings {
            queue_wait: self.queue_wait.snapshot(),
            execute: self.execute.snapshot(),
        }
    }

    /// Runs tasks `0..n` on the pool and returns their results in task order.
    ///
    /// `f` runs once per task; a panicking task aborts the whole batch (the
    /// panic propagates when the worker scope joins). With one worker, or a
    /// single task, everything runs inline on the calling thread.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        let fanout = self.fanouts.fetch_add(1, Ordering::Relaxed);
        // Deterministic per-task trace id for this fan-out (no-ops when no
        // recorder is attached).
        let task_trace = |i: usize| -> TraceId {
            match &self.recorder {
                Some(rec) => TraceId::for_task(rec.nonce(), fanout, i as u64),
                None => TraceId::NONE,
            }
        };
        let journal = |trace: TraceId, kind: EventKind, i: usize| {
            if let Some(rec) = &self.recorder {
                rec.emit(trace, kind, i as u64);
            }
        };
        if self.workers <= 1 || n <= 1 {
            self.counters.tasks.fetch_add(n as u64, Ordering::Relaxed);
            return (0..n)
                .map(|i| {
                    let trace = task_trace(i);
                    journal(trace, EventKind::TaskSubmit, i);
                    journal(trace, EventKind::TaskStart, i);
                    let t = Instant::now();
                    let value = f(i);
                    self.execute.record(t.elapsed());
                    journal(trace, EventKind::TaskEnd, i);
                    value
                })
                .collect();
        }
        let queue = BoundedQueue::new(self.queue_capacity);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        // Submit timestamps as nanos since `batch_start`: the producer stamps
        // slot `i` before pushing index `i`, the popping worker subtracts to
        // get the task's queue wait. The queue's mutex orders the relaxed
        // store before the worker's load.
        let batch_start = Instant::now();
        let submitted: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..self.workers.min(n) {
                s.spawn(|| {
                    let _guard = PanicGuard(&queue);
                    while let Some(i) = queue.pop() {
                        let waited = batch_start
                            .elapsed()
                            .as_nanos()
                            .saturating_sub(submitted[i].load(Ordering::Relaxed) as u128);
                        self.queue_wait
                            .record_nanos(waited.min(u64::MAX as u128) as u64);
                        let trace = task_trace(i);
                        journal(trace, EventKind::TaskStart, i);
                        let t = Instant::now();
                        let value = f(i);
                        self.execute.record(t.elapsed());
                        journal(trace, EventKind::TaskEnd, i);
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
                        self.counters.tasks.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for i in 0..n {
                submitted[i].store(
                    batch_start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                    Ordering::Relaxed,
                );
                journal(task_trace(i), EventKind::TaskSubmit, i);
                if !queue.push(i) {
                    // A worker panicked and closed the queue; stop producing
                    // and let the scope join rethrow the panic.
                    break;
                }
            }
            queue.close();
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every task slot is filled before the scope joins")
            })
            .collect()
    }

    /// Like [`Scheduler::run`] for fallible tasks: each task is attempted up
    /// to `1 + max_retries` times; the first success (or the last error) is
    /// returned, in task order.
    pub fn run_fallible<T, E, F>(&self, n: usize, f: F) -> Vec<Result<T, E>>
    where
        T: Send,
        E: Send,
        F: Fn(usize) -> Result<T, E> + Sync,
    {
        self.run(n, |i| {
            let mut last = f(i);
            let mut attempts = 0;
            while last.is_err() && attempts < self.max_retries {
                attempts += 1;
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                last = f(i);
            }
            last
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_task_order() {
        let s = Scheduler::with_workers(4);
        let out = s.run(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(s.stats().tasks, 100);
        assert_eq!(s.stats().batches, 1);
    }

    #[test]
    fn single_worker_runs_inline() {
        let s = Scheduler::with_workers(1);
        let out = s.run(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn pool_actually_overlaps_work() {
        use std::time::{Duration, Instant};
        let s = Scheduler::with_workers(8);
        let start = Instant::now();
        let _ = s.run(8, |_| std::thread::sleep(Duration::from_millis(40)));
        // Eight 40 ms sleeps on eight workers should take ~40 ms, not 320 ms.
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "pool did not overlap: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn bounded_queue_survives_small_capacity() {
        let mut s = Scheduler::with_workers(3);
        s.queue_capacity = 2;
        let out = s.run(50, |i| i);
        assert_eq!(out.len(), 50);
        assert_eq!(out[49], 49);
    }

    #[test]
    fn panicking_tasks_propagate_instead_of_deadlocking() {
        // More tasks than queue capacity + workers, every task panics: the
        // workers die immediately, and without the panic guard the producer
        // would block forever on the full queue. The run must end in a panic.
        let mut s = Scheduler::with_workers(2);
        s.queue_capacity = 1;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.run(64, |i: usize| -> usize { panic!("task {i} failed") })
        }));
        assert!(result.is_err(), "the task panic must propagate");
    }

    #[test]
    fn retry_policy_retries_up_to_the_budget() {
        let s = Scheduler::with_workers(2);
        let attempts = AtomicUsize::new(0);
        let out = s.run_fallible(4, |i| {
            if i == 2 {
                // Fails twice, then succeeds (max_retries is 2).
                let n = attempts.fetch_add(1, Ordering::SeqCst);
                if n < 2 {
                    return Err("flaky");
                }
            }
            Ok(i)
        });
        assert!(out.iter().enumerate().all(|(i, r)| *r == Ok(i)));
        assert_eq!(s.stats().retries, 2);

        let exhausted = s.run_fallible(1, |_| Err::<(), _>("always"));
        assert_eq!(exhausted[0], Err("always"));
    }

    #[test]
    fn timings_cover_every_task() {
        let s = Scheduler::with_workers(4);
        let _ = s.run(32, |_| std::thread::sleep(std::time::Duration::from_millis(1)));
        let t = s.timings();
        assert_eq!(t.execute.count, 32);
        assert_eq!(t.queue_wait.count, 32);
        // Each task slept ≥1ms, so the p50 execute time cannot be below it.
        assert!(t.execute.p50_nanos >= 1_000_000);

        // The inline path records execute but has no queue to wait in.
        let inline = Scheduler::with_workers(1);
        let _ = inline.run(4, |i| i);
        assert_eq!(inline.timings().execute.count, 4);
        assert_eq!(inline.timings().queue_wait.count, 0);
    }

    #[test]
    fn recorder_journals_every_task_exactly_once() {
        let rec = TraceRecorder::new(5);
        let s = Scheduler::with_workers(4).with_recorder(Arc::clone(&rec));
        let _ = s.run(32, |i| i);
        let _ = s.run(8, |i| i); // second fan-out mints distinct trace ids
        assert_eq!(rec.count(EventKind::TaskSubmit), 40);
        assert_eq!(rec.count(EventKind::TaskStart), 40);
        assert_eq!(rec.count(EventKind::TaskEnd), 40);
        assert_eq!(rec.dropped(), 0);
        zeroed_obs::check_causality(&rec.events()).expect("well-formed task stream");

        // The inline fast path journals the same triple.
        let rec = TraceRecorder::new(5);
        let inline = Scheduler::with_workers(1).with_recorder(Arc::clone(&rec));
        let _ = inline.run(4, |i| i);
        assert_eq!(rec.count(EventKind::TaskSubmit), 4);
        assert_eq!(rec.count(EventKind::TaskEnd), 4);
        zeroed_obs::check_causality(&rec.events()).expect("inline stream");
    }

    #[test]
    fn config_resolves_workers_and_modes() {
        let c = RuntimeConfig::default();
        assert_eq!(c.mode, ExecMode::Concurrent);
        assert!(c.cache);
        assert!(c.effective_workers() >= 1);
        let seq = RuntimeConfig::sequential();
        assert_eq!(seq.mode, ExecMode::Sequential);
        assert_eq!(seq.effective_workers(), 1);
        assert!(!seq.cache);
        assert!(!RuntimeConfig::concurrent_uncached().cache);
        let fixed = RuntimeConfig {
            workers: 3,
            ..RuntimeConfig::default()
        };
        assert_eq!(fixed.effective_workers(), 3);
    }
}
