//! # zeroed-runtime
//!
//! The concurrent LLM-orchestration runtime underneath the ZeroED pipeline.
//!
//! ZeroED spends most of its wall-clock and token budget in per-attribute LLM
//! stages (distribution analysis, guideline generation, batched labelling,
//! criteria refinement — paper §III and the Fig. 8 token-cost experiments).
//! The seed implementation drove every call sequentially through a blocking
//! [`zeroed_llm::LlmClient`], one column at a time. This crate turns those
//! interactions into explicit, keyed requests executed on a configurable
//! worker pool, with content-addressed deduplication of identical requests.
//!
//! ## Request lifecycle
//!
//! A request travels through four stations:
//!
//! 1. **Submit** — a pipeline stage (e.g. "label column 3, batch 2") renders
//!    its prompt and derives a [`RequestKey`]: a 128-bit content hash of the
//!    request kind, model name, target coordinates (table fingerprint, column,
//!    row indices), the rendered prompt, and the client's
//!    [`zeroed_llm::LlmClient::request_salt`] (hidden state such as the
//!    simulator's seed and oracle bits). Two requests share a key *iff* a
//!    deterministic model must answer them identically.
//! 2. **Dedup** — the [`ResponseCache`] is consulted. A completed entry is
//!    returned immediately (a *hit*: no model call, no tokens, no latency).
//!    An entry that another worker is currently computing parks the caller on
//!    a condition variable until the response lands (*single-flight
//!    coalescing*: concurrent identical requests cost one model call). A
//!    miss claims the in-flight slot and proceeds.
//! 3. **Execute** — the wrapped [`zeroed_llm::LlmClient`] performs the actual
//!    call (for [`zeroed_llm::SimLlm`]: deterministic simulation plus token
//!    accounting plus optional simulated serving latency). The [`Scheduler`]
//!    is what puts many executions in flight at once: per-attribute stage
//!    chains (analysis → guideline → label batches) run as one task each, so
//!    stage order *within* an attribute is preserved while attributes
//!    proceed concurrently across a bounded work queue and a fixed worker
//!    pool, with a simple bounded-retry policy for fallible tasks.
//! 4. **Publish** — the response value and its exact token cost are stored
//!    under the key; parked waiters wake; counters (hits, misses, coalesced
//!    waits, tokens saved) update. Later identical requests — retries,
//!    re-runs of the same detection, repeated values — replay the stored
//!    response for free.
//!
//! The cache guarantees **bit-identical replay**: a cached response is the
//! exact value the wrapped client returned for that key, and the key covers
//! everything the (deterministic) client's answer depends on. The pipeline's
//! sequential path therefore remains the correctness oracle — concurrent and
//! cached runs must produce the same [`zeroed_table::ErrorMask`], which
//! `crates/core` asserts in its equivalence tests (the same discipline
//! `zeroed_features::reference` established for the featuriser).
//!
//! [`CachedLlm`] packages stations 1, 2 and 4 behind the ordinary
//! [`zeroed_llm::LlmClient`] trait, so pipeline code does not change shape
//! when caching is enabled.
//!
//! ## Multi-backend routing
//!
//! [`RouterLlm`] extends station 3 across N backends. It is itself an
//! ordinary [`zeroed_llm::LlmClient`], so the stack composes as
//!
//! ```text
//! pipeline stages → Scheduler workers → CachedLlm → RouterLlm → backend 0..N
//! ```
//!
//! with cache hits short-circuiting before any routing happens. Per request
//! the router derives a deterministic fingerprint (the [`RequestKey`] hash of
//! kind + prompt + hidden-state salt) and, from it alone plus breaker state,
//! decides which backend serves: fingerprint-spread primary selection,
//! deterministic failover past backends scheduled to fail (probed through
//! [`zeroed_llm::LlmClient::injected_fault`] and charged to per-backend
//! circuit breakers clocked in routed requests), hedging of slow-tail
//! requests onto a second backend after a latency-percentile deadline (the
//! cancelled loser's cost lands on a `hedge_waste` ledger line), and fail-open
//! execution when every backend is scheduled to fail — a request is never
//! lost and never duplicated. Exactly one backend executes per routed
//! request, which keeps token accounting exact:
//! `sequential total = Σ per-backend useful tokens + cache savings`, with
//! hedge waste reported separately.
//!
//! ## Cross-process persistence
//!
//! The response cache is in-memory; [`StoreLayer`] extends station 4 across
//! *process* boundaries by writing every published response through to a
//! crash-safe on-disk segment store (`zeroed-store`), keyed by the same
//! 128-bit [`RequestKey`]:
//!
//! ```text
//!            publish (miss)                       open (warm start)
//! CachedLlm ───────────────▶ StoreSink ─┐   ┌──▶ preload_into(ResponseCache)
//!                                       ▼   │
//!                        writer thread ──▶ ResponseStore (seg-NNNNNN.zseg)
//! ```
//!
//! Persistence is **write-through and asynchronous**: a miss enqueues the
//! `(key, response)` pair and returns — the worker pool never blocks on an
//! fsync. A fresh detector pointed at the same store directory preloads every
//! live record into its cache as `Persisted` entries before the first
//! request, so a benchmark re-run, service restart or second experiment bin
//! issues **zero** LLM calls and reproduces bit-identical masks (the warm-hit
//! replays the exact stored value and charges the exact persisted token cost
//! as savings — the ledger reconciles to the cold run's bill). Recovery
//! tolerates torn tails, flipped bits and zero-length segments by truncating
//! or skipping, never by refusing to open; see `zeroed-store`'s crate docs
//! for the segment format and the versioning rules.
//!
//! The persistence contract rests on [`RequestKey`] stability: the store's
//! `KEY_SCHEMA_VERSION` is pinned against the golden 128-bit key values in
//! `tests/request_key_golden.rs`, so a hash-input reordering that would
//! silently invalidate persisted entries fails CI instead.
//!
//! ## Conformance suites
//!
//! The contract — routed masks bit-identical to a single-backend sequential
//! oracle under every fault schedule, ledgers reconciling to the token — is
//! enforced by `tests/router_conformance.rs`; scheduler liveness under
//! saturation and hostile tasks by `tests/scheduler_stress.rs`;
//! [`RequestKey`] derivation stability and the persisted-format version pins
//! by `tests/request_key_golden.rs`; and the cross-process warm start
//! (cold run → reopen in a fresh detector → zero-request warm run) by
//! `crates/core/tests/store_warm_start.rs`.

pub mod cache;
pub mod client;
pub mod key;
pub mod persist;
pub mod router;
pub mod scheduler;

pub use cache::{
    CacheStats, CacheTimings, CachedResponse, Lookup, ResponseCache, ResponseOrigin,
    StoredResponse,
};
pub use client::CachedLlm;
pub use key::{RequestKey, RequestKeyBuilder, RequestKind};
pub use persist::{PersistStats, StoreLayer, StoreLayerTimings, StoreSink};
pub use router::{
    BackendConfig, BackendStats, BreakerPolicy, HedgePolicy, RouterConfig, RouterLlm, RouterStats,
};
pub use scheduler::{ExecMode, RuntimeConfig, Scheduler, SchedulerStats, SchedulerTimings};
pub use zeroed_store::{FsyncPolicy, RecoveryReport, ShardedStore, StoreConfig, StoreStats};
