//! [`RouterLlm`]: a composite multi-backend [`LlmClient`].
//!
//! ZeroED's cost case assumes every request lands on one healthy backbone;
//! a production deployment has several (replicas of one model behind
//! different endpoints, or mirrored deployments across zones), each with its
//! own latency profile, failure modes and concurrency budget. The router fans
//! requests across N registered backends and keeps the pipeline's contract
//! intact: **routing must never change a detection result**, only who serves
//! it and how fast.
//!
//! ## Routing discipline
//!
//! Every request is reduced to a 64-bit *fingerprint* (request kind + rendered
//! prompt + hidden-state salt, hashed with the [`RequestKey`] scheme). All
//! routing decisions are pure functions of that fingerprint and the current
//! breaker state:
//!
//! 1. **Primary selection** — the fingerprint picks a backend from the
//!    currently admissible set (circuit-closed, or tripped-but-due-for-probe),
//!    spreading load deterministically.
//! 2. **Deterministic failover** — each candidate is probed through
//!    [`LlmClient::injected_fault`] *before* execution; a backend scheduled to
//!    error or time out is skipped (its breaker charged, timeouts paying their
//!    deadline) and the walk continues in registration order. If every
//!    candidate faults, the primary executes anyway (*fail-open*): a request
//!    is never lost and never duplicated.
//! 3. **Hedging** — when the selected backend sits in its latency slow-tail,
//!    and the hedge policy is enabled, a second backend is fired after the
//!    observed latency-percentile deadline. The first valid response wins; the
//!    loser is cancelled and its request cost is charged to that backend's
//!    `hedge_waste` ledger line instead of the useful-token ledger. Exactly
//!    one backend's client executes per request either way, which is what
//!    makes token ledgers reconcile exactly:
//!    `sequential total = Σ per-backend useful tokens + cache savings`, with
//!    `hedge_waste` reported separately as the price of the latency win.
//! 4. **Circuit breaking** — consecutive faults trip a backend open for a
//!    fixed number of routed requests (a deterministic request-counter clock,
//!    not wall time); the first request after the cooldown probes it, and a
//!    failed probe re-trips.
//!
//! Because fault schedules key off the request salt (see
//! [`zeroed_llm::FaultSchedule`]), the entire decision tree is reproducible:
//! the router conformance suite replays every fault schedule and asserts
//! routed masks are bit-identical to a single-backend sequential oracle.
//!
//! The router is an ordinary [`LlmClient`], so [`crate::CachedLlm`] stacks on
//! top of it unchanged (cache hits skip routing entirely) and the pipeline's
//! `detect_concurrent` runs on it without modification.

use crate::key::{RequestKey, RequestKind};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use zeroed_obs::{current_id, EventKind, TraceRecorder};
use zeroed_criteria::CriteriaSet;
use zeroed_llm::{
    count_tokens, prompts, AttributeContext, DistributionAnalysis, FaultKind, Guideline,
    LlmClient, TokenLedger,
};
use zeroed_table::Table;

/// Per-backend routing policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackendConfig {
    /// Display name for stats and ledgers (defaults to `backend-<i>`).
    pub name: String,
    /// Maximum concurrent in-flight requests on this backend; `0` means
    /// unlimited. Models a per-endpoint serving-concurrency budget.
    pub budget: usize,
}

impl BackendConfig {
    /// The default policy for backend `index`.
    pub fn numbered(index: usize) -> Self {
        Self {
            name: format!("backend-{index}"),
            budget: 0,
        }
    }
}

/// When and how a second backend is hedged in.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HedgePolicy {
    /// Master switch.
    pub enabled: bool,
    /// Latency percentile of observed request latencies that sets the hedge
    /// deadline (classic tail-latency hedging fires at p95).
    pub percentile: f64,
    /// Floor (and cold-start value, before enough samples exist) for the
    /// hedge deadline, in milliseconds.
    pub min_deadline_ms: f64,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            percentile: 0.95,
            min_deadline_ms: 25.0,
        }
    }
}

/// Circuit-breaker thresholds, clocked by routed-request count so breaker
/// behaviour is reproducible (wall-clock cooldowns are not).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Consecutive faults that trip a backend's breaker open.
    pub failure_threshold: u32,
    /// Routed requests that must pass before a tripped backend is probed
    /// again (half-open).
    pub cooldown_requests: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            failure_threshold: 4,
            cooldown_requests: 32,
        }
    }
}

/// The full router configuration, carried by
/// [`crate::RuntimeConfig::router`] so pipeline configs describe their
/// multi-backend setup alongside worker and cache budgets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterConfig {
    /// One entry per registered backend (padded with
    /// [`BackendConfig::numbered`] defaults if shorter than the client list).
    pub backends: Vec<BackendConfig>,
    /// Hedged-request policy.
    pub hedge: HedgePolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerPolicy,
    /// Deadline a timed-out candidate costs before failover, in milliseconds.
    pub timeout_ms: f64,
    /// Multiplier for the router's own simulated waits (timeout deadlines and
    /// hedge-fire delays); `0.0` disables sleeping, mirroring
    /// `SimLlm::with_latency_scale`.
    pub latency_scale: f64,
}

impl RouterConfig {
    /// A default configuration for `n` backends.
    pub fn for_backends(n: usize) -> Self {
        Self {
            backends: (0..n).map(BackendConfig::numbered).collect(),
            hedge: HedgePolicy::default(),
            breaker: BreakerPolicy::default(),
            timeout_ms: 50.0,
            latency_scale: 0.0,
        }
    }
}

/// Activity of one backend, in a [`RouterStats`] snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Backend display name.
    pub name: String,
    /// Requests this backend executed (and won).
    pub requests: u64,
    /// Prompt tokens of executed requests.
    pub input_tokens: u64,
    /// Completion tokens of executed requests.
    pub output_tokens: u64,
    /// Hedged requests fired *to* this backend.
    pub hedges_fired: u64,
    /// Hedged races this backend won.
    pub hedges_won: u64,
    /// Tokens charged to this backend's cancelled (losing) hedge calls.
    pub hedge_waste_tokens: u64,
    /// Injected hard errors observed while probing this backend.
    pub faults_error: u64,
    /// Injected timeouts observed while probing this backend.
    pub faults_timeout: u64,
    /// Slow-tail faults observed on this backend.
    pub faults_slow: u64,
    /// Times this backend's breaker tripped open.
    pub breaker_trips: u64,
    /// Latency distribution of the requests this backend executed (and won):
    /// lifetime count/total/max plus exact window p50/p95/p99.
    pub latency: zeroed_obs::HistogramSnapshot,
}

impl BackendStats {
    /// Useful tokens this backend served.
    pub fn tokens(&self) -> u64 {
        self.input_tokens + self.output_tokens
    }
}

/// Snapshot of router activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Requests routed (each executes exactly one backend call).
    pub requests: u64,
    /// Candidates skipped during failover because of injected error/timeout
    /// faults.
    pub failovers: u64,
    /// Hedged requests fired.
    pub hedges_fired: u64,
    /// Hedged races won by the hedge (rather than the slow primary).
    pub hedges_won_by_hedge: u64,
    /// Requests executed fail-open on a faulted backend because every
    /// candidate was scheduled to fail. The request still completes.
    pub forced_executions: u64,
    /// Breaker trips across all backends.
    pub breaker_trips: u64,
    /// Tokens charged to cancelled hedge losers across all backends.
    pub hedge_waste_tokens: u64,
    /// Per-backend breakdown.
    pub backends: Vec<BackendStats>,
}

impl RouterStats {
    /// Useful tokens served across all backends (excludes hedge waste).
    pub fn tokens(&self) -> u64 {
        self.backends.iter().map(BackendStats::tokens).sum()
    }

    /// Total spend including cancelled hedges: useful + waste.
    pub fn total_spend_tokens(&self) -> u64 {
        self.tokens() + self.hedge_waste_tokens
    }
}

/// A counting semaphore bounding one backend's in-flight requests.
struct Budget {
    capacity: usize,
    in_flight: Mutex<usize>,
    freed: Condvar,
}

impl Budget {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Blocks until a slot frees up; the permit releases on drop, so a
    /// panicking backend call cannot leak the slot and starve later requests.
    fn acquire(&self) -> BudgetPermit<'_> {
        if self.capacity > 0 {
            let mut n = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
            while *n >= self.capacity {
                n = self.freed.wait(n).unwrap_or_else(|e| e.into_inner());
            }
            *n += 1;
        }
        BudgetPermit(self)
    }

    fn release(&self) {
        if self.capacity == 0 {
            return;
        }
        let mut n = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
        *n = n.saturating_sub(1);
        drop(n);
        self.freed.notify_one();
    }
}

/// RAII permit for one in-flight request on a backend.
struct BudgetPermit<'a>(&'a Budget);

impl Drop for BudgetPermit<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// How a breaker admits (or refuses) a backend at selection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    /// Breaker closed: freely admissible.
    Closed,
    /// Breaker open but the cooldown has elapsed: admissible as a half-open
    /// probe whose outcome decides whether it closes or re-trips.
    Probe,
    /// Breaker open and not yet due: not admissible.
    Refused,
}

/// Circuit-breaker state, clocked in routed requests.
enum BreakerState {
    Closed,
    /// Tripped open until the router's request counter reaches `until`, at
    /// which point the next selection may probe it (half-open).
    Open { until: u64 },
}

struct Breaker {
    consecutive: u32,
    state: BreakerState,
}

#[derive(Default)]
struct BackendCounters {
    requests: AtomicU64,
    input_tokens: AtomicU64,
    output_tokens: AtomicU64,
    hedges_fired: AtomicU64,
    hedges_won: AtomicU64,
    hedge_waste_tokens: AtomicU64,
    faults_error: AtomicU64,
    faults_timeout: AtomicU64,
    faults_slow: AtomicU64,
    breaker_trips: AtomicU64,
}

struct Backend<'a> {
    client: &'a dyn LlmClient,
    config: BackendConfig,
    budget: Budget,
    breaker: Mutex<Breaker>,
    counters: BackendCounters,
    /// Caller-observed latency of requests this backend executed (and won),
    /// surfaced as [`BackendStats::latency`].
    latency: zeroed_obs::Histogram,
}

#[derive(Default)]
struct RouterCounters {
    requests: AtomicU64,
    failovers: AtomicU64,
    hedges_fired: AtomicU64,
    hedges_won_by_hedge: AtomicU64,
    forced: AtomicU64,
}

/// Latency-sample retention cap. Recent-window quantiles are what both the
/// hedge deadline and the benchmark report want, and the bound keeps a
/// long-running router's memory and per-hedge sort cost constant. This is
/// the [`zeroed_obs::Histogram`] default window, restated here so the router
/// docs and tests name the number they rely on.
const LATENCY_WINDOW: usize = zeroed_obs::Histogram::DEFAULT_WINDOW;

/// Memoised hedge deadline: recomputing the latency percentile means cloning
/// and sorting the whole sample window, so it is refreshed at most once per
/// [`DEADLINE_REFRESH`] routed samples instead of on every hedge.
#[derive(Default)]
struct DeadlineCache {
    at_total: u64,
    value: Duration,
}

/// How many new samples may accumulate before the hedge deadline is
/// recomputed from the latency window.
const DEADLINE_REFRESH: u64 = 32;

/// The multi-backend routing [`LlmClient`] (see module docs).
pub struct RouterLlm<'a> {
    name: String,
    backends: Vec<Backend<'a>>,
    hedge: HedgePolicy,
    breaker_policy: BreakerPolicy,
    timeout_penalty: Duration,
    latency_scale: f64,
    /// Aggregate of executed (winning) calls, charged with the exact same
    /// token arithmetic the backends use — so
    /// `router.ledger() == Σ backend ledgers` when backends start fresh.
    ledger: TokenLedger,
    counters: RouterCounters,
    /// Per-request wall latency (the caller-observed duration of each routed
    /// request, including failover timeouts and hedge deadlines). Quantiles
    /// are computed over the most recent [`LATENCY_WINDOW`] requests.
    samples: zeroed_obs::Histogram,
    /// Memoised hedge deadline (see [`DeadlineCache`]).
    deadline: Mutex<DeadlineCache>,
    /// Flight recorder installed for the duration of a traced run
    /// ([`RouterLlm::install_recorder`]); routing decisions journal into it
    /// under whatever [`zeroed_obs::TraceId`] the caller's trace scope holds.
    recorder: Mutex<Option<Arc<TraceRecorder>>>,
}

impl std::fmt::Debug for RouterLlm<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterLlm")
            .field("name", &self.name)
            .field("backends", &self.backends.len())
            .field("hedge", &self.hedge)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<'a> RouterLlm<'a> {
    /// Builds a router over `clients`, zipping them positionally with
    /// `config.backends` (missing entries get numbered defaults).
    ///
    /// Routing is response-transparent **iff** the registered backends are
    /// response-equivalent: any two must answer every request identically
    /// (replicas of one deterministic model — same profile, seed and oracle;
    /// latency profiles and fault schedules may differ freely). That is the
    /// contract the conformance suite enforces; the router does not (cannot)
    /// verify it per request.
    pub fn new(clients: Vec<&'a dyn LlmClient>, config: &RouterConfig) -> Self {
        assert!(!clients.is_empty(), "RouterLlm needs at least one backend");
        let name = format!(
            "router[{}]",
            clients
                .iter()
                .map(|c| c.name())
                .collect::<Vec<_>>()
                .join("+")
        );
        let backends = clients
            .into_iter()
            .enumerate()
            .map(|(i, client)| {
                let cfg = config
                    .backends
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| BackendConfig::numbered(i));
                Backend {
                    client,
                    budget: Budget::new(cfg.budget),
                    breaker: Mutex::new(Breaker {
                        consecutive: 0,
                        state: BreakerState::Closed,
                    }),
                    counters: BackendCounters::default(),
                    latency: zeroed_obs::Histogram::new(),
                    config: cfg,
                }
            })
            .collect();
        Self {
            name,
            backends,
            hedge: config.hedge,
            breaker_policy: config.breaker,
            timeout_penalty: Duration::from_nanos((config.timeout_ms.max(0.0) * 1e6) as u64),
            latency_scale: config.latency_scale.max(0.0),
            ledger: TokenLedger::new(),
            counters: RouterCounters::default(),
            samples: zeroed_obs::Histogram::with_window(LATENCY_WINDOW),
            deadline: Mutex::new(DeadlineCache::default()),
            recorder: Mutex::new(None),
        }
    }

    /// Builds a router from a [`crate::RuntimeConfig`]: its `router` section
    /// if present, [`RouterConfig::for_backends`] defaults otherwise.
    pub fn from_runtime(runtime: &crate::RuntimeConfig, clients: Vec<&'a dyn LlmClient>) -> Self {
        let config = runtime
            .router
            .clone()
            .unwrap_or_else(|| RouterConfig::for_backends(clients.len()));
        Self::new(clients, &config)
    }

    /// Number of registered backends.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// Installs a flight recorder: every subsequent routed request journals
    /// its decisions (primary pick, failovers, injected faults, breaker
    /// trips/probes, hedging, completion) as [`zeroed_obs::TraceEvent`]s,
    /// stamped with the caller's current trace scope id. Interior-mutable so
    /// a traced run can attach to a router it only holds by `&`.
    pub fn install_recorder(&self, recorder: Arc<TraceRecorder>) {
        *self.recorder.lock().unwrap_or_else(|e| e.into_inner()) = Some(recorder);
    }

    /// Detaches the recorder installed by [`RouterLlm::install_recorder`].
    pub fn clear_recorder(&self) {
        *self.recorder.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Snapshot of routing activity.
    pub fn stats(&self) -> RouterStats {
        let backends: Vec<BackendStats> = self
            .backends
            .iter()
            .map(|b| BackendStats {
                name: b.config.name.clone(),
                requests: b.counters.requests.load(Ordering::Relaxed),
                input_tokens: b.counters.input_tokens.load(Ordering::Relaxed),
                output_tokens: b.counters.output_tokens.load(Ordering::Relaxed),
                hedges_fired: b.counters.hedges_fired.load(Ordering::Relaxed),
                hedges_won: b.counters.hedges_won.load(Ordering::Relaxed),
                hedge_waste_tokens: b.counters.hedge_waste_tokens.load(Ordering::Relaxed),
                faults_error: b.counters.faults_error.load(Ordering::Relaxed),
                faults_timeout: b.counters.faults_timeout.load(Ordering::Relaxed),
                faults_slow: b.counters.faults_slow.load(Ordering::Relaxed),
                breaker_trips: b.counters.breaker_trips.load(Ordering::Relaxed),
                latency: b.latency.snapshot(),
            })
            .collect();
        RouterStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            failovers: self.counters.failovers.load(Ordering::Relaxed),
            hedges_fired: self.counters.hedges_fired.load(Ordering::Relaxed),
            hedges_won_by_hedge: self.counters.hedges_won_by_hedge.load(Ordering::Relaxed),
            forced_executions: self.counters.forced.load(Ordering::Relaxed),
            breaker_trips: backends.iter().map(|b| b.breaker_trips).sum(),
            hedge_waste_tokens: backends.iter().map(|b| b.hedge_waste_tokens).sum(),
            backends,
        }
    }

    /// Caller-observed latency of the most recent routed requests (bounded
    /// to the backing histogram's 4096-sample window).
    pub fn latency_samples(&self) -> Vec<Duration> {
        self.samples.samples()
    }

    /// The `q`-quantile (`0.0..=1.0`) of observed request latencies
    /// (`Duration::ZERO` before any request). Exact nearest-rank over the
    /// sample window.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        self.samples.quantile(q.clamp(0.0, 1.0))
    }

    /// Router-wide latency distribution (lifetime count/total/max, window
    /// p50/p95/p99); per-backend distributions are in
    /// [`BackendStats::latency`].
    pub fn latency_histogram(&self) -> zeroed_obs::HistogramSnapshot {
        self.samples.snapshot()
    }

    /// The current hedge deadline: the policy percentile of observed request
    /// latencies, floored by `min_deadline_ms` (used cold-start too). The
    /// percentile is memoised and refreshed at most every
    /// [`DEADLINE_REFRESH`] samples — each refresh clones and sorts the
    /// window, which is too expensive to repeat on every hedge.
    fn hedge_deadline(&self) -> Duration {
        let floor = Duration::from_nanos((self.hedge.min_deadline_ms.max(0.0) * 1e6) as u64);
        // Lifetime sample count doubles as the staleness clock (the window
        // only ever shrinks it to the most recent LATENCY_WINDOW samples).
        let total = self.samples.count();
        if total < 20 {
            return floor;
        }
        {
            let cached = self.deadline.lock().unwrap_or_else(|e| e.into_inner());
            if cached.at_total > 0 && total.saturating_sub(cached.at_total) < DEADLINE_REFRESH {
                return cached.value.max(floor);
            }
        }
        let value = self.samples.quantile(self.hedge.percentile).max(floor);
        *self.deadline.lock().unwrap_or_else(|e| e.into_inner()) = DeadlineCache {
            at_total: total,
            value,
        };
        value
    }

    /// How backend `b`'s breaker admits it at request-clock `now`.
    fn breaker_admission(&self, b: usize, now: u64) -> Admission {
        let breaker = self.backends[b]
            .breaker
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        match breaker.state {
            BreakerState::Closed => Admission::Closed,
            // Due-for-probe acts as half-open: admissible again, and the
            // outcome of the probe decides whether it closes or re-trips.
            BreakerState::Open { until } if now >= until => Admission::Probe,
            BreakerState::Open { .. } => Admission::Refused,
        }
    }

    /// Charges one fault against backend `b`'s breaker. Returns `true` when
    /// this failure tripped the breaker open (so the caller can journal it).
    fn record_failure(&self, b: usize, now: u64) -> bool {
        let backend = &self.backends[b];
        let mut breaker = backend.breaker.lock().unwrap_or_else(|e| e.into_inner());
        breaker.consecutive += 1;
        let trip = match breaker.state {
            // A failed half-open probe re-trips immediately.
            BreakerState::Open { until } => now >= until,
            BreakerState::Closed => breaker.consecutive >= self.breaker_policy.failure_threshold,
        };
        if trip {
            breaker.state = BreakerState::Open {
                until: now + self.breaker_policy.cooldown_requests.max(1),
            };
            backend.counters.breaker_trips.fetch_add(1, Ordering::Relaxed);
        }
        trip
    }

    fn record_success(&self, b: usize) {
        let mut breaker = self.backends[b]
            .breaker
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        breaker.consecutive = 0;
        breaker.state = BreakerState::Closed;
    }

    /// Routes one request (see module docs for the discipline). Exactly one
    /// backend client executes; the returned value is its response.
    fn route<R>(
        &self,
        kind: RequestKind,
        prompt: &str,
        salt_for: impl Fn(&dyn LlmClient) -> u64,
        call: impl Fn(&dyn LlmClient) -> R,
        render: impl Fn(&R) -> String,
    ) -> R {
        let now = self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let t_start = Instant::now();

        // Flight recording: the routed request journals under whatever trace
        // scope the caller (usually `CachedLlm::resolve`) installed on this
        // thread; without a scope the events carry `TraceId::NONE` but still
        // reconcile count-for-count against `RouterStats`.
        let rec = self
            .recorder
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let trace = current_id();
        let journal = |kind: EventKind, arg: u64| {
            if let Some(r) = &rec {
                r.emit(trace, kind, arg);
            }
        };

        // Request fingerprint: kind + prompt + hidden-state salt, hashed with
        // the RequestKey scheme. Response-equivalent backends share salts, so
        // backend 0's stands for the request.
        let fp = {
            let mut b = RequestKey::builder(kind, &self.name);
            b.text(prompt).word(salt_for(self.backends[0].client));
            b.finish().to_u128() as u64
        };

        // Admissible backends in registration order; if every breaker is open
        // and not yet due, fail open over all of them.
        let mut candidates: Vec<usize> = (0..self.backends.len())
            .filter(|&i| match self.breaker_admission(i, now) {
                Admission::Closed => true,
                Admission::Probe => {
                    journal(EventKind::BreakerProbe, i as u64);
                    true
                }
                Admission::Refused => false,
            })
            .collect();
        if candidates.is_empty() {
            candidates = (0..self.backends.len()).collect();
        }
        let start = (fp % candidates.len() as u64) as usize;
        journal(EventKind::RouterPrimary, candidates[start] as u64);

        // Deterministic failover walk: skip candidates scheduled to error or
        // time out, charging their breakers (and paying timeout deadlines).
        let mut chosen: Option<(usize, bool)> = None;
        let mut extra_wait = Duration::ZERO;
        for k in 0..candidates.len() {
            let b = candidates[(start + k) % candidates.len()];
            let backend = &self.backends[b];
            match backend.client.injected_fault(salt_for(backend.client)) {
                Some(FaultKind::Error) => {
                    backend.counters.faults_error.fetch_add(1, Ordering::Relaxed);
                    self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                    journal(EventKind::FaultInjected, b as u64);
                    journal(EventKind::RouterFailover, b as u64);
                    if self.record_failure(b, now) {
                        journal(EventKind::BreakerTrip, b as u64);
                    }
                }
                Some(FaultKind::Timeout) => {
                    backend
                        .counters
                        .faults_timeout
                        .fetch_add(1, Ordering::Relaxed);
                    self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                    extra_wait += self.timeout_penalty;
                    journal(EventKind::FaultInjected, b as u64);
                    journal(EventKind::RouterFailover, b as u64);
                    if self.record_failure(b, now) {
                        journal(EventKind::BreakerTrip, b as u64);
                    }
                }
                Some(FaultKind::SlowTail) => {
                    backend.counters.faults_slow.fetch_add(1, Ordering::Relaxed);
                    journal(EventKind::FaultInjected, b as u64);
                    chosen = Some((b, true));
                    break;
                }
                None => {
                    chosen = Some((b, false));
                    break;
                }
            }
        }
        let (mut winner, winner_slow, forced) = match chosen {
            Some((b, slow)) => (b, slow, false),
            None => {
                // Every candidate is scheduled to fail: execute the rotation's
                // primary anyway. The request is answered, never dropped.
                self.counters.forced.fetch_add(1, Ordering::Relaxed);
                (candidates[start], false, true)
            }
        };

        // Hedge: a slow-tail winner races the next viable backend. The loser
        // is cancelled — its client never executes — and the request cost is
        // charged to its hedge-waste line below.
        let mut loser: Option<usize> = None;
        if self.hedge.enabled && winner_slow && !forced && self.backends.len() > 1 {
            let winner_pos = candidates.iter().position(|&b| b == winner).unwrap_or(0);
            let mut hedge: Option<(usize, bool)> = None;
            for k in 1..candidates.len() {
                let b = candidates[(winner_pos + k) % candidates.len()];
                let backend = &self.backends[b];
                match backend.client.injected_fault(salt_for(backend.client)) {
                    Some(FaultKind::Error) | Some(FaultKind::Timeout) => continue,
                    Some(FaultKind::SlowTail) => {
                        backend.counters.faults_slow.fetch_add(1, Ordering::Relaxed);
                        journal(EventKind::FaultInjected, b as u64);
                        hedge = Some((b, true));
                        break;
                    }
                    None => {
                        hedge = Some((b, false));
                        break;
                    }
                }
            }
            if let Some((h, hedge_slow)) = hedge {
                self.counters.hedges_fired.fetch_add(1, Ordering::Relaxed);
                self.backends[h]
                    .counters
                    .hedges_fired
                    .fetch_add(1, Ordering::Relaxed);
                journal(EventKind::HedgeFired, h as u64);
                if hedge_slow {
                    // The hedge landed in its own slow-tail: the primary
                    // finishes first and the hedge is cancelled.
                    loser = Some(h);
                    journal(EventKind::HedgeCancelled, h as u64);
                } else {
                    // The hedge wins; the slow primary is cancelled. The
                    // caller paid the deadline before the hedge fired.
                    loser = Some(winner);
                    winner = h;
                    extra_wait += self.hedge_deadline();
                    self.counters
                        .hedges_won_by_hedge
                        .fetch_add(1, Ordering::Relaxed);
                    self.backends[h]
                        .counters
                        .hedges_won
                        .fetch_add(1, Ordering::Relaxed);
                    journal(EventKind::HedgeWon, h as u64);
                }
            }
        }

        // Execute exactly one backend under its concurrency budget; the
        // permit releases on drop even if the call unwinds.
        let backend = &self.backends[winner];
        let value = {
            let _permit = backend.budget.acquire();
            call(backend.client)
        };
        // A forced winner's fault was already charged during the failover
        // walk — charging again here would halve the effective breaker
        // threshold. Only genuine (unforced) executions reset the breaker.
        if !forced {
            self.record_success(winner);
        }

        // Simulated waiting the caller observed beyond the winning call:
        // timeout deadlines paid during failover and the hedge-fire delay.
        if self.latency_scale > 0.0 && extra_wait > Duration::ZERO {
            std::thread::sleep(extra_wait.mul_f64(self.latency_scale));
        }

        // Exact accounting with the same arithmetic the backends charge:
        // winner tokens to the useful ledgers, the same cost to the loser's
        // hedge-waste line (the cancelled call had consumed equivalent work).
        let response = render(&value);
        let input = count_tokens(prompt) as u64;
        let output = count_tokens(&response) as u64;
        self.ledger.record_counts(input as usize, output as usize);
        backend.counters.requests.fetch_add(1, Ordering::Relaxed);
        backend
            .counters
            .input_tokens
            .fetch_add(input, Ordering::Relaxed);
        backend
            .counters
            .output_tokens
            .fetch_add(output, Ordering::Relaxed);
        if let Some(l) = loser {
            self.backends[l]
                .counters
                .hedge_waste_tokens
                .fetch_add(input + output, Ordering::Relaxed);
        }

        // Caller-observed wall latency: once router-wide (feeds the hedge
        // deadline and `latency_quantile`) and once against the winning
        // backend's own distribution.
        let observed = t_start.elapsed();
        self.samples.record(observed);
        backend.latency.record(observed);
        journal(EventKind::RouterDone, winner as u64);
        value
    }
}

impl LlmClient for RouterLlm<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    fn ledger(&self) -> &TokenLedger {
        &self.ledger
    }

    fn generate_criteria(&self, ctx: &AttributeContext<'_>) -> CriteriaSet {
        let prompt = prompts::criteria_prompt(ctx);
        self.route(
            RequestKind::Criteria,
            &prompt,
            |c| c.request_salt(ctx.table, Some(ctx.column), ctx.sample_rows),
            |c| c.generate_criteria(ctx),
            prompts::render_criteria_response,
        )
    }

    fn analyze_distribution(&self, ctx: &AttributeContext<'_>) -> DistributionAnalysis {
        let prompt = prompts::analysis_prompt(ctx);
        self.route(
            RequestKind::Analysis,
            &prompt,
            |c| c.request_salt(ctx.table, Some(ctx.column), ctx.sample_rows),
            |c| c.analyze_distribution(ctx),
            prompts::render_analysis,
        )
    }

    fn generate_guideline(
        &self,
        ctx: &AttributeContext<'_>,
        analysis: &DistributionAnalysis,
    ) -> Guideline {
        let prompt = prompts::guideline_prompt(ctx, analysis);
        self.route(
            RequestKind::Guideline,
            &prompt,
            |c| c.request_salt(ctx.table, Some(ctx.column), ctx.sample_rows),
            |c| c.generate_guideline(ctx, analysis),
            Guideline::render,
        )
    }

    fn label_batch(
        &self,
        ctx: &AttributeContext<'_>,
        guideline: Option<&Guideline>,
        rows: &[usize],
    ) -> Vec<bool> {
        let prompt = prompts::labeling_prompt(ctx, guideline, rows);
        self.route(
            RequestKind::LabelBatch,
            &prompt,
            |c| c.request_salt(ctx.table, Some(ctx.column), rows),
            |c| c.label_batch(ctx, guideline, rows),
            |flags| prompts::render_labels_response(flags),
        )
    }

    fn refine_criteria(
        &self,
        ctx: &AttributeContext<'_>,
        clean_examples: &[String],
        error_examples: &[String],
        existing: &CriteriaSet,
    ) -> CriteriaSet {
        let prompt = prompts::contrastive_prompt(ctx, clean_examples, error_examples);
        self.route(
            RequestKind::Refine,
            &prompt,
            |c| c.request_salt(ctx.table, Some(ctx.column), &[]),
            |c| c.refine_criteria(ctx, clean_examples, error_examples, existing),
            prompts::render_criteria_response,
        )
    }

    fn augment_errors(
        &self,
        ctx: &AttributeContext<'_>,
        clean_examples: &[String],
        count: usize,
    ) -> Vec<String> {
        let prompt = prompts::augmentation_prompt(ctx, clean_examples, count);
        self.route(
            RequestKind::Augment,
            &prompt,
            |c| c.request_salt(ctx.table, Some(ctx.column), &[]),
            |c| c.augment_errors(ctx, clean_examples, count),
            |values| prompts::render_augment_response(values),
        )
    }

    fn detect_tuple(&self, table: &Table, row: usize) -> Vec<bool> {
        let prompt = prompts::tuple_prompt(table, row);
        self.route(
            RequestKind::Tuple,
            &prompt,
            |c| c.request_salt(table, None, &[row]),
            |c| c.detect_tuple(table, row),
            |flags| prompts::render_tuple_response(flags),
        )
    }

    fn request_salt(&self, table: &Table, column: Option<usize>, rows: &[usize]) -> u64 {
        // Response-equivalent backends share hidden state; backend 0's salt
        // stands for the ensemble (used by CachedLlm stacking on top).
        self.backends[0].client.request_salt(table, column, rows)
    }

    fn note_reask(&self, salt: u64, attempt: u32) {
        // A re-asked request may be routed (or hedged) to *any* backend, so
        // the attempt mark must be visible on all of them — response
        // equivalence requires every backend to redraw the same corruption.
        for backend in &self.backends {
            backend.client.note_reask(salt, attempt);
        }
    }

    fn cache_identity(&self) -> &str {
        // The router's *responses* are its backends' responses (the
        // response-equivalence contract), so cache keys — and persisted store
        // entries — carry the backend identity, not the `router[...]` display
        // name. A routed warm start can then replay entries a single-backend
        // run persisted, and vice versa.
        self.backends[0].client.cache_identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_llm::{FaultSchedule, SimLlm};

    fn fixture() -> Table {
        let rows: Vec<Vec<String>> = (0..60)
            .map(|i| {
                vec![
                    ["Boston", "Denver", "Phoenix"][i % 3].to_string(),
                    ["MA", "CO", "AZ"][i % 3].to_string(),
                ]
            })
            .collect();
        Table::new("cities", vec!["city".into(), "state".into()], rows).unwrap()
    }

    fn replicas(n: usize, schedules: &[FaultSchedule]) -> Vec<SimLlm> {
        (0..n)
            .map(|i| {
                let sim = SimLlm::default_model(3);
                match schedules.get(i) {
                    Some(&s) => sim.with_faults(s),
                    None => sim,
                }
            })
            .collect()
    }

    fn label_sweep(llm: &dyn LlmClient, table: &Table, n: usize) -> Vec<Vec<bool>> {
        let corr = vec![0usize];
        (0..n)
            .map(|i| {
                let rows = [i % table.n_rows(), (i * 7 + 1) % table.n_rows()];
                let ctx = AttributeContext {
                    table,
                    column: 1,
                    correlated: &corr,
                    sample_rows: &rows,
                };
                llm.label_batch(&ctx, None, &rows)
            })
            .collect()
    }

    #[test]
    fn healthy_router_is_response_transparent_and_spreads_load() {
        let table = fixture();
        let reference = SimLlm::default_model(3);
        let expected = label_sweep(&reference, &table, 40);

        let sims = replicas(3, &[]);
        let clients: Vec<&dyn LlmClient> = sims.iter().map(|s| s as &dyn LlmClient).collect();
        let router = RouterLlm::new(clients, &RouterConfig::for_backends(3));
        let got = label_sweep(&router, &table, 40);
        assert_eq!(expected, got, "routing must not change responses");

        let stats = router.stats();
        assert_eq!(stats.requests, 40);
        assert_eq!(stats.failovers, 0);
        assert_eq!(stats.hedges_fired, 0);
        // Every request executed exactly once, spread over the backends.
        assert_eq!(stats.backends.iter().map(|b| b.requests).sum::<u64>(), 40);
        assert!(
            stats.backends.iter().filter(|b| b.requests > 0).count() >= 2,
            "fingerprint spreading should reach several backends: {stats:?}"
        );
        // Router ledger equals the sum of backend ledgers.
        let sum: usize = sims.iter().map(|s| s.ledger().usage().total()).sum();
        assert_eq!(router.ledger().usage().total(), sum);
    }

    #[test]
    fn erroring_backend_fails_over_and_trips_its_breaker() {
        let table = fixture();
        let reference = SimLlm::default_model(3);
        let expected = label_sweep(&reference, &table, 60);

        let always_fail = FaultSchedule {
            seed: 1,
            error_rate: 1.0,
            ..FaultSchedule::healthy(1)
        };
        let sims = replicas(2, &[always_fail]);
        let clients: Vec<&dyn LlmClient> = sims.iter().map(|s| s as &dyn LlmClient).collect();
        let router = RouterLlm::new(clients, &RouterConfig::for_backends(2));
        let got = label_sweep(&router, &table, 60);
        assert_eq!(expected, got);

        let stats = router.stats();
        // Backend 0 never executes a request; backend 1 serves everything.
        assert_eq!(stats.backends[0].requests, 0);
        assert_eq!(stats.backends[1].requests, 60);
        assert!(stats.failovers > 0);
        assert!(
            stats.breaker_trips >= 1,
            "persistent errors must trip the breaker: {stats:?}"
        );
        // While the breaker is open, backend 0 is not even probed; failovers
        // are therefore fewer than total requests.
        assert!(stats.failovers < 60, "breaker must suppress probing: {stats:?}");
        assert_eq!(stats.forced_executions, 0);
        assert_eq!(sims[0].ledger().usage().requests, 0);
        assert_eq!(sims[1].ledger().usage().requests, 60);
    }

    #[test]
    fn hedging_cancels_the_slow_loser_and_charges_waste() {
        let table = fixture();
        let reference = SimLlm::default_model(3);
        let expected = label_sweep(&reference, &table, 80);

        let slow = FaultSchedule::slow_tail(9, 0.5, 40.0);
        let sims = replicas(2, &[slow]);
        let clients: Vec<&dyn LlmClient> = sims.iter().map(|s| s as &dyn LlmClient).collect();
        let router = RouterLlm::new(clients, &RouterConfig::for_backends(2));
        let got = label_sweep(&router, &table, 80);
        assert_eq!(expected, got);

        let stats = router.stats();
        assert!(stats.hedges_fired > 0, "slow tail must fire hedges: {stats:?}");
        assert_eq!(stats.hedges_won_by_hedge, stats.backends[1].hedges_won);
        assert!(stats.hedge_waste_tokens > 0);
        // Cancelled losers never execute: every request cost exactly one
        // backend call, and the ledgers reconcile.
        let executed: usize = sims.iter().map(|s| s.ledger().usage().requests).sum();
        assert_eq!(executed, 80);
        let useful: usize = sims.iter().map(|s| s.ledger().usage().total()).sum();
        assert_eq!(stats.tokens() as usize, useful);
        // Each cancelled loser is charged its request's cost, never more:
        // waste is bounded by one duplicate per hedged request.
        assert!(
            stats.hedge_waste_tokens <= stats.hedges_fired * (useful as u64),
            "waste exceeds any possible per-hedge cost: {stats:?}"
        );
    }

    #[test]
    fn hedge_waste_equals_the_cancelled_calls_exact_cost() {
        // Both backends slow on every request: every routed request fires a
        // hedge, the hedge is slow too, so the primary wins and the hedge is
        // cancelled. Each request therefore wastes exactly one duplicate of
        // itself — total waste must equal total useful cost, measured
        // independently through the backends' own ledgers.
        let table = fixture();
        let slow0 = FaultSchedule::slow_tail(1, 1.0, 1.0);
        let slow1 = FaultSchedule::slow_tail(2, 1.0, 1.0);
        let sims = replicas(2, &[slow0, slow1]);
        let clients: Vec<&dyn LlmClient> = sims.iter().map(|s| s as &dyn LlmClient).collect();
        let router = RouterLlm::new(clients, &RouterConfig::for_backends(2));
        let _ = label_sweep(&router, &table, 50);
        let stats = router.stats();
        assert_eq!(stats.hedges_fired, 50, "every request must hedge");
        assert_eq!(stats.hedges_won_by_hedge, 0, "a slow hedge never wins");
        let useful: u64 = sims
            .iter()
            .map(|s| s.ledger().usage().total() as u64)
            .sum();
        assert_eq!(
            stats.hedge_waste_tokens, useful,
            "waste must equal the executed calls' exact cost"
        );
        assert_eq!(stats.total_spend_tokens(), 2 * useful);
    }

    #[test]
    fn fail_open_when_every_backend_faults() {
        let table = fixture();
        let reference = SimLlm::default_model(3);
        let expected = label_sweep(&reference, &table, 30);

        let fail0 = FaultSchedule {
            seed: 1,
            error_rate: 1.0,
            ..FaultSchedule::healthy(1)
        };
        let fail1 = FaultSchedule {
            seed: 2,
            timeout_rate: 1.0,
            ..FaultSchedule::healthy(2)
        };
        let sims = replicas(2, &[fail0, fail1]);
        let clients: Vec<&dyn LlmClient> = sims.iter().map(|s| s as &dyn LlmClient).collect();
        let router = RouterLlm::new(clients, &RouterConfig::for_backends(2));
        let got = label_sweep(&router, &table, 30);
        assert_eq!(expected, got, "fail-open must still answer every request");

        let stats = router.stats();
        assert_eq!(stats.forced_executions, 30);
        assert_eq!(stats.backends.iter().map(|b| b.requests).sum::<u64>(), 30);
    }

    #[test]
    fn breaker_reprobes_after_cooldown() {
        let table = fixture();
        let always_fail = FaultSchedule {
            seed: 5,
            error_rate: 1.0,
            ..FaultSchedule::healthy(5)
        };
        let sims = replicas(2, &[always_fail]);
        let clients: Vec<&dyn LlmClient> = sims.iter().map(|s| s as &dyn LlmClient).collect();
        let mut config = RouterConfig::for_backends(2);
        config.breaker = BreakerPolicy {
            failure_threshold: 2,
            cooldown_requests: 8,
        };
        let router = RouterLlm::new(clients, &config);
        let _ = label_sweep(&router, &table, 120);
        let stats = router.stats();
        // Enough requests passed for several probe → re-trip cycles.
        assert!(
            stats.breaker_trips >= 2,
            "cooldown probes must re-trip a still-broken backend: {stats:?}"
        );
        assert_eq!(stats.backends[0].requests, 0);
    }

    #[test]
    fn budget_bounds_inflight_requests() {
        let budget = Budget::new(2);
        let active = std::sync::atomic::AtomicU64::new(0);
        let peak = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let _permit = budget.acquire();
                    let n = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(n, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(5));
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "budget must cap concurrency");
    }

    #[test]
    fn budget_permit_survives_a_panicking_call() {
        // A panic while holding the only permit must release it on unwind,
        // otherwise the next request on this backend deadlocks forever.
        let budget = Budget::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _permit = budget.acquire();
            panic!("backend call died");
        }));
        assert!(result.is_err());
        // Still acquirable — a leak would hang here (test would time out).
        let _permit = budget.acquire();
    }

    #[test]
    fn latency_quantile_orders_samples() {
        let sims = replicas(1, &[]);
        let clients: Vec<&dyn LlmClient> = sims.iter().map(|s| s as &dyn LlmClient).collect();
        let router = RouterLlm::new(clients, &RouterConfig::for_backends(1));
        assert_eq!(router.latency_quantile(0.99), Duration::ZERO);
        for ms in 1..=100 {
            router.samples.record(Duration::from_millis(ms));
        }
        assert_eq!(router.latency_quantile(0.5), Duration::from_millis(50));
        assert_eq!(router.latency_quantile(0.99), Duration::from_millis(99));
        assert_eq!(router.latency_quantile(1.0), Duration::from_millis(100));
    }

    #[test]
    fn latency_window_is_bounded_and_keeps_recent_samples() {
        let sims = replicas(1, &[]);
        let clients: Vec<&dyn LlmClient> = sims.iter().map(|s| s as &dyn LlmClient).collect();
        let router = RouterLlm::new(clients, &RouterConfig::for_backends(1));
        for i in 0..(LATENCY_WINDOW + 500) {
            router.samples.record(Duration::from_micros(i as u64));
        }
        let window = router.latency_samples();
        assert_eq!(window.len(), LATENCY_WINDOW, "retention must be bounded");
        // The overwritten slots hold the newest samples; lifetime counting
        // still sees everything.
        assert!(window
            .iter()
            .any(|d| *d == Duration::from_micros((LATENCY_WINDOW + 499) as u64)));
        assert!(window.iter().all(|d| *d >= Duration::from_micros(500)));
        assert_eq!(router.samples.count() as usize, LATENCY_WINDOW + 500);
    }
}
