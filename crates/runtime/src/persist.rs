//! The write-through persistence layer under the response cache.
//!
//! [`StoreLayer`] owns a [`zeroed_store::ResponseStore`] plus one background
//! writer thread. Publishing a response must never block the worker pool on
//! disk I/O, so the hot path only enqueues: [`StoreSink::offer`] pushes the
//! `(key, response)` pair onto an unbounded in-memory queue and returns; the
//! writer thread drains the queue, encodes records and appends them (fsyncing
//! per the store's [`zeroed_store::FsyncPolicy`]).
//!
//! On the way *in*, [`StoreLayer::preload_into`] replays every live persisted
//! record into a [`ResponseCache`] as `ResponseOrigin::Persisted` entries —
//! the cross-process warm start. Hits on those entries never reach the model
//! and replay the exact token cost the original call charged, so a warm run's
//! ledger reconciles to the cold run's bill as savings.
//!
//! Shutdown is drop-driven: when the last handle to the layer drops, the
//! queue is closed, the writer drains every remaining job, appends them, and
//! the store is synced — so a detector that goes out of scope leaves a
//! complete store behind for the next process.

use crate::cache::{ResponseCache, ResponseOrigin, StoredResponse};
use crate::key::RequestKey;
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use zeroed_obs::{EventKind, TraceId, TraceRecorder};
use zeroed_store::{now_epoch, RecoveryReport, ShardedStore, StoreConfig, StoreRecord, StoreStats};

enum Job {
    /// Append one published response, attributing the outcome to the
    /// offering sink's counters (as well as the layer-wide ones). Carries the
    /// offering sink's flight recorder (if any) so the writer thread can
    /// journal the append under the request's own trace id, re-derived from
    /// the key — the persist happens off the request thread, where no trace
    /// scope is installed.
    Write(
        RequestKey,
        Arc<StoredResponse>,
        Arc<Counters>,
        Option<Arc<TraceRecorder>>,
    ),
    /// Wake the barrier's waiter once every job queued before it has been
    /// written (the queue is FIFO, so reaching the barrier implies that).
    Barrier(Arc<Barrier>),
}

#[derive(Default)]
struct Barrier {
    done: Mutex<bool>,
    signal: Condvar,
}

impl Barrier {
    fn release(&self) {
        *self.done.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.signal.notify_all();
    }

    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self.signal.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Unbounded MPSC queue feeding the writer thread. Closing lets the writer
/// drain what is already queued, then stop.
struct PersistQueue {
    inner: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl PersistQueue {
    fn new() -> Self {
        Self {
            inner: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues a job; `false` once the queue is closed (layer shutting down).
    fn push(&self, job: Job) -> bool {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            // Release a barrier immediately rather than stranding its waiter.
            if let Job::Barrier(barrier) = &job {
                barrier.release();
            }
            return false;
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Blocks for the next job; `None` once closed *and* drained.
    fn pop(&self) -> Option<Job> {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }
}

/// Counters describing write-through activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Responses offered to the persistence queue.
    pub offered: u64,
    /// Records successfully appended to the store.
    pub persisted_records: u64,
    /// Frame bytes appended.
    pub persisted_bytes: u64,
    /// Appends that failed with an I/O error (the response stays served from
    /// memory; it is simply not durable).
    pub append_errors: u64,
    /// Offers rejected because the layer was already shutting down.
    pub dropped: u64,
}

#[derive(Default)]
struct Counters {
    offered: AtomicU64,
    persisted_records: AtomicU64,
    persisted_bytes: AtomicU64,
    append_errors: AtomicU64,
    dropped: AtomicU64,
}

/// A cheap cloneable handle pipelines hand to [`crate::CachedLlm`] so misses
/// are enqueued for persistence off the hot path.
///
/// Each sink carries its own counters besides the layer-wide ones (clones
/// share them), so one detection run's `PipelineStats` reflect exactly its
/// own write-through activity even when cloned detectors sharing the layer
/// persist concurrently — the same per-consumer discipline `CachedLlm`
/// applies to cache counters.
#[derive(Clone)]
pub struct StoreSink {
    queue: Arc<PersistQueue>,
    /// Layer-wide counters (all sinks).
    shared: Arc<Counters>,
    /// This sink's counters (shared only with its clones).
    local: Arc<Counters>,
    /// Flight recorder for journaling successful appends
    /// ([`zeroed_obs::EventKind::StorePersist`]).
    recorder: Option<Arc<TraceRecorder>>,
}

impl std::fmt::Debug for StoreSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreSink")
            .field("stats", &self.stats())
            .finish()
    }
}

impl StoreSink {
    /// Attaches a flight recorder: every response this sink successfully
    /// persists is journaled as a [`zeroed_obs::EventKind::StorePersist`]
    /// event on the originating request's trace (id re-derived from the
    /// request key on the writer thread).
    pub fn with_recorder(mut self, recorder: Arc<TraceRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Offers one published response for persistence. Never blocks on disk;
    /// returns immediately after enqueueing.
    pub fn offer(&self, key: RequestKey, response: &Arc<StoredResponse>) {
        self.shared.offered.fetch_add(1, Ordering::Relaxed);
        self.local.offered.fetch_add(1, Ordering::Relaxed);
        if !self.queue.push(Job::Write(
            key,
            Arc::clone(response),
            Arc::clone(&self.local),
            self.recorder.clone(),
        )) {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            self.local.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Write-through counters attributable to this sink (and its clones)
    /// alone. Exact once the layer has been drained past this sink's offers.
    pub fn stats(&self) -> PersistStats {
        stats_of(&self.local)
    }
}

fn stats_of(counters: &Counters) -> PersistStats {
    PersistStats {
        offered: counters.offered.load(Ordering::Relaxed),
        persisted_records: counters.persisted_records.load(Ordering::Relaxed),
        persisted_bytes: counters.persisted_bytes.load(Ordering::Relaxed),
        append_errors: counters.append_errors.load(Ordering::Relaxed),
        dropped: counters.dropped.load(Ordering::Relaxed),
    }
}

/// The owning handle: store + writer thread (see module docs).
///
/// The store underneath is a [`ShardedStore`], so one layer transparently
/// covers both layouts: a flat single-writer directory (the default) and the
/// `shard-KK/writer-WWW/` layout that lets many detector *processes* write
/// one store root concurrently ([`zeroed_store::StoreConfig::shards`] > 1 at
/// creation). Persist and preload route through the shards; `stats`,
/// `store_stats` and `recovery` aggregate across them.
pub struct StoreLayer {
    store: Arc<ShardedStore>,
    queue: Arc<PersistQueue>,
    counters: Arc<Counters>,
    writer: Option<JoinHandle<()>>,
    /// Wall time [`StoreLayer::open`] took (shard recovery + writer spawn).
    open_nanos: u64,
    /// Cumulative wall time of [`StoreLayer::preload_into`] calls.
    preload_nanos: AtomicU64,
}

/// Wall-clock timings of a [`StoreLayer`]'s warm-start path, from
/// [`StoreLayer::timings`]. Per-shard open/recovery breakdowns live in
/// [`StoreStats`] (`open_nanos` there aggregates across shards); these cover
/// the layer-level operations the pipeline observes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreLayerTimings {
    /// [`StoreLayer::open`] wall time, nanoseconds (includes every shard's
    /// crash recovery and the writer-thread spawn).
    pub open_nanos: u64,
    /// Cumulative [`StoreLayer::preload_into`] wall time, nanoseconds
    /// (reading live records off disk and inserting them into the cache).
    pub preload_nanos: u64,
}

impl std::fmt::Debug for StoreLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreLayer")
            .field("store", &self.store)
            .field("stats", &self.stats())
            .finish()
    }
}

impl StoreLayer {
    /// Opens the store at `config.dir` (running crash recovery) and starts
    /// the background writer.
    pub fn open(config: StoreConfig) -> io::Result<Self> {
        let t_open = Instant::now();
        let store = Arc::new(ShardedStore::open(config)?);
        let queue = Arc::new(PersistQueue::new());
        let counters = Arc::new(Counters::default());
        let writer = {
            let store = Arc::clone(&store);
            let queue = Arc::clone(&queue);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("zeroed-store-writer".into())
                .spawn(move || {
                    while let Some(job) = queue.pop() {
                        match job {
                            Job::Write(key, response, sink_counters, recorder) => {
                                let record = StoreRecord {
                                    key: key.to_u128(),
                                    input_tokens: response.input_tokens as u64,
                                    output_tokens: response.output_tokens as u64,
                                    // Stamped at write time: the TTL clock
                                    // starts when the response lands on disk.
                                    epoch: now_epoch(),
                                    value: response.value.clone(),
                                };
                                match store.append(&record) {
                                    Ok(bytes) => {
                                        for c in [&counters, &sink_counters] {
                                            c.persisted_records.fetch_add(1, Ordering::Relaxed);
                                            c.persisted_bytes.fetch_add(bytes, Ordering::Relaxed);
                                        }
                                        if let Some(rec) = &recorder {
                                            rec.emit(
                                                TraceId::from_key(key.to_u128(), rec.nonce()),
                                                EventKind::StorePersist,
                                                bytes,
                                            );
                                        }
                                    }
                                    Err(_) => {
                                        counters.append_errors.fetch_add(1, Ordering::Relaxed);
                                        sink_counters
                                            .append_errors
                                            .fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Job::Barrier(barrier) => barrier.release(),
                        }
                    }
                    let _ = store.sync();
                })
                .map_err(|e| io::Error::new(io::ErrorKind::Other, e))?
        };
        Ok(Self {
            store,
            queue,
            counters,
            writer: Some(writer),
            open_nanos: t_open.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            preload_nanos: AtomicU64::new(0),
        })
    }

    /// Layer-level open/preload wall timings (see [`StoreLayerTimings`]).
    pub fn timings(&self) -> StoreLayerTimings {
        StoreLayerTimings {
            open_nanos: self.open_nanos,
            preload_nanos: self.preload_nanos.load(Ordering::Relaxed),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }

    /// The recovery report from open (aggregated across owned shards).
    pub fn recovery(&self) -> RecoveryReport {
        self.store.recovery()
    }

    /// Store-level counters (live/dead records, appends, compactions,
    /// TTL expiries), aggregated across owned shards.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Layer-wide write-through counters (every sink's activity).
    pub fn stats(&self) -> PersistStats {
        stats_of(&self.counters)
    }

    /// A fresh sink handle for [`crate::CachedLlm::with_persistence`]. Each
    /// call returns a sink with its own counters ([`StoreSink::stats`]);
    /// clones of one sink share them.
    pub fn sink(&self) -> StoreSink {
        StoreSink {
            queue: Arc::clone(&self.queue),
            shared: Arc::clone(&self.counters),
            local: Arc::new(Counters::default()),
            recorder: None,
        }
    }

    /// Blocks until every response offered before this call has been written
    /// to the store (a queue barrier, not an fsync — pair with
    /// [`ShardedStore::sync`] for a durability barrier).
    pub fn drain(&self) {
        let barrier = Arc::new(Barrier::default());
        if self.queue.push(Job::Barrier(Arc::clone(&barrier))) {
            barrier.wait();
        }
    }

    /// Replays every live persisted record into `cache` as
    /// `ResponseOrigin::Persisted` entries. Returns how many were inserted
    /// (entries already present, or beyond the cache capacity, are skipped).
    pub fn preload_into(&self, cache: &ResponseCache) -> io::Result<usize> {
        let t = Instant::now();
        let mut inserted = 0usize;
        for record in self.store.load_live()? {
            let response = StoredResponse {
                value: record.value,
                input_tokens: record.input_tokens as usize,
                output_tokens: record.output_tokens as usize,
                origin: ResponseOrigin::Persisted,
            };
            if cache.preload(RequestKey::from_u128(record.key), response) {
                inserted += 1;
            }
        }
        self.preload_nanos.fetch_add(
            t.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        Ok(inserted)
    }
}

impl Drop for StoreLayer {
    fn drop(&mut self) {
        self.queue.close();
        if let Some(writer) = self.writer.take() {
            // The writer drains every queued job before exiting, then syncs.
            let _ = writer.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedResponse;
    use crate::key::RequestKind;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU32;

    static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

    fn temp_dir() -> PathBuf {
        let n = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!(
            "zeroed-persist-unit-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_key(n: u64) -> RequestKey {
        let mut b = RequestKey::builder(RequestKind::LabelBatch, "m");
        b.word(n);
        b.finish()
    }

    fn response(tokens: usize, flags: &[bool]) -> Arc<StoredResponse> {
        Arc::new(StoredResponse {
            value: CachedResponse::Flags(flags.to_vec()),
            input_tokens: tokens,
            output_tokens: flags.len(),
            origin: ResponseOrigin::Computed,
        })
    }

    #[test]
    fn offered_responses_survive_into_a_reopened_layer() {
        let dir = temp_dir();
        let config = StoreConfig::new(dir.to_str().unwrap());
        {
            let layer = StoreLayer::open(config.clone()).unwrap();
            let sink = layer.sink();
            sink.offer(test_key(1), &response(11, &[true]));
            sink.offer(test_key(2), &response(22, &[false, true]));
            layer.drain();
            assert_eq!(layer.stats().persisted_records, 2);
            assert!(layer.stats().persisted_bytes > 0);
            assert_eq!(layer.stats().append_errors, 0);
        } // drop closes the queue, joins the writer, syncs the store

        let layer = StoreLayer::open(config).unwrap();
        assert_eq!(layer.recovery().records_recovered, 2);
        let cache = ResponseCache::new(64);
        assert_eq!(layer.preload_into(&cache).unwrap(), 2);

        // The preloaded entry answers without computing and replays the
        // persisted token cost as savings.
        let (stored, lookup) = cache.get_or_compute(test_key(2), || {
            panic!("preloaded entry must satisfy the request")
        });
        assert_eq!(lookup, crate::cache::Lookup::Hit { coalesced: false });
        assert_eq!(stored.origin, ResponseOrigin::Persisted);
        assert_eq!(stored.input_tokens, 22);
        match &stored.value {
            CachedResponse::Flags(f) => assert_eq!(f, &vec![false, true]),
            other => panic!("wrong variant: {other:?}"),
        }
        assert_eq!(cache.stats().store_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_flushes_pending_writes_without_an_explicit_drain() {
        let dir = temp_dir();
        let config = StoreConfig::new(dir.to_str().unwrap());
        {
            let layer = StoreLayer::open(config.clone()).unwrap();
            let sink = layer.sink();
            for i in 0..50 {
                sink.offer(test_key(i), &response(i as usize, &[true]));
            }
        }
        let layer = StoreLayer::open(config).unwrap();
        assert_eq!(layer.recovery().records_recovered, 50);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn offers_after_shutdown_are_counted_as_dropped() {
        let dir = temp_dir();
        let layer = StoreLayer::open(StoreConfig::new(dir.to_str().unwrap())).unwrap();
        let sink = layer.sink();
        drop(layer);
        sink.offer(test_key(1), &response(1, &[true]));
        // The layer is gone; the counters live on through the sink's Arcs.
        assert_eq!(sink.stats().dropped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sink_counters_attribute_writes_per_sink_not_per_layer() {
        // Two sinks on one layer (two concurrent detection runs): each must
        // see exactly its own persisted records, while the layer aggregates.
        let dir = temp_dir();
        let layer = StoreLayer::open(StoreConfig::new(dir.to_str().unwrap())).unwrap();
        let sink_a = layer.sink();
        let sink_b = layer.sink();
        for i in 0..3 {
            sink_a.offer(test_key(i), &response(1, &[true]));
        }
        for i in 10..15 {
            sink_b.offer(test_key(i), &response(1, &[false]));
        }
        layer.drain();
        assert_eq!(sink_a.stats().persisted_records, 3);
        assert_eq!(sink_b.stats().persisted_records, 5);
        assert_eq!(layer.stats().persisted_records, 8);
        assert!(sink_a.stats().persisted_bytes > 0);
        assert_eq!(
            sink_a.stats().persisted_bytes + sink_b.stats().persisted_bytes,
            layer.stats().persisted_bytes
        );
        // A clone shares its parent's counters (same run).
        let clone_a = sink_a.clone();
        clone_a.offer(test_key(99), &response(1, &[true]));
        layer.drain();
        assert_eq!(sink_a.stats().persisted_records, 4);
        assert_eq!(sink_b.stats().persisted_records, 5);
        drop(layer);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_layers_share_a_sharded_root() {
        // Two StoreLayers (two detector processes, as far as the store is
        // concerned) open one sharded root simultaneously, persist disjoint
        // key sets, and a third layer preloads the union.
        let dir = temp_dir();
        let config = StoreConfig::new(dir.to_str().unwrap()).with_shards(4);
        {
            let layer_a = StoreLayer::open(config.clone()).unwrap();
            let layer_b = StoreLayer::open(config.clone()).unwrap();
            let sink_a = layer_a.sink();
            let sink_b = layer_b.sink();
            for i in 0..8 {
                sink_a.offer(test_key(i), &response(1, &[true]));
            }
            for i in 8..20 {
                sink_b.offer(test_key(i), &response(2, &[false]));
            }
            layer_a.drain();
            layer_b.drain();
            assert_eq!(layer_a.stats().persisted_records, 8);
            assert_eq!(layer_b.stats().persisted_records, 12);
            assert_eq!(layer_a.stats().append_errors, 0);
            assert_eq!(layer_b.stats().append_errors, 0);
        }
        let layer = StoreLayer::open(config).unwrap();
        let cache = ResponseCache::new(64);
        assert_eq!(
            layer.preload_into(&cache).unwrap(),
            20,
            "the union of both writers' records preloads"
        );
        for i in 0..20 {
            let (_, lookup) = cache.get_or_compute(test_key(i), || {
                panic!("preloaded entry must satisfy request {i}")
            });
            assert_eq!(lookup, crate::cache::Lookup::Hit { coalesced: false });
        }
        drop(layer);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn layer_timings_cover_open_and_preload() {
        let dir = temp_dir();
        let config = StoreConfig::new(dir.to_str().unwrap());
        {
            let layer = StoreLayer::open(config.clone()).unwrap();
            let sink = layer.sink();
            sink.offer(test_key(1), &response(5, &[true]));
            layer.drain();
            assert!(layer.timings().open_nanos > 0);
            assert_eq!(layer.timings().preload_nanos, 0, "nothing preloaded yet");
        }
        let layer = StoreLayer::open(config).unwrap();
        let cache = ResponseCache::new(16);
        assert_eq!(layer.preload_into(&cache).unwrap(), 1);
        let t = layer.timings();
        assert!(t.open_nanos > 0);
        assert!(t.preload_nanos > 0, "preload wall time recorded");
        // The per-shard store aggregation carries its own open timing too.
        assert!(layer.store_stats().open_nanos > 0);
        drop(layer);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn superseding_offers_keep_the_latest_value() {
        let dir = temp_dir();
        let config = StoreConfig::new(dir.to_str().unwrap());
        {
            let layer = StoreLayer::open(config.clone()).unwrap();
            let sink = layer.sink();
            sink.offer(test_key(9), &response(1, &[false]));
            sink.offer(test_key(9), &response(2, &[true]));
            layer.drain();
            assert_eq!(layer.store_stats().live_records, 1);
        }
        let layer = StoreLayer::open(config).unwrap();
        let record = layer.store().get(test_key(9).to_u128()).unwrap().unwrap();
        match record.value {
            CachedResponse::Flags(f) => assert_eq!(f, vec![true]),
            other => panic!("wrong variant: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
