//! Content-addressed request identity.
//!
//! A [`RequestKey`] is a 128-bit hash over everything a deterministic model's
//! response depends on: the request kind, the model name, the rendered prompt,
//! the request's structural coordinates (table fingerprint, column, row
//! indices) and the client's hidden-state salt. 128 bits come from running the
//! same rotate-xor-multiply scheme (the FxHash multiplier) twice with
//! different seeds, which makes accidental collisions negligible for any
//! realistic number of requests while keeping hashing allocation-free and
//! fast enough to run on every call.

use std::hash::{Hash, Hasher};

const SEED_A: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const SEED_B: u64 = 0x9e_37_79_b9_7f_4a_7c_15;

/// The prompt family a request belongs to (one per [`zeroed_llm::LlmClient`]
/// method). Folding the kind into the key keeps prompt families separate even
/// if two families ever rendered identical text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RequestKind {
    /// `generate_criteria` (paper §III-B).
    Criteria = 1,
    /// `analyze_distribution` (paper Fig. 5, step 1).
    Analysis = 2,
    /// `generate_guideline` (paper Fig. 5, step 2).
    Guideline = 3,
    /// `label_batch` (paper §III-C).
    LabelBatch = 4,
    /// `refine_criteria` (Algorithm 1 lines 4–7).
    Refine = 5,
    /// `augment_errors` (Algorithm 1 line 25).
    Augment = 6,
    /// `detect_tuple` (FM_ED baseline).
    Tuple = 7,
}

/// A 128-bit content-addressed request identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestKey {
    hi: u64,
    lo: u64,
}

impl Hash for RequestKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The key is already a high-quality hash; feed one word through.
        state.write_u64(self.hi ^ self.lo.rotate_left(32));
    }
}

impl RequestKey {
    /// Starts building a key for one request of `kind` against `model`.
    pub fn builder(kind: RequestKind, model: &str) -> RequestKeyBuilder {
        let mut b = RequestKeyBuilder {
            a: SEED_A,
            b: SEED_B,
        };
        b.word(kind as u64);
        b.text(model);
        b
    }

    /// The raw 128 bits (for diagnostics/logging and the persisted-store
    /// index, which keys records by this value).
    pub fn to_u128(self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }

    /// Rebuilds a key from its raw 128 bits (the persisted-store preload
    /// path). Inverse of [`RequestKey::to_u128`].
    pub fn from_u128(raw: u128) -> Self {
        Self {
            hi: (raw >> 64) as u64,
            lo: raw as u64,
        }
    }
}

/// Incremental [`RequestKey`] construction.
#[derive(Debug, Clone)]
pub struct RequestKeyBuilder {
    a: u64,
    b: u64,
}

impl RequestKeyBuilder {
    #[inline]
    fn mix(state: u64, word: u64, seed: u64) -> u64 {
        (state.rotate_left(5) ^ word).wrapping_mul(seed)
    }

    /// Folds one 64-bit word into both lanes.
    #[inline]
    pub fn word(&mut self, word: u64) -> &mut Self {
        self.a = Self::mix(self.a, word, SEED_A);
        self.b = Self::mix(self.b, word ^ SEED_B, SEED_B | 1);
        self
    }

    /// Folds a string (length-prefixed so concatenations cannot collide).
    pub fn text(&mut self, text: &str) -> &mut Self {
        self.bytes(text.as_bytes())
    }

    /// Folds a raw byte string (length-prefixed, chunked into words exactly
    /// like [`RequestKeyBuilder::text`]) — for canonical binary encodings
    /// whose full content must participate in the 128-bit mix rather than
    /// being bottlenecked through a narrower digest.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.word(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.word(u64::from_le_bytes(buf));
        }
        self
    }

    /// Folds a row-index list (length-prefixed).
    pub fn rows(&mut self, rows: &[usize]) -> &mut Self {
        self.word(rows.len() as u64);
        for &r in rows {
            self.word(r as u64);
        }
        self
    }

    /// Folds an optional column index.
    pub fn column(&mut self, column: Option<usize>) -> &mut Self {
        match column {
            Some(c) => self.word(1).word(c as u64),
            None => self.word(0),
        }
    }

    /// Finishes the key.
    pub fn finish(&self) -> RequestKey {
        // One final avalanche per lane (splitmix64 finaliser).
        fn fin(mut x: u64) -> u64 {
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d049bb133111eb);
            x ^ (x >> 31)
        }
        RequestKey {
            hi: fin(self.a),
            lo: fin(self.b),
        }
    }
}

/// Fingerprint of a whole table's contents (name, shape and every cell).
///
/// Mixed into every request key by [`crate::CachedLlm`] so that two tables
/// that happen to share a name, shape and the handful of sampled rows a
/// prompt serialises can never share cache entries: responses like the
/// distribution analysis depend on *all* cells, not only the prompted ones.
pub fn table_fingerprint(table: &zeroed_table::Table) -> u64 {
    let mut b = RequestKeyBuilder {
        a: SEED_A ^ t_marker(),
        b: SEED_B,
    };
    b.text(table.name());
    b.word(table.n_rows() as u64);
    b.word(table.n_cols() as u64);
    for row in table.rows() {
        for cell in row {
            b.text(cell);
        }
    }
    b.finish().hi
}

// Small helper so the fingerprint lane seed differs from request keys.
#[inline]
const fn t_marker() -> u64 {
    0x7461_626c_6566_7024 // "tablefp$"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(kind: RequestKind, model: &str, prompt: &str, rows: &[usize], salt: u64) -> RequestKey {
        let mut b = RequestKey::builder(kind, model);
        b.text(prompt).rows(rows).word(salt);
        b.finish()
    }

    #[test]
    fn identical_inputs_produce_identical_keys() {
        let a = key(RequestKind::LabelBatch, "m", "prompt text", &[1, 2, 3], 7);
        let b = key(RequestKind::LabelBatch, "m", "prompt text", &[1, 2, 3], 7);
        assert_eq!(a, b);
        assert_eq!(a.to_u128(), b.to_u128());
    }

    #[test]
    fn any_component_changes_the_key() {
        let base = key(RequestKind::LabelBatch, "m", "prompt", &[1, 2], 7);
        assert_ne!(base, key(RequestKind::Analysis, "m", "prompt", &[1, 2], 7));
        assert_ne!(base, key(RequestKind::LabelBatch, "m2", "prompt", &[1, 2], 7));
        assert_ne!(base, key(RequestKind::LabelBatch, "m", "prompt!", &[1, 2], 7));
        assert_ne!(base, key(RequestKind::LabelBatch, "m", "prompt", &[2, 1], 7));
        assert_ne!(base, key(RequestKind::LabelBatch, "m", "prompt", &[1, 2], 8));
    }

    #[test]
    fn length_prefixing_separates_concatenations() {
        let mut a = RequestKey::builder(RequestKind::Refine, "m");
        a.text("ab").text("c");
        let mut b = RequestKey::builder(RequestKind::Refine, "m");
        b.text("a").text("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn table_fingerprint_reflects_contents() {
        let t1 = zeroed_table::Table::new(
            "t",
            vec!["a".into()],
            vec![vec!["x".into()], vec!["y".into()]],
        )
        .unwrap();
        let t2 = zeroed_table::Table::new(
            "t",
            vec!["a".into()],
            vec![vec!["x".into()], vec!["z".into()]],
        )
        .unwrap();
        assert_eq!(table_fingerprint(&t1), table_fingerprint(&t1));
        assert_ne!(table_fingerprint(&t1), table_fingerprint(&t2));
    }
}
