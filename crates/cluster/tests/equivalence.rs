//! Equivalence and property suite for the dedup-weighted clustering fast
//! paths against their retained scalar oracles.
//!
//! The duplicated-row tables below use integer-valued f32 features so the
//! weighted f64 centroid sums are exact; in that regime the fast path is
//! bit-identical to the full-row oracle (see the `kmeans` module docs). The
//! all-distinct tables exercise the regime where the two paths coincide
//! unconditionally (every multiplicity is 1, and `1.0 * x == x` exactly).

use zeroed_cluster::{
    assign_to_nearest, kmeans, kmeans_reference, DedupPoints, KMeansConfig, SamplingMethod,
};

fn refs(data: &[Vec<f32>]) -> Vec<&[f32]> {
    data.iter().map(|r| r.as_slice()).collect()
}

/// A low-cardinality table shaped like real per-attribute features: `n` rows
/// drawn from `u` distinct integer-valued vectors, interleaved so duplicate
/// runs are non-contiguous.
fn duplicated_table(n: usize, u: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            let v = (i * 7 + i / 11) % u;
            // Dimension 0 carries `v` itself so the table holds exactly `u`
            // distinct vectors; the rest wrap for varied geometry.
            (0..dim)
                .map(|d| {
                    if d == 0 {
                        v as f32
                    } else {
                        ((v * (d + 3) + d * d) % 23) as f32
                    }
                })
                .collect()
        })
        .collect()
}

/// An all-distinct table with non-integer values.
fn distinct_table(n: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| (i * dim + d) as f32 * 0.37 - 1.9)
                .collect()
        })
        .collect()
}

#[test]
fn dedup_kmeans_is_bit_identical_to_the_oracle_on_duplicated_tables() {
    for (n, u, k, seed) in [
        (500usize, 9usize, 4usize, 1u64),
        (1_000, 40, 12, 7),
        (737, 3, 5, 99),
        (200, 200, 8, 5), // u == n: degenerate dedup, still identical
    ] {
        let data = duplicated_table(n, u, 4);
        let rows = refs(&data);
        let config = KMeansConfig::default();
        let fast = kmeans(&rows, k, &config, seed);
        let oracle = kmeans_reference(&rows, k, &config, seed);
        assert_eq!(fast.k, oracle.k, "n={n} u={u} k={k} seed={seed}");
        assert_eq!(fast.assignments, oracle.assignments, "n={n} u={u} k={k}");
        assert_eq!(fast.centroids, oracle.centroids, "n={n} u={u} k={k}");
    }
}

#[test]
fn dedup_kmeans_is_bit_identical_to_the_oracle_on_all_distinct_tables() {
    let data = distinct_table(300, 3);
    let rows = refs(&data);
    let config = KMeansConfig::default();
    for seed in [0u64, 3, 17] {
        let fast = kmeans(&rows, 6, &config, seed);
        let oracle = kmeans_reference(&rows, 6, &config, seed);
        assert_eq!(fast.assignments, oracle.assignments, "seed={seed}");
        assert_eq!(fast.centroids, oracle.centroids, "seed={seed}");
    }
}

#[test]
fn single_pass_representatives_match_the_reference_scan() {
    for (n, u, k, seed) in [(400usize, 11usize, 6usize, 2u64), (250, 250, 9, 4)] {
        let data = duplicated_table(n, u, 3);
        let rows = refs(&data);
        let c = kmeans(&rows, k, &KMeansConfig::default(), seed);
        assert_eq!(
            c.representatives(&rows),
            c.representatives_reference(&rows),
            "n={n} u={u} k={k}"
        );
    }
}

#[test]
fn dedup_representatives_match_the_reference_scan() {
    let data = duplicated_table(600, 13, 4);
    let rows = refs(&data);
    let dd = DedupPoints::build(&rows);
    for method in [SamplingMethod::KMeans, SamplingMethod::Random] {
        let c = zeroed_cluster::cluster(method, &rows, 7, 11);
        assert_eq!(
            dd.representatives(&c),
            c.representatives_reference(&rows),
            "{}",
            method.name()
        );
    }
}

#[test]
fn dedup_assignment_matches_full_assignment_on_large_input() {
    let data = duplicated_table(2_000, 31, 5);
    let rows = refs(&data);
    let dd = DedupPoints::build(&rows);
    let c = kmeans(&rows, 10, &KMeansConfig::default(), 3);
    assert_eq!(
        dd.assign_to_nearest(&c.centroids),
        assign_to_nearest(&rows, &c.centroids)
    );
}

/// The empty-cluster re-seed fix's global property: whenever the input holds
/// at least `k` distinct points, the converged clustering must never carry
/// two bit-identical centroids.
#[test]
fn no_duplicate_centroids_when_at_least_k_distinct_points() {
    for (n, u, k) in [
        (300usize, 8usize, 8usize),
        (300, 8, 5),
        (500, 20, 16),
        (512, 64, 32),
    ] {
        let data = duplicated_table(n, u, 3);
        let rows = refs(&data);
        assert!(DedupPoints::build(&rows).n_unique() >= k, "premise violated");
        for seed in 0..8u64 {
            let c = kmeans(&rows, k, &KMeansConfig::default(), seed);
            for a in 0..c.centroids.len() {
                for b in (a + 1)..c.centroids.len() {
                    assert_ne!(
                        c.centroids[a], c.centroids[b],
                        "n={n} u={u} k={k} seed={seed}: clusters {a}/{b} collide"
                    );
                }
            }
        }
    }
}
