//! # zeroed-cluster
//!
//! Clustering and sampling substrate for ZeroED (paper §III-C and Table VI).
//!
//! ## Where it sits in the pipeline
//!
//! ZeroED's labelling budget is its scarce resource: the LLM labels a small
//! fraction of each attribute's cells (`label_rate`, paper Fig. 7), and
//! everything else receives its label through in-cluster propagation. This
//! crate decides *which* cells get the budget: each attribute's per-cell
//! feature vectors (from `zeroed-features`) are clustered, and the point
//! closest to each centroid becomes that cluster's representative — the cell
//! the LLM actually sees. Label quality therefore hinges on cluster quality,
//! which is why the paper sweeps the method (Table VI) and the budget
//! (Fig. 7) separately.
//!
//! The paper's default is k-means; Ward-linkage agglomerative clustering and
//! plain random selection are evaluated as alternatives. All three sit
//! behind the [`SamplingMethod`] enum so the pipeline (and the Table VI
//! experiment binary) can swap them without touching call sites:
//!
//! * [`kmeans()`] — Lloyd's iterations with k-means++-style seeding, the
//!   §III-C default. O(iters · k · n · d).
//! * [`agglomerative()`] — bottom-up Ward merging ("AGC" in Table VI); more
//!   faithful to irregular cluster shapes, quadratic in n, so the pipeline
//!   caps its input size (`max_cluster_rows`).
//! * Random — centroid-free control arm.
//!
//! ## Contracts
//!
//! * **Zero-copy input.** Data is a slice of row slices (`&[&[f32]]`),
//!   mapping directly onto `FeatureMatrix` rows — no reshaping between
//!   featurisation and clustering.
//! * **Determinism.** Every method is driven by an explicit seed through a
//!   counter-based RNG (`ChaCha8`); the same vectors, `k` and seed produce
//!   the same [`Clustering`] on every platform. The pipeline derives one
//!   seed per attribute, which is what makes whole detection runs
//!   reproducible (and their LLM request keys cacheable across processes —
//!   the representatives chosen here feed the prompts that
//!   `zeroed-runtime` content-hashes).
//! * **Degenerate inputs stay total.** `k` is clamped to the point count;
//!   empty inputs yield an empty clustering rather than panicking.

pub mod agglomerative;
pub mod dedup;
pub mod kmeans;

pub use agglomerative::agglomerative;
pub use dedup::DedupPoints;
pub use kmeans::{
    kmeans, kmeans_dedup, kmeans_reference, kmeans_reference_with_initial, kmeans_with_initial,
    KMeansConfig,
};

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Which sampling strategy to use when picking representative cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplingMethod {
    /// Lloyd's k-means with k-means++ style initialisation (paper default).
    KMeans,
    /// Ward-linkage agglomerative clustering (Table VI "AGC").
    Agglomerative,
    /// Random centre selection (Table VI "Random").
    Random,
}

impl SamplingMethod {
    /// Human readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            SamplingMethod::KMeans => "k-Means",
            SamplingMethod::Agglomerative => "AGC",
            SamplingMethod::Random => "Random",
        }
    }
}

/// The outcome of clustering one attribute's feature vectors.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Number of clusters.
    pub k: usize,
    /// Cluster index per data point.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f32>>,
}

impl Clustering {
    /// Indices of the points belonging to cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of points per cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// For each non-empty cluster, the index of the data point closest to the
    /// centroid — the representative that ZeroED sends to the LLM for
    /// labelling.
    ///
    /// Single pass over the rows; bit-identical to
    /// [`Clustering::representatives_reference`] (each row's distance is
    /// evaluated against its own cluster's centroid exactly as the per-cluster
    /// scan does, and the strict `<` keeps the earliest minimal row).
    pub fn representatives(&self, data: &[&[f32]]) -> Vec<usize> {
        let mut best: Vec<Option<(usize, f32)>> = vec![None; self.k];
        for (i, &a) in self.assignments.iter().enumerate() {
            let d = sq_dist(data[i], &self.centroids[a]);
            match best[a] {
                Some((_, bd)) if !(d < bd) => {}
                _ => best[a] = Some((i, d)),
            }
        }
        best.into_iter().flatten().map(|(i, _)| i).collect()
    }

    /// The original O(k·n) per-cluster scan, kept as the equivalence oracle
    /// for [`Clustering::representatives`].
    pub fn representatives_reference(&self, data: &[&[f32]]) -> Vec<usize> {
        let mut reps = Vec::with_capacity(self.k);
        for c in 0..self.k {
            let mut best: Option<(usize, f32)> = None;
            for (i, &a) in self.assignments.iter().enumerate() {
                if a != c {
                    continue;
                }
                let d = sq_dist(data[i], &self.centroids[c]);
                if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                    best = Some((i, d));
                }
            }
            if let Some((i, _)) = best {
                reps.push(i);
            }
        }
        reps
    }
}

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Clusters `data` into `k` groups with the requested method.
///
/// `k` is clamped to the number of points; an empty input produces an empty
/// clustering.
pub fn cluster(method: SamplingMethod, data: &[&[f32]], k: usize, seed: u64) -> Clustering {
    if data.is_empty() || k == 0 {
        return Clustering {
            k: 0,
            assignments: Vec::new(),
            centroids: Vec::new(),
        };
    }
    let k = k.min(data.len());
    match method {
        SamplingMethod::KMeans => kmeans(data, k, &KMeansConfig::default(), seed),
        SamplingMethod::Agglomerative => agglomerative(data, k, seed),
        SamplingMethod::Random => random_clustering(data, k, seed),
    }
}

/// Picks `k` random points as centres and assigns every point to its nearest
/// centre. This is the "Random" sampling baseline of Table VI.
pub fn random_clustering(data: &[&[f32]], k: usize, seed: u64) -> Clustering {
    let k = k.min(data.len());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..data.len()).collect();
    indices.shuffle(&mut rng);
    let centroids: Vec<Vec<f32>> = indices[..k].iter().map(|&i| data[i].to_vec()).collect();
    let assignments = assign_to_nearest(data, &centroids);
    Clustering {
        k,
        assignments,
        centroids,
    }
}

/// Assigns each point to the index of its nearest centroid (parallel over
/// points; each element is an independent argmin, so the result is identical
/// to the sequential scan under any thread count).
pub fn assign_to_nearest(data: &[&[f32]], centroids: &[Vec<f32>]) -> Vec<usize> {
    data.par_iter()
        .map(|row| {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = sq_dist(row, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f32>> {
        // Three well-separated 2-D blobs of 20 points each.
        let mut data = Vec::new();
        for (cx, cy) in [(0.0f32, 0.0f32), (10.0, 10.0), (-10.0, 10.0)] {
            for i in 0..20 {
                let dx = (i % 5) as f32 * 0.1;
                let dy = (i / 5) as f32 * 0.1;
                data.push(vec![cx + dx, cy + dy]);
            }
        }
        data
    }

    fn refs(data: &[Vec<f32>]) -> Vec<&[f32]> {
        data.iter().map(|r| r.as_slice()).collect()
    }

    #[test]
    fn all_methods_recover_separated_blobs() {
        let data = blobs();
        let rows = refs(&data);
        for method in [
            SamplingMethod::KMeans,
            SamplingMethod::Agglomerative,
            SamplingMethod::Random,
        ] {
            let c = cluster(method, &rows, 3, 7);
            assert_eq!(c.k, 3, "{}", method.name());
            assert_eq!(c.assignments.len(), 60);
            // Points within the same blob should share a cluster for k-means
            // and agglomerative; random may split blobs, so only check
            // assignment validity there.
            if method != SamplingMethod::Random {
                for blob in 0..3 {
                    let first = c.assignments[blob * 20];
                    for i in 0..20 {
                        assert_eq!(
                            c.assignments[blob * 20 + i],
                            first,
                            "{} split blob {blob}",
                            method.name()
                        );
                    }
                }
            }
            for &a in &c.assignments {
                assert!(a < c.k);
            }
        }
    }

    #[test]
    fn representatives_are_one_per_nonempty_cluster() {
        let data = blobs();
        let rows = refs(&data);
        let c = cluster(SamplingMethod::KMeans, &rows, 3, 1);
        let reps = c.representatives(&rows);
        assert_eq!(reps.len(), 3);
        // Representatives come from distinct clusters.
        let clusters: std::collections::HashSet<usize> =
            reps.iter().map(|&i| c.assignments[i]).collect();
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn cluster_handles_degenerate_inputs() {
        let empty: Vec<&[f32]> = Vec::new();
        let c = cluster(SamplingMethod::KMeans, &empty, 5, 0);
        assert_eq!(c.k, 0);
        let one = [vec![1.0f32, 2.0]];
        let rows = refs(&one);
        let c = cluster(SamplingMethod::Agglomerative, &rows, 5, 0);
        assert_eq!(c.k, 1);
        assert_eq!(c.assignments, vec![0]);
    }

    #[test]
    fn sizes_and_members_are_consistent() {
        let data = blobs();
        let rows = refs(&data);
        let c = cluster(SamplingMethod::KMeans, &rows, 3, 3);
        let sizes = c.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 60);
        for cl in 0..3 {
            assert_eq!(c.members(cl).len(), sizes[cl]);
        }
    }

    #[test]
    fn random_clustering_is_deterministic_per_seed() {
        let data = blobs();
        let rows = refs(&data);
        let a = random_clustering(&rows, 4, 11);
        let b = random_clustering(&rows, 4, 11);
        assert_eq!(a.assignments, b.assignments);
    }
}
