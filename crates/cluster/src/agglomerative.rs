//! Ward-linkage agglomerative clustering (the "AGC" alternative of Table VI).
//!
//! A full hierarchical clustering is quadratic in the number of points, which
//! is too expensive for the larger attributes, so the implementation follows
//! the common practice of hierarchically clustering a bounded sample (default
//! 1,024 points) and assigning the remaining points to the nearest resulting
//! centroid. The merge step uses the nearest-neighbour-chain algorithm with
//! Ward linkage, which runs in `O(sample² · dim)` time and linear memory.

use crate::{assign_to_nearest, Clustering};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Maximum number of points used for the hierarchical phase.
const MAX_SAMPLE: usize = 1_024;

#[derive(Debug, Clone)]
struct Node {
    /// Sum of member vectors (for centroid computation).
    sum: Vec<f64>,
    /// Number of members.
    size: usize,
    /// Whether this node is still an active cluster.
    alive: bool,
}

impl Node {
    fn centroid(&self) -> Vec<f32> {
        self.sum
            .iter()
            .map(|&s| (s / self.size as f64) as f32)
            .collect()
    }
}

/// Ward distance between two clusters represented by centroid sums and sizes.
///
/// Computed straight off the running `sum`/`size` fields with zero
/// allocations: each centroid component is materialised as the same
/// `(sum / size) as f32` value [`Node::centroid`] would produce and the
/// squared distance accumulates in f32 in [`crate::sq_dist`]'s exact
/// operation
/// order, so the result is bit-identical to the former
/// `sq_dist(&a.centroid(), &b.centroid())` formulation — this function is
/// evaluated O(sample²) times per merge pass, where the two `Vec<f32>`
/// allocations per call used to dominate.
fn ward_distance(a: &Node, b: &Node) -> f64 {
    debug_assert_eq!(a.sum.len(), b.sum.len());
    let na = a.size as f64;
    let nb = b.size as f64;
    let mut acc = 0.0f32;
    for (sa, sb) in a.sum.iter().zip(b.sum.iter()) {
        let ca = (sa / na) as f32;
        let cb = (sb / nb) as f32;
        let d = ca - cb;
        acc += d * d;
    }
    na * nb / (na + nb) * (acc as f64)
}

/// Agglomerative (Ward) clustering of `data` into `k` clusters.
pub fn agglomerative(data: &[&[f32]], k: usize, seed: u64) -> Clustering {
    let n = data.len();
    if n == 0 || k == 0 {
        return Clustering {
            k: 0,
            assignments: Vec::new(),
            centroids: Vec::new(),
        };
    }
    let k = k.min(n);

    // Sample the points used for the hierarchical phase.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..n).collect();
    if n > MAX_SAMPLE {
        indices.shuffle(&mut rng);
        indices.truncate(MAX_SAMPLE.max(k));
    }

    // Initialise one singleton node per sampled point.
    let mut nodes: Vec<Node> = indices
        .iter()
        .map(|&i| Node {
            sum: data[i].iter().map(|&x| x as f64).collect(),
            size: 1,
            alive: true,
        })
        .collect();
    let mut n_alive = nodes.len();

    // Nearest-neighbour-chain agglomeration until `k` clusters remain.
    let mut chain: Vec<usize> = Vec::new();
    while n_alive > k {
        if chain.is_empty() {
            let first = nodes
                .iter()
                .position(|nd| nd.alive)
                .expect("at least k clusters remain alive");
            chain.push(first);
        }
        let current = *chain.last().expect("chain is non-empty");
        // Find the nearest alive neighbour of `current`.
        let mut nearest = None;
        let mut nearest_d = f64::INFINITY;
        for (j, node) in nodes.iter().enumerate() {
            if !node.alive || j == current {
                continue;
            }
            let d = ward_distance(&nodes[current], node);
            if d < nearest_d {
                nearest_d = d;
                nearest = Some(j);
            }
        }
        let Some(nearest) = nearest else { break };
        // If the nearest neighbour is the previous element of the chain, the
        // pair is reciprocal — merge it. Otherwise extend the chain.
        if chain.len() >= 2 && chain[chain.len() - 2] == nearest {
            chain.pop();
            chain.pop();
            // Merge `nearest` into `current`.
            let (a, b) = if current < nearest {
                (current, nearest)
            } else {
                (nearest, current)
            };
            let (left, right) = nodes.split_at_mut(b);
            let target = &mut left[a];
            let source = &mut right[0];
            for (s, x) in target.sum.iter_mut().zip(source.sum.iter()) {
                *s += x;
            }
            target.size += source.size;
            source.alive = false;
            n_alive -= 1;
        } else {
            chain.push(nearest);
        }
    }

    let centroids: Vec<Vec<f32>> = nodes
        .iter()
        .filter(|nd| nd.alive)
        .map(|nd| nd.centroid())
        .collect();
    let assignments = assign_to_nearest(data, &centroids);
    Clustering {
        k: centroids.len(),
        assignments,
        centroids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_down_to_k_clusters() {
        let mut data = Vec::new();
        for (cx, cy) in [(0.0f32, 0.0f32), (8.0, 8.0)] {
            for i in 0..25 {
                data.push(vec![cx + (i % 5) as f32 * 0.05, cy + (i / 5) as f32 * 0.05]);
            }
        }
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let c = agglomerative(&rows, 2, 3);
        assert_eq!(c.k, 2);
        assert_ne!(c.assignments[0], c.assignments[30]);
        assert_eq!(c.members(0).len() + c.members(1).len(), 50);
    }

    #[test]
    fn k_equal_to_n_gives_singletons() {
        let data = vec![vec![0.0f32], vec![5.0], vec![10.0]];
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let c = agglomerative(&rows, 3, 0);
        assert_eq!(c.k, 3);
        let mut sorted = c.assignments.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn handles_more_points_than_sample_cap() {
        // 1,500 points in two blobs exceeds MAX_SAMPLE.
        let mut data = Vec::new();
        for i in 0..1_500 {
            let base = if i % 2 == 0 { 0.0f32 } else { 50.0 };
            data.push(vec![base + (i % 7) as f32 * 0.01, base]);
        }
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let c = agglomerative(&rows, 2, 9);
        assert_eq!(c.k, 2);
        assert_eq!(c.assignments.len(), 1_500);
        assert_ne!(c.assignments[0], c.assignments[1]);
    }

    #[test]
    fn ward_distance_grows_with_separation() {
        let a = Node {
            sum: vec![0.0, 0.0],
            size: 1,
            alive: true,
        };
        let near = Node {
            sum: vec![1.0, 0.0],
            size: 1,
            alive: true,
        };
        let far = Node {
            sum: vec![10.0, 0.0],
            size: 1,
            alive: true,
        };
        assert!(ward_distance(&a, &near) < ward_distance(&a, &far));
    }

    /// The zero-alloc `ward_distance` must be bit-identical to the
    /// allocating `sq_dist(&a.centroid(), &b.centroid())` formulation it
    /// replaced, including on sizes whose centroid division is inexact.
    #[test]
    fn ward_distance_matches_the_allocating_formulation_bitwise() {
        let mk = |sum: Vec<f64>, size: usize| Node {
            sum,
            size,
            alive: true,
        };
        let nodes = [
            mk(vec![0.1, -2.7, 3.9], 1),
            mk(vec![10.0, 0.5, -0.25], 3),
            mk(vec![-7.3, 7.3, 100.0], 7),
            mk(vec![0.0, 0.0, 0.0], 13),
        ];
        for a in &nodes {
            for b in &nodes {
                let fast = ward_distance(a, b);
                let na = a.size as f64;
                let nb = b.size as f64;
                let reference =
                    na * nb / (na + nb) * (crate::sq_dist(&a.centroid(), &b.centroid()) as f64);
                assert_eq!(fast.to_bits(), reference.to_bits());
            }
        }
    }
}
