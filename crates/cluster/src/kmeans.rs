//! Lloyd's k-means with k-means++ style seeding.

use crate::{assign_to_nearest, sq_dist, Clustering};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// k-means hyper-parameters.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when the total centroid movement falls below this threshold.
    pub tolerance: f32,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            max_iters: 40,
            tolerance: 1e-4,
        }
    }
}

/// Runs k-means over the rows of `data` (each row one point).
///
/// `k` is clamped to the number of points. Empty clusters are re-seeded with
/// the point farthest from its assigned centroid, so the result always has
/// `k` non-degenerate centroids when `k <= data.len()`.
pub fn kmeans(data: &[&[f32]], k: usize, config: &KMeansConfig, seed: u64) -> Clustering {
    let n = data.len();
    if n == 0 || k == 0 {
        return Clustering {
            k: 0,
            assignments: Vec::new(),
            centroids: Vec::new(),
        };
    }
    let k = k.min(n);
    let dim = data[0].len();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let mut centroids = plus_plus_init(data, k, &mut rng);
    let mut assignments = vec![0usize; n];

    for _ in 0..config.max_iters {
        // Assignment step (parallel over points).
        assignments = data
            .par_iter()
            .map(|row| {
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d = sq_dist(row, centroid);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                best
            })
            .collect();

        // Update step.
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (row, &a) in data.iter().zip(assignments.iter()) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(row.iter()) {
                *s += x as f64;
            }
        }
        let mut movement = 0.0f32;
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the point farthest from its
                // current centroid.
                let (far_idx, _) = data
                    .iter()
                    .enumerate()
                    .map(|(i, row)| (i, sq_dist(row, &centroids[assignments[i]])))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .expect("data is non-empty");
                movement += sq_dist(&centroids[c], data[far_idx]);
                centroids[c] = data[far_idx].to_vec();
                continue;
            }
            let mut new_centroid = vec![0.0f32; dim];
            for (nc, s) in new_centroid.iter_mut().zip(sums[c].iter()) {
                *nc = (*s / counts[c] as f64) as f32;
            }
            movement += sq_dist(&centroids[c], &new_centroid);
            centroids[c] = new_centroid;
        }
        if movement < config.tolerance {
            break;
        }
    }

    // Final assignment against the converged centroids.
    let assignments = assign_to_nearest(data, &centroids);
    Clustering {
        k,
        assignments,
        centroids,
    }
}

/// k-means++ seeding: the first centre is uniform, subsequent centres are
/// sampled proportionally to the squared distance from the nearest existing
/// centre.
fn plus_plus_init(data: &[&[f32]], k: usize, rng: &mut ChaCha8Rng) -> Vec<Vec<f32>> {
    let n = data.len();
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..n)].to_vec());
    let mut dists: Vec<f32> = data
        .iter()
        .map(|row| sq_dist(row, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().map(|&d| d as f64).sum();
        let next = if total <= f64::EPSILON {
            // All remaining points coincide with existing centroids.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(data[next].to_vec());
        let last = centroids.last().expect("just pushed");
        for (d, row) in dists.iter_mut().zip(data.iter()) {
            let nd = sq_dist(row, last);
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f32>> {
        let mut data = Vec::new();
        for i in 0..30 {
            data.push(vec![(i % 6) as f32 * 0.01, 0.0]);
        }
        for i in 0..30 {
            data.push(vec![5.0 + (i % 6) as f32 * 0.01, 5.0]);
        }
        data
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blobs();
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let c = kmeans(&rows, 2, &KMeansConfig::default(), 13);
        assert_eq!(c.k, 2);
        assert_ne!(c.assignments[0], c.assignments[35]);
        assert!(c.members(c.assignments[0]).len() == 30);
    }

    #[test]
    fn k_clamped_to_points() {
        let data = vec![vec![0.0f32], vec![1.0]];
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let c = kmeans(&rows, 10, &KMeansConfig::default(), 0);
        assert_eq!(c.k, 2);
        assert_eq!(c.centroids.len(), 2);
    }

    #[test]
    fn duplicate_points_do_not_break_seeding() {
        let data = vec![vec![1.0f32, 1.0]; 20];
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let c = kmeans(&rows, 4, &KMeansConfig::default(), 5);
        assert_eq!(c.assignments.len(), 20);
        assert_eq!(c.centroids.len(), 4);
    }

    #[test]
    fn deterministic_for_seed() {
        let data = two_blobs();
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let a = kmeans(&rows, 3, &KMeansConfig::default(), 21);
        let b = kmeans(&rows, 3, &KMeansConfig::default(), 21);
        assert_eq!(a.assignments, b.assignments);
    }
}
