//! Lloyd's k-means with k-means++ style seeding.
//!
//! Two implementations share one algorithm:
//!
//! * [`kmeans`] — the production fast path. It factors the input through
//!   [`DedupPoints`] and runs every O(n·k·d) inner loop per *distinct* vector
//!   instead (O(u·k·d), `u` distinct rows), scattering assignments back by
//!   code. Seeding stays row-weighted (the D² scan walks rows, not
//!   distincts), so the sampled centres are exactly the reference's.
//! * [`kmeans_reference`] — the scalar full-row oracle, kept for the
//!   equivalence suite. On inputs whose weighted centroid sums are exact in
//!   f64 (e.g. integer-valued features, and any input with no duplicate
//!   rows) the fast path is bit-identical to it; otherwise the two differ
//!   only by f64 summation order in the centroid update.
//!
//! Empty clusters are re-seeded *iteratively*: after the surviving centroids
//! move, each empty cluster in turn takes the point farthest from its
//! nearest updated centroid, and the distance field is refreshed before the
//! next empty cluster picks — so two clusters emptied in the same iteration
//! receive two distinct points. (The pre-fix behaviour computed every
//! farthest point against the same stale assignment snapshot, handing the
//! *same* point to every simultaneously-empty cluster; the duplicate
//! centroids then persisted to convergence. [`kmeans_with_initial`] exists
//! so the regression test can plant that exact situation.)

use crate::dedup::DedupPoints;
use crate::{assign_to_nearest, sq_dist, Clustering};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cmp::Ordering;

/// k-means hyper-parameters.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when the total centroid movement falls below this threshold.
    pub tolerance: f32,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            max_iters: 40,
            tolerance: 1e-4,
        }
    }
}

fn empty_clustering() -> Clustering {
    Clustering {
        k: 0,
        assignments: Vec::new(),
        centroids: Vec::new(),
    }
}

/// Runs k-means over the rows of `data` (each row one point).
///
/// `k` is clamped to the number of points. This is the dedup-weighted fast
/// path; see the module docs for its relationship to [`kmeans_reference`].
pub fn kmeans(data: &[&[f32]], k: usize, config: &KMeansConfig, seed: u64) -> Clustering {
    if data.is_empty() || k == 0 {
        return empty_clustering();
    }
    kmeans_dedup(&DedupPoints::build(data), k, config, seed)
}

/// [`kmeans`] over an already-deduplicated input (lets callers that hold a
/// [`DedupPoints`] skip rebuilding it).
pub fn kmeans_dedup(dd: &DedupPoints, k: usize, config: &KMeansConfig, seed: u64) -> Clustering {
    let n = dd.n_rows();
    if n == 0 || k == 0 {
        return empty_clustering();
    }
    let k = k.min(n);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut centroids = plus_plus_init_dedup(dd, k, &mut rng);
    lloyd_dedup(dd, &mut centroids, config);
    let assignments = dd.assign_to_nearest(&centroids);
    Clustering {
        k,
        assignments,
        centroids,
    }
}

/// Runs the dedup-weighted Lloyd loop from caller-provided initial centroids
/// (skipping k-means++ seeding). Used by the empty-cluster regression tests
/// to plant a specific starting configuration.
pub fn kmeans_with_initial(
    data: &[&[f32]],
    initial: &[Vec<f32>],
    config: &KMeansConfig,
) -> Clustering {
    if data.is_empty() || initial.is_empty() {
        return empty_clustering();
    }
    let dd = DedupPoints::build(data);
    let mut centroids = initial.to_vec();
    lloyd_dedup(&dd, &mut centroids, config);
    let assignments = dd.assign_to_nearest(&centroids);
    Clustering {
        k: centroids.len(),
        assignments,
        centroids,
    }
}

/// The scalar full-row oracle: identical algorithm to [`kmeans`], every loop
/// walking all `n` rows.
pub fn kmeans_reference(data: &[&[f32]], k: usize, config: &KMeansConfig, seed: u64) -> Clustering {
    if data.is_empty() || k == 0 {
        return empty_clustering();
    }
    let n = data.len();
    let k = k.min(n);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut centroids = plus_plus_init(data, k, &mut rng);
    lloyd_reference(data, &mut centroids, config);
    let assignments = assign_to_nearest(data, &centroids);
    Clustering {
        k,
        assignments,
        centroids,
    }
}

/// [`kmeans_reference`] from caller-provided initial centroids.
pub fn kmeans_reference_with_initial(
    data: &[&[f32]],
    initial: &[Vec<f32>],
    config: &KMeansConfig,
) -> Clustering {
    if data.is_empty() || initial.is_empty() {
        return empty_clustering();
    }
    let mut centroids = initial.to_vec();
    lloyd_reference(data, &mut centroids, config);
    let assignments = assign_to_nearest(data, &centroids);
    Clustering {
        k: centroids.len(),
        assignments,
        centroids,
    }
}

/// `max_by`-compatible argmax over per-row distances: on ties (and on NaN,
/// treated as equal) the *later* row wins, matching
/// `Iterator::max_by(partial_cmp.unwrap_or(Equal))`.
fn farthest_row(dists: impl Iterator<Item = f32>) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::NEG_INFINITY;
    for (i, d) in dists.enumerate() {
        if i == 0 || best_d.partial_cmp(&d).unwrap_or(Ordering::Equal) != Ordering::Greater {
            best = i;
            best_d = d;
        }
    }
    best
}

/// Lloyd iterations over the deduplicated points, mutating `centroids` in
/// place. Assignment and reseed distances are computed once per distinct
/// vector; centroid sums weight each distinct by its multiplicity.
fn lloyd_dedup(dd: &DedupPoints, centroids: &mut [Vec<f32>], config: &KMeansConfig) {
    let k = centroids.len();
    let dim = dd.dim();
    let nu = dd.n_unique();
    for _ in 0..config.max_iters {
        // Assignment step, per distinct vector (parallel).
        let uassign = dd.assign_unique(centroids);

        // Update step: multiplicity-weighted sums.
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0u64; k];
        for u in 0..nu {
            let a = uassign[u];
            let w = dd.counts()[u] as u64;
            counts[a] += w;
            let wf = w as f64;
            for (s, &x) in sums[a].iter_mut().zip(dd.unique_row(u)) {
                *s += wf * (x as f64);
            }
        }
        let mut movement = 0.0f32;
        let mut empties: Vec<usize> = Vec::new();
        for c in 0..k {
            if counts[c] == 0 {
                empties.push(c);
                continue;
            }
            let mut new_centroid = vec![0.0f32; dim];
            for (nc, s) in new_centroid.iter_mut().zip(sums[c].iter()) {
                *nc = (*s / counts[c] as f64) as f32;
            }
            movement += sq_dist(&centroids[c], &new_centroid);
            centroids[c] = new_centroid;
        }
        // Iterative empty-cluster re-seeding against the *updated* centroids,
        // refreshing distances after each pick so simultaneously-empty
        // clusters receive distinct points.
        if !empties.is_empty() {
            let mut udist: Vec<f32> = (0..nu)
                .map(|u| sq_dist(dd.unique_row(u), &centroids[uassign[u]]))
                .collect();
            for c in empties {
                let far = farthest_row(dd.codes().iter().map(|&u| udist[u as usize]));
                let far_u = dd.codes()[far] as usize;
                movement += sq_dist(&centroids[c], dd.unique_row(far_u));
                centroids[c] = dd.unique_row(far_u).to_vec();
                for u in 0..nu {
                    let nd = sq_dist(dd.unique_row(u), &centroids[c]);
                    if nd < udist[u] {
                        udist[u] = nd;
                    }
                }
            }
        }
        if movement < config.tolerance {
            break;
        }
    }
}

/// Lloyd iterations over the full rows (the scalar oracle), mutating
/// `centroids` in place. Same re-seeding discipline as [`lloyd_dedup`].
fn lloyd_reference(data: &[&[f32]], centroids: &mut [Vec<f32>], config: &KMeansConfig) {
    let k = centroids.len();
    let dim = data[0].len();
    for _ in 0..config.max_iters {
        let assignments = assign_to_nearest(data, centroids);

        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0u64; k];
        for (row, &a) in data.iter().zip(assignments.iter()) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(row.iter()) {
                *s += x as f64;
            }
        }
        let mut movement = 0.0f32;
        let mut empties: Vec<usize> = Vec::new();
        for c in 0..k {
            if counts[c] == 0 {
                empties.push(c);
                continue;
            }
            let mut new_centroid = vec![0.0f32; dim];
            for (nc, s) in new_centroid.iter_mut().zip(sums[c].iter()) {
                *nc = (*s / counts[c] as f64) as f32;
            }
            movement += sq_dist(&centroids[c], &new_centroid);
            centroids[c] = new_centroid;
        }
        if !empties.is_empty() {
            let mut dists: Vec<f32> = data
                .iter()
                .zip(assignments.iter())
                .map(|(row, &a)| sq_dist(row, &centroids[a]))
                .collect();
            for c in empties {
                let far = farthest_row(dists.iter().copied());
                movement += sq_dist(&centroids[c], data[far]);
                centroids[c] = data[far].to_vec();
                for (d, row) in dists.iter_mut().zip(data.iter()) {
                    let nd = sq_dist(row, &centroids[c]);
                    if nd < *d {
                        *d = nd;
                    }
                }
            }
        }
        if movement < config.tolerance {
            break;
        }
    }
}

/// k-means++ seeding: the first centre is uniform, subsequent centres are
/// sampled proportionally to the squared distance from the nearest existing
/// centre.
fn plus_plus_init(data: &[&[f32]], k: usize, rng: &mut ChaCha8Rng) -> Vec<Vec<f32>> {
    let n = data.len();
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..n)].to_vec());
    let mut dists: Vec<f32> = data
        .iter()
        .map(|row| sq_dist(row, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().map(|&d| d as f64).sum();
        let next = if total <= f64::EPSILON {
            // All remaining points coincide with existing centroids.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(data[next].to_vec());
        let last = centroids.last().expect("just pushed");
        for (d, row) in dists.iter_mut().zip(data.iter()) {
            let nd = sq_dist(row, last);
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

/// [`plus_plus_init`] with distances evaluated once per distinct vector.
///
/// The D² scan still walks *rows* (each row contributes its distinct's
/// distance), so the consumed RNG stream and the sampled centres are
/// bit-identical to the reference's.
fn plus_plus_init_dedup(dd: &DedupPoints, k: usize, rng: &mut ChaCha8Rng) -> Vec<Vec<f32>> {
    let n = dd.n_rows();
    let nu = dd.n_unique();
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(dd.row(rng.gen_range(0..n)).to_vec());
    let mut udists: Vec<f32> = (0..nu)
        .map(|u| sq_dist(dd.unique_row(u), &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dd
            .codes()
            .iter()
            .map(|&u| udists[u as usize] as f64)
            .sum();
        let next = if total <= f64::EPSILON {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &u) in dd.codes().iter().enumerate() {
                target -= udists[u as usize] as f64;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(dd.row(next).to_vec());
        let last = centroids.last().expect("just pushed");
        for (u, d) in udists.iter_mut().enumerate() {
            let nd = sq_dist(dd.unique_row(u), last);
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f32>> {
        let mut data = Vec::new();
        for i in 0..30 {
            data.push(vec![(i % 6) as f32 * 0.01, 0.0]);
        }
        for i in 0..30 {
            data.push(vec![5.0 + (i % 6) as f32 * 0.01, 5.0]);
        }
        data
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blobs();
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let c = kmeans(&rows, 2, &KMeansConfig::default(), 13);
        assert_eq!(c.k, 2);
        assert_ne!(c.assignments[0], c.assignments[35]);
        assert!(c.members(c.assignments[0]).len() == 30);
    }

    #[test]
    fn k_clamped_to_points() {
        let data = vec![vec![0.0f32], vec![1.0]];
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let c = kmeans(&rows, 10, &KMeansConfig::default(), 0);
        assert_eq!(c.k, 2);
        assert_eq!(c.centroids.len(), 2);
    }

    #[test]
    fn duplicate_points_do_not_break_seeding() {
        let data = vec![vec![1.0f32, 1.0]; 20];
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let c = kmeans(&rows, 4, &KMeansConfig::default(), 5);
        assert_eq!(c.assignments.len(), 20);
        assert_eq!(c.centroids.len(), 4);
    }

    #[test]
    fn deterministic_for_seed() {
        let data = two_blobs();
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let a = kmeans(&rows, 3, &KMeansConfig::default(), 21);
        let b = kmeans(&rows, 3, &KMeansConfig::default(), 21);
        assert_eq!(a.assignments, b.assignments);
    }

    /// Plants two simultaneously-empty clusters: points {0, 1, 10, 11} with
    /// initial centroids at 0.4, 0.6, 100 and 200 assign every point to the
    /// first two centroids, so clusters 2 and 3 are empty in iteration one.
    /// The pre-fix re-seeding handed both the same farthest point; the fix
    /// must produce pairwise-distinct centroids from a single iteration.
    #[test]
    fn simultaneously_empty_clusters_reseed_to_distinct_points() {
        let data = vec![vec![0.0f32], vec![1.0], vec![10.0], vec![11.0]];
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let initial = vec![vec![0.4f32], vec![0.6], vec![100.0], vec![200.0]];
        let config = KMeansConfig {
            max_iters: 1,
            ..Default::default()
        };
        for c in [
            kmeans_with_initial(&rows, &initial, &config),
            kmeans_reference_with_initial(&rows, &initial, &config),
        ] {
            assert_eq!(c.centroids.len(), 4);
            for a in 0..4 {
                for b in (a + 1)..4 {
                    assert_ne!(
                        c.centroids[a], c.centroids[b],
                        "clusters {a} and {b} share a centroid: {:?}",
                        c.centroids
                    );
                }
            }
        }
    }

    #[test]
    fn with_initial_paths_agree_bitwise_on_integer_data() {
        let data: Vec<Vec<f32>> = (0..64)
            .map(|i| vec![(i % 9) as f32, ((i * 5) % 11) as f32])
            .collect();
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let initial = vec![vec![0.0f32, 0.0], vec![4.0, 5.0], vec![8.0, 10.0]];
        let config = KMeansConfig::default();
        let fast = kmeans_with_initial(&rows, &initial, &config);
        let oracle = kmeans_reference_with_initial(&rows, &initial, &config);
        assert_eq!(fast.assignments, oracle.assignments);
        assert_eq!(fast.centroids, oracle.centroids);
    }
}
