//! Distinct-row deduplication: the shared substrate of the clustering and
//! detector fast paths.
//!
//! Per-attribute feature vectors are assembled per *distinct value* and
//! scattered to rows (`zeroed-features` interning), so an attribute with `n`
//! rows but `u` distinct values carries only `u` distinct feature vectors —
//! and real tables have `u ≪ n` (a 50k-row "state" column has ~50 distincts).
//! Clustering, scaling, MLP training and prediction are all pure functions of
//! the vector, so any per-row loop over the attribute can instead run per
//! *unique* vector and scatter results back by code.
//!
//! [`DedupPoints`] captures that factorisation once: the distinct vectors in
//! first-occurrence order, one code per input row, and per-distinct
//! multiplicities. Rows are grouped by exact f32 *bit pattern* (no epsilon),
//! so any computation on a unique vector produces bit-identical results to
//! running it on every duplicate row — the property the equivalence oracles
//! in `kmeans` and `zeroed-ml` assert.

use crate::{sq_dist, Clustering};
use rayon::prelude::*;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Rotate-xor-multiply (FxHash-style) hasher: the keys are content hashes of
/// short f32 rows, for which SipHash's DoS resistance is wasted cost.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.hash = (self.hash.rotate_left(5) ^ u64::from_le_bytes(buf))
                .wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// Content hash of one row's f32 bit patterns.
#[inline]
fn hash_row(row: &[f32]) -> u64 {
    let mut h = FxHasher::default();
    for &x in row {
        h.write_u64(x.to_bits() as u64);
    }
    h.finish()
}

/// Exact bit-pattern equality (distinguishes `-0.0` from `0.0` and treats
/// identical NaN payloads as equal — conservative in both directions).
#[inline]
fn rows_bit_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// A set of input rows factored into distinct vectors plus per-row codes.
#[derive(Debug, Clone)]
pub struct DedupPoints {
    /// Flat row-major storage of the distinct vectors, in first-occurrence
    /// order.
    unique: Vec<f32>,
    /// Vector dimensionality.
    dim: usize,
    /// For every input row, the index of its distinct vector.
    codes: Vec<u32>,
    /// Multiplicity of each distinct vector.
    counts: Vec<u32>,
    /// First input row holding each distinct vector.
    first_rows: Vec<u32>,
}

impl DedupPoints {
    /// Groups `data` rows by exact bit pattern.
    pub fn build(data: &[&[f32]]) -> Self {
        let dim = data.first().map(|r| r.len()).unwrap_or(0);
        let mut unique: Vec<f32> = Vec::new();
        let mut codes: Vec<u32> = Vec::with_capacity(data.len());
        let mut counts: Vec<u32> = Vec::new();
        let mut first_rows: Vec<u32> = Vec::new();
        // hash -> candidate unique ids (collisions resolved by bit comparison).
        let mut by_hash: HashMap<u64, Vec<u32>, FxBuild> = HashMap::default();
        for (i, row) in data.iter().enumerate() {
            debug_assert_eq!(row.len(), dim, "ragged clustering input");
            let candidates = by_hash.entry(hash_row(row)).or_default();
            let found = candidates
                .iter()
                .copied()
                .find(|&u| rows_bit_equal(&unique[u as usize * dim..(u as usize + 1) * dim], row));
            let code = match found {
                Some(u) => {
                    counts[u as usize] += 1;
                    u
                }
                None => {
                    let u = counts.len() as u32;
                    unique.extend_from_slice(row);
                    counts.push(1);
                    first_rows.push(i as u32);
                    candidates.push(u);
                    u
                }
            };
            codes.push(code);
        }
        Self {
            unique,
            dim,
            codes,
            counts,
            first_rows,
        }
    }

    /// Number of input rows.
    pub fn n_rows(&self) -> usize {
        self.codes.len()
    }

    /// Number of distinct vectors.
    pub fn n_unique(&self) -> usize {
        self.counts.len()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `u`-th distinct vector.
    #[inline]
    pub fn unique_row(&self, u: usize) -> &[f32] {
        &self.unique[u * self.dim..(u + 1) * self.dim]
    }

    /// One reference per distinct vector, in first-occurrence order.
    pub fn unique_row_refs(&self) -> Vec<&[f32]> {
        (0..self.n_unique()).map(|u| self.unique_row(u)).collect()
    }

    /// Per-row codes into the distinct vectors.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Multiplicity of each distinct vector.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// First input row holding each distinct vector.
    pub fn first_rows(&self) -> &[u32] {
        &self.first_rows
    }

    /// The input row `i` (a view into the distinct storage).
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        self.unique_row(self.codes[i] as usize)
    }

    /// Expands a per-unique result to a per-row result by code.
    pub fn scatter<T: Copy>(&self, per_unique: &[T]) -> Vec<T> {
        debug_assert_eq!(per_unique.len(), self.n_unique());
        self.codes
            .iter()
            .map(|&c| per_unique[c as usize])
            .collect()
    }

    /// Nearest-centroid index per *distinct* vector (parallel).
    pub fn assign_unique(&self, centroids: &[Vec<f32>]) -> Vec<usize> {
        (0..self.n_unique())
            .into_par_iter()
            .map(|u| {
                let row = self.unique_row(u);
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d = sq_dist(row, centroid);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                best
            })
            .collect()
    }

    /// Nearest-centroid index per input row: one distance evaluation per
    /// distinct vector, scattered back by code. Bit-identical to
    /// [`crate::assign_to_nearest`] over the full rows.
    pub fn assign_to_nearest(&self, centroids: &[Vec<f32>]) -> Vec<usize> {
        self.scatter(&self.assign_unique(centroids))
    }

    /// Representative row per non-empty cluster: the row closest to its
    /// centroid, evaluated once per distinct vector.
    ///
    /// Bit-identical to [`Clustering::representatives_reference`] over the
    /// full rows: every duplicate row shares its distinct vector's distance,
    /// so the earliest minimal row is the winning distinct's first
    /// occurrence, and scanning distincts in first-occurrence order with a
    /// strict `<` reproduces the row-order tie-break exactly.
    pub fn representatives(&self, clustering: &Clustering) -> Vec<usize> {
        debug_assert_eq!(clustering.assignments.len(), self.n_rows());
        let mut best: Vec<Option<(u32, f32)>> = vec![None; clustering.k];
        for u in 0..self.n_unique() {
            let first = self.first_rows[u];
            let a = clustering.assignments[first as usize];
            let d = sq_dist(self.unique_row(u), &clustering.centroids[a]);
            match best[a] {
                Some((_, bd)) if !(d < bd) => {}
                _ => best[a] = Some((first, d)),
            }
        }
        best.into_iter()
            .flatten()
            .map(|(i, _)| i as usize)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[Vec<f32>]) -> Vec<&[f32]> {
        data.iter().map(|r| r.as_slice()).collect()
    }

    #[test]
    fn build_groups_duplicate_rows() {
        let data = vec![
            vec![1.0f32, 2.0],
            vec![3.0, 4.0],
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            vec![5.0, 6.0],
        ];
        let dd = DedupPoints::build(&rows(&data));
        assert_eq!(dd.n_rows(), 5);
        assert_eq!(dd.n_unique(), 3);
        assert_eq!(dd.codes(), &[0, 1, 0, 0, 2]);
        assert_eq!(dd.counts(), &[3, 1, 1]);
        assert_eq!(dd.first_rows(), &[0, 1, 4]);
        assert_eq!(dd.unique_row(2), &[5.0, 6.0]);
        assert_eq!(dd.row(3), &[1.0, 2.0]);
    }

    #[test]
    fn negative_zero_is_a_distinct_pattern() {
        let data = vec![vec![0.0f32], vec![-0.0f32]];
        let dd = DedupPoints::build(&rows(&data));
        assert_eq!(dd.n_unique(), 2);
    }

    #[test]
    fn scatter_round_trips() {
        let data = vec![vec![1.0f32], vec![2.0], vec![1.0]];
        let dd = DedupPoints::build(&rows(&data));
        assert_eq!(dd.scatter(&[10usize, 20]), vec![10, 20, 10]);
    }

    #[test]
    fn dedup_assignment_matches_full_assignment() {
        let data: Vec<Vec<f32>> = (0..200)
            .map(|i| vec![(i % 7) as f32, (i % 3) as f32])
            .collect();
        let r = rows(&data);
        let dd = DedupPoints::build(&r);
        assert_eq!(dd.n_unique(), 21);
        let centroids = vec![vec![0.0f32, 0.0], vec![5.0, 2.0]];
        assert_eq!(
            dd.assign_to_nearest(&centroids),
            crate::assign_to_nearest(&r, &centroids)
        );
    }

    #[test]
    fn empty_input_is_empty() {
        let r: Vec<&[f32]> = Vec::new();
        let dd = DedupPoints::build(&r);
        assert_eq!(dd.n_rows(), 0);
        assert_eq!(dd.n_unique(), 0);
        assert_eq!(dd.dim(), 0);
    }
}
