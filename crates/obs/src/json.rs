//! Tiny JSON-emission helpers shared by the profile, histogram and metrics
//! serializers. The workspace's vendored `serde` is a no-op stub, so all
//! ledger JSON is hand-rolled; these helpers keep the style uniform.

/// Escape a string for embedding inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a nanosecond count as fractional milliseconds with microsecond
/// precision (`12.345`), the unit every ledger section reports in.
pub fn fmt_ms(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1_000_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn formats_ms() {
        assert_eq!(fmt_ms(0), "0.000");
        assert_eq!(fmt_ms(1_500_000), "1.500");
        assert_eq!(fmt_ms(12_345_678), "12.346");
    }
}
