//! Hierarchical stage spans and the frozen [`StageProfile`] tree.
//!
//! A [`Profiler`] owns the root of a tree of named nodes. Layers obtain
//! [`Span`] handles (cheap `Arc` clones), create named children with
//! get-or-create semantics — repeated invocations of the same stage
//! accumulate into one node — and record monotonic wall-time into them with
//! [`Span::record`], [`Span::time`] or a drop-guard [`SpanTimer`].
//!
//! Two kinds of node exist:
//!
//! * **sequential** ([`Span::child`]) — timed on the coordinating thread;
//!   the wall-times of a parent's sequential children are disjoint intervals
//!   inside the parent's own interval, so they sum to ≤ the parent's wall
//!   time. This is the accounting invariant the tier-1 bench asserts.
//! * **parallel** ([`Span::child_parallel`], [`Span::child_dist`]) — recorded
//!   from worker threads; the total is CPU-time summed across workers and may
//!   exceed any wall clock. Parallel nodes are excluded from the ≤-parent
//!   invariant and from [`StageProfile::coverage`].

use crate::hist::Histogram;
use crate::json::{escape_json, fmt_ms};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Node {
    name: String,
    parallel: bool,
    total_nanos: AtomicU64,
    count: AtomicU64,
    hist: Option<Histogram>,
    children: Mutex<Vec<Arc<Node>>>,
}

impl Node {
    fn new(name: &str, parallel: bool, with_hist: bool) -> Arc<Self> {
        Arc::new(Node {
            name: name.to_string(),
            parallel,
            total_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
            hist: if with_hist {
                Some(Histogram::new())
            } else {
                None
            },
            children: Mutex::new(Vec::new()),
        })
    }

    /// Get-or-create a child by name. Insertion order is preserved so the
    /// snapshot lists stages in first-recorded order. The kind flags of an
    /// existing node win: the first creator fixes them.
    fn child(&self, name: &str, parallel: bool, with_hist: bool) -> Arc<Node> {
        let mut children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = children.iter().find(|c| c.name == name) {
            return Arc::clone(c);
        }
        let node = Node::new(name, parallel, with_hist);
        children.push(Arc::clone(&node));
        node
    }

    fn snapshot(&self) -> StageProfile {
        let children = self.children.lock().unwrap_or_else(|e| e.into_inner());
        StageProfile {
            name: self.name.clone(),
            wall_nanos: self.total_nanos.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            parallel: self.parallel,
            quantiles: self.hist.as_ref().and_then(|h| {
                let s = h.snapshot();
                if s.count == 0 {
                    return None;
                }
                Some(Quantiles {
                    p50_nanos: s.p50_nanos,
                    p95_nanos: s.p95_nanos,
                    p99_nanos: s.p99_nanos,
                    max_nanos: s.max_nanos,
                    window_dropped: s.window_dropped,
                })
            }),
            children: children.iter().map(|c| c.snapshot()).collect(),
        }
    }
}

/// Owner of a stage-span tree. Cloning shares the same tree.
#[derive(Debug, Clone)]
pub struct Profiler {
    root: Arc<Node>,
}

impl Profiler {
    /// A profiler whose root span is `name`. The root is sequential; record
    /// the whole run's wall time into it via [`Profiler::root`].
    pub fn new(name: &str) -> Self {
        Profiler {
            root: Node::new(name, false, false),
        }
    }

    /// The root span.
    pub fn root(&self) -> Span {
        Span {
            node: Arc::clone(&self.root),
        }
    }

    /// Freeze the current tree into a plain [`StageProfile`] value.
    pub fn snapshot(&self) -> StageProfile {
        self.root.snapshot()
    }
}

/// A handle onto one node of the span tree. Cheap to clone; `Send + Sync`.
#[derive(Debug, Clone)]
pub struct Span {
    node: Arc<Node>,
}

impl Span {
    /// Get-or-create a **sequential** child: timed on the coordinating
    /// thread, participating in the ≤-parent accounting invariant.
    pub fn child(&self, name: &str) -> Span {
        Span {
            node: self.node.child(name, false, false),
        }
    }

    /// Get-or-create a **parallel** child: recorded from worker threads, its
    /// total is CPU-time across workers (excluded from wall accounting).
    pub fn child_parallel(&self, name: &str) -> Span {
        Span {
            node: self.node.child(name, true, false),
        }
    }

    /// Get-or-create a parallel child that additionally keeps a latency
    /// [`Histogram`] so the snapshot carries p50/p95/p99 per invocation.
    pub fn child_dist(&self, name: &str) -> Span {
        Span {
            node: self.node.child(name, true, true),
        }
    }

    /// This span's name.
    pub fn name(&self) -> &str {
        &self.node.name
    }

    /// Record one invocation of `d` wall time.
    pub fn record(&self, d: Duration) {
        let nanos = d.as_nanos().min(u64::MAX as u128) as u64;
        self.node.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.node.count.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = &self.node.hist {
            h.record_nanos(nanos);
        }
    }

    /// Add pre-aggregated time: `total` across `count` invocations (used to
    /// graft externally measured totals, e.g. store shard counters).
    pub fn add(&self, total: Duration, count: u64) {
        let nanos = total.as_nanos().min(u64::MAX as u128) as u64;
        self.node.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.node.count.fetch_add(count, Ordering::Relaxed);
    }

    /// Start a drop-guard timer; the elapsed time records when it drops.
    pub fn timer(&self) -> SpanTimer {
        SpanTimer {
            span: self.clone(),
            start: Instant::now(),
        }
    }

    /// Time a closure and record its duration.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }
}

/// Drop guard returned by [`Span::timer`]; records the elapsed wall time
/// into its span when dropped (including during unwinding).
#[derive(Debug)]
pub struct SpanTimer {
    span: Span,
    start: Instant,
}

impl SpanTimer {
    /// Stop early and record now instead of at drop.
    pub fn stop(self) {
        drop(self);
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.span.record(self.start.elapsed());
    }
}

/// Latency quantiles attached to a distribution node, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Quantiles {
    /// Median.
    pub p50_nanos: u64,
    /// 95th percentile.
    pub p95_nanos: u64,
    /// 99th percentile.
    pub p99_nanos: u64,
    /// Maximum.
    pub max_nanos: u64,
    /// Samples the bounded quantile window had evicted when the snapshot was
    /// taken. Non-zero means p50/p95/p99 describe only the most recent tail
    /// of the distribution; the JSON and table renderers flag this.
    pub window_dropped: u64,
}

/// A frozen span tree: one node's accumulated wall time, invocation count
/// and children. Fields are public so downstream layers can graft extra
/// nodes (e.g. histogram snapshots from the runtime) before serializing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageProfile {
    /// Stage name (path segment; unique among its siblings).
    pub name: String,
    /// Accumulated time in nanoseconds. Wall time for sequential nodes,
    /// CPU-time summed across workers for parallel nodes.
    pub wall_nanos: u64,
    /// Invocation count.
    pub count: u64,
    /// Whether this node was recorded from worker threads (see module docs).
    pub parallel: bool,
    /// p50/p95/p99/max when the node kept a distribution.
    pub quantiles: Option<Quantiles>,
    /// Child stages in first-recorded order.
    pub children: Vec<StageProfile>,
}

impl StageProfile {
    /// An empty sequential node (useful as a synthesized attachment point).
    pub fn new(name: &str) -> Self {
        StageProfile {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// A childless sequential node with a fixed wall time and count.
    pub fn leaf(name: &str, wall: Duration, count: u64) -> Self {
        StageProfile {
            name: name.to_string(),
            wall_nanos: wall.as_nanos().min(u64::MAX as u128) as u64,
            count,
            ..Default::default()
        }
    }

    /// Accumulated time as a [`Duration`].
    pub fn wall(&self) -> Duration {
        Duration::from_nanos(self.wall_nanos)
    }

    /// Direct child by name.
    pub fn child(&self, name: &str) -> Option<&StageProfile> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Descendant by `/`-separated path relative to this node, e.g.
    /// `"features/criteria_llm"`.
    pub fn find(&self, path: &str) -> Option<&StageProfile> {
        let mut node = self;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            node = node.child(seg)?;
        }
        Some(node)
    }

    /// Sum of the wall times of this node's **sequential** direct children —
    /// the portion of this node's wall the tree accounts for.
    pub fn sequential_child_nanos(&self) -> u64 {
        self.children
            .iter()
            .filter(|c| !c.parallel)
            .map(|c| c.wall_nanos)
            .sum()
    }

    /// Fraction of this node's wall time covered by its sequential children
    /// (1.0 when it has none, or when its own wall is zero). The tier-1
    /// bench asserts this is ≥ 0.9 at the root: no untracked time silently
    /// appearing between stages.
    pub fn coverage(&self) -> f64 {
        if self.children.iter().all(|c| c.parallel) {
            return 1.0;
        }
        if self.wall_nanos == 0 {
            return 1.0;
        }
        self.sequential_child_nanos() as f64 / self.wall_nanos as f64
    }

    /// The accounting invariant, checked recursively over sequential nodes:
    /// every node's sequential children are timed as disjoint sub-intervals
    /// of the node's own interval, so their sum must not exceed the node's
    /// wall time (beyond a 1ms + 0.1% slack for clock-read placement).
    /// Parallel subtrees are skipped — their totals are CPU-time.
    pub fn accounting_ok(&self) -> bool {
        if self.parallel {
            return true;
        }
        let budget = self.wall_nanos + self.wall_nanos / 1000 + 1_000_000;
        self.sequential_child_nanos() <= budget && self.children.iter().all(|c| c.accounting_ok())
    }

    /// Serialize as hand-rolled JSON in the bench-ledger style: times as
    /// fractional milliseconds, children nested, quantiles inlined when
    /// present. Deterministic for a given tree.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"wall_ms\": {}, \"count\": {}, \"parallel\": {}",
            escape_json(&self.name),
            fmt_ms(self.wall_nanos),
            self.count,
            self.parallel
        ));
        if let Some(q) = &self.quantiles {
            out.push_str(&format!(
                ", \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \"max_ms\": {}",
                fmt_ms(q.p50_nanos),
                fmt_ms(q.p95_nanos),
                fmt_ms(q.p99_nanos),
                fmt_ms(q.max_nanos)
            ));
            if q.window_dropped > 0 {
                // Truncated-window honesty: the quantiles above were computed
                // from the most recent samples only.
                out.push_str(&format!(", \"window_dropped\": {}", q.window_dropped));
            }
        }
        if !self.children.is_empty() {
            out.push_str(", \"children\": [");
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                c.write_json(out);
            }
            out.push(']');
        }
        out.push('}');
    }

    /// Render an aligned, human-readable breakdown table. Percentages are of
    /// the root's wall time; parallel nodes are marked `∥` (their totals are
    /// CPU-time across workers, so the percentage can exceed 100).
    pub fn render_table(&self) -> String {
        let mut rows: Vec<(String, String, String, String, String)> = vec![(
            "stage".to_string(),
            "wall ms".to_string(),
            "% root".to_string(),
            "count".to_string(),
            "p50/p95/p99 ms".to_string(),
        )];
        self.table_rows(0, self.wall_nanos.max(1), &mut rows);
        let mut widths = [0usize; 5];
        for row in &rows {
            let cols = [&row.0, &row.1, &row.2, &row.3, &row.4];
            for (w, c) in widths.iter_mut().zip(cols) {
                *w = (*w).max(c.chars().count());
            }
        }
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            out.push_str(&format!(
                "{:<w0$}  {:>w1$}  {:>w2$}  {:>w3$}  {:<w4$}\n",
                row.0,
                row.1,
                row.2,
                row.3,
                row.4,
                w0 = widths[0],
                w1 = widths[1],
                w2 = widths[2],
                w3 = widths[3],
                w4 = widths[4],
            ));
            if i == 0 {
                let total: usize = widths.iter().sum::<usize>() + 8;
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }

    fn table_rows(
        &self,
        depth: usize,
        root_nanos: u64,
        rows: &mut Vec<(String, String, String, String, String)>,
    ) {
        let marker = if self.parallel { " ∥" } else { "" };
        let name = format!("{}{}{}", "  ".repeat(depth), self.name, marker);
        let pct = format!("{:.1}", self.wall_nanos as f64 * 100.0 / root_nanos as f64);
        let quant = match &self.quantiles {
            // `~` marks quantiles computed from a truncated sample window
            // (only the most recent samples survived).
            Some(q) => format!(
                "{}{}/{}/{}",
                if q.window_dropped > 0 { "~" } else { "" },
                fmt_ms(q.p50_nanos),
                fmt_ms(q.p95_nanos),
                fmt_ms(q.p99_nanos)
            ),
            None => String::new(),
        };
        rows.push((
            name,
            fmt_ms(self.wall_nanos),
            pct,
            self.count.to_string(),
            quant,
        ));
        for c in &self.children {
            c.table_rows(depth + 1, root_nanos, rows);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_accumulate_by_name() {
        let p = Profiler::new("detect");
        let root = p.root();
        root.child("features").record(Duration::from_millis(5));
        root.child("features").record(Duration::from_millis(7));
        root.child("sampling").record(Duration::from_millis(3));
        let s = p.snapshot();
        assert_eq!(s.children.len(), 2);
        let f = s.child("features").unwrap();
        assert_eq!(f.count, 2);
        assert_eq!(f.wall_nanos, 12_000_000);
        // Insertion order preserved.
        assert_eq!(s.children[0].name, "features");
        assert_eq!(s.children[1].name, "sampling");
    }

    #[test]
    fn timer_records_on_drop_and_time_wraps() {
        let p = Profiler::new("r");
        let span = p.root().child("work");
        {
            let _t = span.timer();
        }
        let out = span.time(|| 42);
        assert_eq!(out, 42);
        assert_eq!(p.snapshot().child("work").unwrap().count, 2);
    }

    #[test]
    fn find_walks_paths() {
        let p = Profiler::new("root");
        p.root()
            .child("a")
            .child("b")
            .record(Duration::from_millis(1));
        let s = p.snapshot();
        assert!(s.find("a/b").is_some());
        assert!(s.find("a/missing").is_none());
        assert_eq!(s.find("").unwrap().name, "root");
    }

    #[test]
    fn coverage_and_accounting() {
        let mut root = StageProfile::leaf("detect", Duration::from_millis(100), 1);
        root.children
            .push(StageProfile::leaf("a", Duration::from_millis(60), 1));
        root.children
            .push(StageProfile::leaf("b", Duration::from_millis(35), 1));
        let mut par = StageProfile::leaf("workers", Duration::from_millis(500), 8);
        par.parallel = true;
        root.children.push(par);
        assert!((root.coverage() - 0.95).abs() < 1e-9);
        assert!(root.accounting_ok());
        // Sequential children exceeding the parent breaks the invariant.
        root.children
            .push(StageProfile::leaf("c", Duration::from_millis(50), 1));
        assert!(!root.accounting_ok());
    }

    #[test]
    fn dist_child_carries_quantiles() {
        let p = Profiler::new("root");
        let d = p.root().child_dist("llm");
        for ms in 1..=100u64 {
            d.record(Duration::from_millis(ms));
        }
        let q = p.snapshot().child("llm").unwrap().quantiles.unwrap();
        assert_eq!(q.p50_nanos, 50_000_000);
        assert_eq!(q.p99_nanos, 99_000_000);
        assert_eq!(q.max_nanos, 100_000_000);
    }

    #[test]
    fn json_and_table_render() {
        let mut root = StageProfile::leaf("detect", Duration::from_millis(10), 1);
        root.children
            .push(StageProfile::leaf("features", Duration::from_millis(8), 1));
        let json = root.to_json();
        assert!(json.contains("\"name\": \"detect\""));
        assert!(json.contains("\"wall_ms\": 10.000"));
        assert!(json.contains("\"children\": ["));
        let table = root.render_table();
        assert!(table.contains("detect"));
        assert!(table.contains("  features"));
    }
}
