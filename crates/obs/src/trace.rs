//! Per-request causal tracing: deterministic trace ids, a bounded
//! flight-recorder ring of typed lifecycle events, a causality checker and
//! two exporters (JSONL journal, Chrome trace-event format).
//!
//! The aggregate profiler ([`crate::Profiler`]) answers *"where does wall
//! time go?"*; this module answers *"what happened to this request?"*. Every
//! serving-stack layer emits [`TraceEvent`]s into one per-run
//! [`TraceRecorder`]: the scheduler's submit/start/end, the response cache's
//! hit/miss/coalesce/park/publish, the router's primary selection, failover,
//! fault, breaker and hedge decisions, the repair ladder's
//! mangled/salvaged/re-asked/defaulted steps, and the store's
//! persist/preload.
//!
//! Three properties make the journal trustworthy:
//!
//! * **Deterministic identity** — a [`TraceId`] is a pure function of the
//!   128-bit request key and a run nonce ([`TraceId::from_key`]), so the
//!   same logical request carries the same id across execution modes
//!   (sequential / concurrent / routed / warm) and across the layers that
//!   see the key at different times (cache adapter, store writer thread).
//! * **Exact accounting under bounded memory** — the ring ([`EventRing`])
//!   holds a fixed number of events and drops oldest-first, but per-kind
//!   counts are atomics updated on *every* emit, and the drop count is
//!   exact: `recorded == ring.len() + dropped` always. Reconciliation
//!   against `CacheStats` / `RouterStats` / `RepairCounters` therefore never
//!   degrades when the ring wraps.
//! * **Checkable causality** — [`check_causality`] verifies the event
//!   stream's well-formedness (no execute-before-submit, terminal task event
//!   exactly once, every cache publish preceded by its miss, hedges resolved
//!   before their request completes, repair ladders that balance).
//!
//! Cross-layer correlation uses a thread-local *request scope*: the cache
//! adapter (the single choke point every LLM request passes through) installs
//! the recorder + trace id with [`request_scope`]; layers below it either
//! emit through [`emit_current`] (the shared cache, which must attribute
//! events only to calls made under a scope) or hold their own recorder handle
//! and stamp [`current_id`] (repair ladder, router, scheduler workers).

use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{escape_json, fmt_ms};

/// splitmix64 finaliser: the avalanche both lanes of the runtime's
/// `RequestKey` already use, reimplemented locally so `zeroed-obs` stays
/// dependency-free.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Identity of one logical request (or scheduler task) inside a traced run.
///
/// Ids are deterministic — [`TraceId::from_key`] over the same key and nonce
/// always yields the same id — and never zero for a real request:
/// [`TraceId::NONE`] marks events emitted outside any request scope (the
/// sequential oracle path, run-scoped events like the store preload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The "no request scope" id (sequential-path repair events, run-scoped
    /// events). Grouped but exempt from per-request causality checks that
    /// assume a single logical request.
    pub const NONE: TraceId = TraceId(0);

    /// Mint the id for a logical request from its 128-bit content-addressed
    /// key and the run nonce. Pure and collision-resistant: both key words
    /// are folded through a splitmix64 avalanche, and 0 (reserved for
    /// [`TraceId::NONE`]) is remapped.
    pub fn from_key(key: u128, nonce: u64) -> TraceId {
        let folded = (key >> 64) as u64 ^ (key as u64).rotate_left(32);
        let x = mix64(folded ^ mix64(nonce ^ 0x7265715f74726163)); // "req_trac"
        TraceId(x.max(1))
    }

    /// Mint the id for one scheduler task: `fanout` numbers the `run()`
    /// fan-out within the run, `task` the task index within it.
    pub fn for_task(nonce: u64, fanout: u64, task: u64) -> TraceId {
        let x = mix64(((fanout << 32) | task).wrapping_add(mix64(nonce ^ 0x7461736b5f747261))); // "task_tra"
        TraceId(x.max(1))
    }

    /// The raw 64-bit value (0 for [`TraceId::NONE`]).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is the out-of-scope marker.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// The typed request-lifecycle event taxonomy. Fieldless with fixed
/// discriminants so per-kind counters can live in a flat array and the
/// serialized names stay stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Scheduler: task handed to the queue (or started inline).
    TaskSubmit = 0,
    /// Scheduler: a worker dequeued the task and began executing.
    TaskStart = 1,
    /// Scheduler: the task finished (terminal, exactly once per task).
    TaskEnd = 2,
    /// Cache: lookup answered from a ready slot (includes coalesced hits).
    CacheHit = 3,
    /// Cache: the hit coalesced onto an in-flight identical request
    /// (always paired with a [`EventKind::CacheHit`] on the same trace).
    CacheCoalesced = 4,
    /// Cache: lookup missed; this caller computes the response.
    CacheMiss = 5,
    /// Cache: the computed response was published to the slot (pairs with
    /// the preceding [`EventKind::CacheMiss`] on the same trace).
    CachePublish = 6,
    /// Cache: a waiter parked on an in-flight slot (`arg` = park nanos).
    CacheParkWait = 7,
    /// Router: primary backend selected (`arg` = backend index).
    RouterPrimary = 8,
    /// Router: failover skipped an unhealthy backend (`arg` = skipped index).
    RouterFailover = 9,
    /// Router: a scheduled fault fired on a probed backend (`arg` = index).
    FaultInjected = 10,
    /// Router: a circuit breaker opened (`arg` = backend index).
    BreakerTrip = 11,
    /// Router: a half-open breaker admitted a probe (`arg` = backend index).
    BreakerProbe = 12,
    /// Router: a hedge fired against a second backend (`arg` = hedge index).
    HedgeFired = 13,
    /// Router: the hedge lost the race and was cancelled (`arg` = loser).
    HedgeCancelled = 14,
    /// Router: the hedge won the race (`arg` = winning backend index).
    HedgeWon = 15,
    /// Router: the routed call completed (terminal per `route()` call).
    RouterDone = 16,
    /// Repair: validation rejected a response; the ladder engaged.
    RepairMangled = 17,
    /// Repair: structural salvage recovered the response.
    RepairSalvaged = 18,
    /// Repair: a re-ask round-trip recovered the response (`arg` = attempt).
    RepairReasked = 19,
    /// Repair: the ladder exhausted and the stage default was used.
    RepairDefaulted = 20,
    /// Store: one record written through to disk by the background writer.
    StorePersist = 21,
    /// Store: run-scoped preload marker (`arg` = records preloaded).
    StorePreload = 22,
}

impl EventKind {
    /// Number of kinds (the per-kind counter array length).
    pub const COUNT: usize = 23;

    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; EventKind::COUNT] = [
        EventKind::TaskSubmit,
        EventKind::TaskStart,
        EventKind::TaskEnd,
        EventKind::CacheHit,
        EventKind::CacheCoalesced,
        EventKind::CacheMiss,
        EventKind::CachePublish,
        EventKind::CacheParkWait,
        EventKind::RouterPrimary,
        EventKind::RouterFailover,
        EventKind::FaultInjected,
        EventKind::BreakerTrip,
        EventKind::BreakerProbe,
        EventKind::HedgeFired,
        EventKind::HedgeCancelled,
        EventKind::HedgeWon,
        EventKind::RouterDone,
        EventKind::RepairMangled,
        EventKind::RepairSalvaged,
        EventKind::RepairReasked,
        EventKind::RepairDefaulted,
        EventKind::StorePersist,
        EventKind::StorePreload,
    ];

    /// Position in the per-kind counter array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used by both exporters and the ledger.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TaskSubmit => "task_submit",
            EventKind::TaskStart => "task_start",
            EventKind::TaskEnd => "task_end",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheCoalesced => "cache_coalesced",
            EventKind::CacheMiss => "cache_miss",
            EventKind::CachePublish => "cache_publish",
            EventKind::CacheParkWait => "cache_park_wait",
            EventKind::RouterPrimary => "router_primary",
            EventKind::RouterFailover => "router_failover",
            EventKind::FaultInjected => "fault_injected",
            EventKind::BreakerTrip => "breaker_trip",
            EventKind::BreakerProbe => "breaker_probe",
            EventKind::HedgeFired => "hedge_fired",
            EventKind::HedgeCancelled => "hedge_cancelled",
            EventKind::HedgeWon => "hedge_won",
            EventKind::RouterDone => "router_done",
            EventKind::RepairMangled => "repair_mangled",
            EventKind::RepairSalvaged => "repair_salvaged",
            EventKind::RepairReasked => "repair_reasked",
            EventKind::RepairDefaulted => "repair_defaulted",
            EventKind::StorePersist => "store_persist",
            EventKind::StorePreload => "store_preload",
        }
    }
}

/// One journal entry: when (nanos since the recorder's epoch), which logical
/// request, what happened, and one kind-specific argument word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the owning recorder's epoch.
    pub t_nanos: u64,
    /// The logical request (or task) this event belongs to.
    pub trace: TraceId,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific argument (backend index, park nanos, preload count, …).
    pub arg: u64,
}

/// Fixed-capacity drop-oldest event ring. The drop count is exact: every
/// overwritten event increments it, so `pushed == len() + dropped()` holds
/// at all times.
#[derive(Debug)]
pub struct EventRing {
    cap: usize,
    buf: Vec<TraceEvent>,
    next: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `cap` events (`cap` clamped to at least 1).
    pub fn new(cap: usize) -> Self {
        EventRing {
            cap: cap.max(1),
            buf: Vec::new(),
            next: 0,
            dropped: 0,
        }
    }

    /// Append one event, evicting the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.dropped += 1;
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Exact number of events evicted by overwrites.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The surviving events, oldest first.
    pub fn ordered(&self) -> Vec<TraceEvent> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }
}

/// The per-run flight recorder: a shared epoch, exact per-kind atomic
/// counters and the bounded [`EventRing`] under a short mutex. Emitting is
/// one `Instant` read, one relaxed atomic add and one short lock — the same
/// cost class as a [`crate::Histogram`] record, cheap enough to leave on.
#[derive(Debug)]
pub struct TraceRecorder {
    nonce: u64,
    epoch: Instant,
    counts: [AtomicU64; EventKind::COUNT],
    ring: Mutex<EventRing>,
}

impl TraceRecorder {
    /// Default ring capacity: 2¹⁷ events (≈4 MiB) — comfortably above a
    /// full 50k-row detection's event volume, so quick and ledger runs
    /// journal without drops while worst-case memory stays bounded.
    pub const DEFAULT_CAPACITY: usize = 1 << 17;

    /// A recorder with the default ring capacity. The nonce seeds every
    /// [`TraceId`] minted for this run.
    pub fn new(nonce: u64) -> Arc<Self> {
        Self::with_capacity(nonce, Self::DEFAULT_CAPACITY)
    }

    /// A recorder with an explicit ring capacity (clamped to at least 1).
    pub fn with_capacity(nonce: u64, capacity: usize) -> Arc<Self> {
        Arc::new(TraceRecorder {
            nonce,
            epoch: Instant::now(),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            ring: Mutex::new(EventRing::new(capacity)),
        })
    }

    /// The run nonce ids are derived from.
    pub fn nonce(&self) -> u64 {
        self.nonce
    }

    /// [`TraceId::from_key`] with this recorder's nonce.
    pub fn trace_for_key(&self, key: u128) -> TraceId {
        TraceId::from_key(key, self.nonce)
    }

    /// Record one event. Never blocks beyond the short ring lock; the
    /// per-kind count is updated even when the ring evicts.
    pub fn emit(&self, trace: TraceId, kind: EventKind, arg: u64) {
        let t_nanos = self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.counts[kind.index()].fetch_add(1, Ordering::Relaxed);
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(TraceEvent {
                t_nanos,
                trace,
                kind,
                arg,
            });
    }

    /// Exact lifetime count of events of `kind` (not bounded by the ring).
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()].load(Ordering::Relaxed)
    }

    /// Exact number of events the ring evicted.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).dropped()
    }

    /// The surviving events in timestamp order. Timestamps are read before
    /// the ring lock is taken, so two racing writers can land in the ring
    /// out of time order; the stable re-sort here restores the real-time
    /// order (ties keep insertion order, which for same-thread emissions is
    /// causal order).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut events = self.ring.lock().unwrap_or_else(|e| e.into_inner()).ordered();
        events.sort_by_key(|e| e.t_nanos);
        events
    }

    /// Freeze the recorder into a [`TraceSummary`] carrying the surviving
    /// events, exact per-kind counts, the drop count and the
    /// `max_exemplars` slowest request-rooted traces.
    pub fn summary(&self, max_exemplars: usize) -> TraceSummary {
        let events = self.events();
        let exemplars = build_exemplars(&events, max_exemplars);
        TraceSummary {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            dropped_events: self.dropped(),
            events,
            exemplars,
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<TraceRecorder>, TraceId)>> = const { RefCell::new(None) };
}

/// RAII guard installing a request scope on the current thread (see
/// [`request_scope`]). Restores the previous scope on drop, so nested
/// resolves (re-asks through the cache) stay correctly attributed.
#[derive(Debug)]
pub struct TraceScope {
    prev: Option<(Arc<TraceRecorder>, TraceId)>,
    // Thread-local restore must happen on the installing thread.
    _not_send: PhantomData<*const ()>,
}

/// Install `(recorder, id)` as the current thread's request scope. The cache
/// adapter calls this at its resolve choke point; everything below it on the
/// same thread attributes events to `id` via [`emit_current`] /
/// [`current_id`].
pub fn request_scope(recorder: &Arc<TraceRecorder>, id: TraceId) -> TraceScope {
    let prev = CURRENT.with(|c| c.borrow_mut().replace((Arc::clone(recorder), id)));
    TraceScope {
        prev,
        _not_send: PhantomData,
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Emit through the current thread's request scope; a no-op when no scope is
/// installed. This is how shared long-lived components (the response cache)
/// attribute events only to calls made under a scope.
pub fn emit_current(kind: EventKind, arg: u64) {
    CURRENT.with(|c| {
        if let Some((rec, id)) = c.borrow().as_ref() {
            rec.emit(*id, kind, arg);
        }
    });
}

/// The current thread's request id, or [`TraceId::NONE`] outside any scope.
/// Components that hold their own recorder handle (repair ladder, router)
/// use this to stamp their events.
pub fn current_id() -> TraceId {
    CURRENT.with(|c| c.borrow().as_ref().map_or(TraceId::NONE, |(_, id)| *id))
}

/// One of the slowest request-rooted traces of a run: the events of a single
/// [`TraceId`], oldest first, with the trace's observed begin/end times.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceExemplar {
    /// The request this trace belongs to.
    pub trace: TraceId,
    /// First event time (nanos since the recorder epoch).
    pub begin_nanos: u64,
    /// Last event time (nanos since the recorder epoch).
    pub end_nanos: u64,
    /// The trace's events, oldest first.
    pub events: Vec<TraceEvent>,
}

impl TraceExemplar {
    /// Observed first-to-last-event span.
    pub fn span_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.begin_nanos)
    }
}

fn build_exemplars(events: &[TraceEvent], max: usize) -> Vec<TraceExemplar> {
    if max == 0 {
        return Vec::new();
    }
    let mut by_trace: HashMap<u64, TraceExemplar> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for ev in events {
        if ev.trace.is_none() {
            continue;
        }
        let entry = by_trace.entry(ev.trace.raw()).or_insert_with(|| {
            order.push(ev.trace.raw());
            TraceExemplar {
                trace: ev.trace,
                begin_nanos: ev.t_nanos,
                end_nanos: ev.t_nanos,
                events: Vec::new(),
            }
        });
        entry.begin_nanos = entry.begin_nanos.min(ev.t_nanos);
        entry.end_nanos = entry.end_nanos.max(ev.t_nanos);
        entry.events.push(*ev);
    }
    // Request-rooted only: traces that are purely scheduler tasks are the
    // aggregate profiler's business, not per-request exemplars.
    let task_only = |ex: &TraceExemplar| {
        ex.events.iter().all(|e| {
            matches!(
                e.kind,
                EventKind::TaskSubmit | EventKind::TaskStart | EventKind::TaskEnd
            )
        })
    };
    let mut out: Vec<TraceExemplar> = order
        .into_iter()
        .filter_map(|raw| by_trace.remove(&raw))
        .filter(|ex| !task_only(ex))
        .collect();
    out.sort_by(|a, b| {
        b.span_nanos()
            .cmp(&a.span_nanos())
            .then(a.trace.raw().cmp(&b.trace.raw()))
    });
    out.truncate(max);
    out
}

/// A frozen flight recorder: the surviving events, exact per-kind counts,
/// the exact drop count and the slowest request-rooted traces. Surfaced per
/// run as `PipelineStats::trace`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Exact lifetime event counts, indexed by [`EventKind::index`] —
    /// unaffected by ring eviction.
    pub counts: [u64; EventKind::COUNT],
    /// Exact number of events the ring evicted (0 on a well-sized run).
    pub dropped_events: u64,
    /// The surviving events, oldest first (`recorded − dropped` of them).
    pub events: Vec<TraceEvent>,
    /// The slowest request-rooted traces, slowest first.
    pub exemplars: Vec<TraceExemplar>,
}

impl Default for TraceSummary {
    fn default() -> Self {
        TraceSummary {
            counts: [0; EventKind::COUNT],
            dropped_events: 0,
            events: Vec::new(),
            exemplars: Vec::new(),
        }
    }
}

impl TraceSummary {
    /// Exact lifetime count of events of `kind`.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Exact total events recorded (survivors + dropped).
    pub fn recorded(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Verify the journal end to end: the ring must not have dropped (else
    /// the event stream is incomplete and order checks would be vacuous),
    /// the per-kind counters must equal the surviving stream's counts, and
    /// [`check_causality`] must pass.
    pub fn verify(&self) -> Result<(), String> {
        if self.dropped_events > 0 {
            return Err(format!(
                "ring dropped {} events; causality can only be checked on a complete journal",
                self.dropped_events
            ));
        }
        let mut seen = [0u64; EventKind::COUNT];
        for ev in &self.events {
            seen[ev.kind.index()] += 1;
        }
        for kind in EventKind::ALL {
            if seen[kind.index()] != self.counts[kind.index()] {
                return Err(format!(
                    "{}: counter says {} but the journal holds {}",
                    kind.name(),
                    self.counts[kind.index()],
                    seen[kind.index()]
                ));
            }
        }
        check_causality(&self.events)
    }

    /// Hand-rolled JSON for the bench ledger: totals, drop count, non-zero
    /// per-kind counts and a per-exemplar digest (no raw event dump — the
    /// exporters cover that).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"events\": {}, \"dropped\": {}, \"kinds\": {{",
            self.recorded(),
            self.dropped_events
        ));
        let mut first = true;
        for kind in EventKind::ALL {
            let n = self.count(kind);
            if n == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{}\": {}", kind.name(), n));
        }
        out.push_str("}, \"exemplars\": [");
        for (i, ex) in self.exemplars.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"trace\": \"0x{:016x}\", \"span_ms\": {}, \"events\": {}}}",
                ex.trace.raw(),
                fmt_ms(ex.span_nanos()),
                ex.events.len()
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Check the causal well-formedness of a complete event stream (events in
/// emission order, no drops). Per trace id, in order:
///
/// * **tasks** — no start before its submit, no end before its start, and
///   for any trace containing task events, submit/start/end each exactly
///   once (the terminal event cannot repeat);
/// * **cache** — every publish is preceded by a matching miss
///   (prefix-wise `publishes ≤ misses`) and totals balance exactly; a
///   coalesced marker never outnumbers hits;
/// * **hedges** — resolutions never outnumber fires prefix-wise, every
///   `route()` completion has its hedge resolved (`fired == won +
///   cancelled` at each [`EventKind::RouterDone`] and at end of trace — a
///   hedge-cancel after completion is therefore caught);
/// * **repair** — ladder outcomes never outnumber engagements prefix-wise
///   and balance exactly at end of trace
///   (`mangled == salvaged + reasked + defaulted`).
///
/// [`TraceId::NONE`] groups events emitted outside any request scope (the
/// sequential path); it is checked with the same aggregate rules except the
/// task exactly-once rule, which presumes a single logical task.
pub fn check_causality(events: &[TraceEvent]) -> Result<(), String> {
    #[derive(Default)]
    struct PerTrace {
        submit: u64,
        start: u64,
        end: u64,
        hit: u64,
        coalesced: u64,
        miss: u64,
        publish: u64,
        fired: u64,
        cancelled: u64,
        won: u64,
        mangled: u64,
        salvaged: u64,
        reasked: u64,
        defaulted: u64,
    }
    let mut traces: HashMap<u64, PerTrace> = HashMap::new();
    let fail = |trace: u64, msg: &str| -> Result<(), String> {
        Err(format!("trace 0x{trace:016x}: {msg}"))
    };
    for ev in events {
        let raw = ev.trace.raw();
        let t = traces.entry(raw).or_default();
        match ev.kind {
            EventKind::TaskSubmit => t.submit += 1,
            EventKind::TaskStart => {
                t.start += 1;
                if t.start > t.submit {
                    return fail(raw, "task started before it was submitted");
                }
            }
            EventKind::TaskEnd => {
                t.end += 1;
                if t.end > t.start {
                    return fail(raw, "task ended before it started");
                }
            }
            EventKind::CacheHit => t.hit += 1,
            EventKind::CacheCoalesced => {
                t.coalesced += 1;
                if t.coalesced > t.hit {
                    return fail(raw, "coalesced marker without a preceding cache hit");
                }
            }
            EventKind::CacheMiss => t.miss += 1,
            EventKind::CachePublish => {
                t.publish += 1;
                if t.publish > t.miss {
                    return fail(raw, "cache publish without a preceding miss");
                }
            }
            EventKind::HedgeFired => t.fired += 1,
            EventKind::HedgeCancelled => {
                t.cancelled += 1;
                if t.cancelled + t.won > t.fired {
                    return fail(raw, "hedge cancelled that was never fired");
                }
            }
            EventKind::HedgeWon => {
                t.won += 1;
                if t.cancelled + t.won > t.fired {
                    return fail(raw, "hedge won that was never fired");
                }
            }
            EventKind::RouterDone => {
                if t.fired != t.cancelled + t.won {
                    return fail(raw, "request completed with an unresolved hedge");
                }
            }
            EventKind::RepairMangled => t.mangled += 1,
            EventKind::RepairSalvaged => {
                t.salvaged += 1;
                if t.salvaged + t.reasked + t.defaulted > t.mangled {
                    return fail(raw, "repair outcome without a mangled response");
                }
            }
            EventKind::RepairReasked => {
                t.reasked += 1;
                if t.salvaged + t.reasked + t.defaulted > t.mangled {
                    return fail(raw, "repair outcome without a mangled response");
                }
            }
            EventKind::RepairDefaulted => {
                t.defaulted += 1;
                if t.salvaged + t.reasked + t.defaulted > t.mangled {
                    return fail(raw, "repair outcome without a mangled response");
                }
            }
            EventKind::CacheParkWait
            | EventKind::RouterPrimary
            | EventKind::RouterFailover
            | EventKind::FaultInjected
            | EventKind::BreakerTrip
            | EventKind::BreakerProbe
            | EventKind::StorePersist
            | EventKind::StorePreload => {}
        }
    }
    for (raw, t) in &traces {
        let has_task = t.submit + t.start + t.end > 0;
        if has_task && *raw != 0 && (t.submit != 1 || t.start != 1 || t.end != 1) {
            return fail(
                *raw,
                "a task trace must submit, start and end exactly once",
            );
        }
        if has_task && *raw == 0 && (t.start > t.submit || t.end > t.start) {
            return fail(*raw, "unscoped task events out of order");
        }
        if t.publish != t.miss {
            return fail(*raw, "cache publishes do not balance misses");
        }
        if t.fired != t.cancelled + t.won {
            return fail(*raw, "trace ended with an unresolved hedge");
        }
        if t.mangled != t.salvaged + t.reasked + t.defaulted {
            return fail(*raw, "repair ladder does not balance");
        }
    }
    Ok(())
}

/// Export events as a JSONL journal: one object per line, in stream order.
pub fn journal_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&format!(
            "{{\"t_ns\": {}, \"trace\": \"0x{:016x}\", \"kind\": \"{}\", \"arg\": {}}}\n",
            ev.t_nanos,
            ev.trace.raw(),
            escape_json(ev.kind.name()),
            ev.arg
        ));
    }
    out
}

/// The span pairs the Chrome exporter reconstructs: a close kind, its
/// matching open kind and the span name.
const CHROME_PAIRS: [(EventKind, EventKind, &str); 3] = [
    (EventKind::TaskStart, EventKind::TaskSubmit, "task_queue"),
    (EventKind::TaskEnd, EventKind::TaskStart, "task_execute"),
    (EventKind::CachePublish, EventKind::CacheMiss, "cache_compute"),
];

fn chrome_open_kind(kind: EventKind) -> bool {
    CHROME_PAIRS.iter().any(|&(_, open, _)| open == kind)
}

fn chrome_close_pair(kind: EventKind) -> Option<(EventKind, &'static str)> {
    CHROME_PAIRS
        .iter()
        .find(|&&(close, _, _)| close == kind)
        .map(|&(_, open, name)| (open, name))
}

/// Export events in Chrome trace-event format (a JSON array loadable by
/// `chrome://tracing` and Perfetto). Paired events — task submit→start,
/// start→end, cache miss→publish — become complete (`"ph": "X"`) spans at
/// the open event's position; everything else becomes an instant
/// (`"ph": "i"`). `pid` is always 1; `tid` is the trace id's low 32 bits so
/// one request's lifecycle lands on one track. Timestamps are microseconds
/// with nanosecond precision. Deterministic for a given event stream.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    // Match close events to the most recent unmatched open of their pair
    // kind within the same trace.
    let mut open_stacks: HashMap<(u64, u8), Vec<usize>> = HashMap::new();
    let mut span_close: Vec<Option<(usize, &'static str)>> = vec![None; events.len()];
    let mut consumed: Vec<bool> = vec![false; events.len()];
    for (i, ev) in events.iter().enumerate() {
        if let Some((open_kind, name)) = chrome_close_pair(ev.kind) {
            if let Some(oi) = open_stacks
                .get_mut(&(ev.trace.raw(), open_kind as u8))
                .and_then(|s| s.pop())
            {
                span_close[oi] = Some((i, name));
                consumed[oi] = true;
                consumed[i] = true;
            }
        }
        if chrome_open_kind(ev.kind) {
            open_stacks
                .entry((ev.trace.raw(), ev.kind as u8))
                .or_default()
                .push(i);
        }
    }
    let us = |nanos: u64| format!("{:.3}", nanos as f64 / 1e3);
    let mut entries: Vec<String> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let tid = ev.trace.raw() & 0xffff_ffff;
        let args = format!(
            "\"args\": {{\"trace\": \"0x{:016x}\", \"arg\": {}}}",
            ev.trace.raw(),
            ev.arg
        );
        if let Some((ci, name)) = span_close[i] {
            entries.push(format!(
                "{{\"name\": \"{}\", \"cat\": \"zeroed\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}, {}}}",
                name,
                us(ev.t_nanos),
                us(events[ci].t_nanos.saturating_sub(ev.t_nanos)),
                tid,
                args
            ));
        } else if !consumed[i] {
            entries.push(format!(
                "{{\"name\": \"{}\", \"cat\": \"zeroed\", \"ph\": \"i\", \"ts\": {}, \"s\": \"t\", \"pid\": 1, \"tid\": {}, {}}}",
                ev.kind.name(),
                us(ev.t_nanos),
                tid,
                args
            ));
        }
    }
    let mut out = String::from("[\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, trace: TraceId, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t_nanos: t,
            trace,
            kind,
            arg: 0,
        }
    }

    #[test]
    fn trace_ids_are_deterministic_and_nonce_scoped() {
        let a = TraceId::from_key(42, 7);
        assert_eq!(a, TraceId::from_key(42, 7));
        assert_ne!(a, TraceId::from_key(42, 8));
        assert_ne!(a, TraceId::from_key(43, 7));
        assert!(!a.is_none());
        let t = TraceId::for_task(7, 0, 0);
        assert_eq!(t, TraceId::for_task(7, 0, 0));
        assert_ne!(t, TraceId::for_task(7, 0, 1));
        assert_ne!(t, TraceId::for_task(7, 1, 0));
    }

    #[test]
    fn ring_drops_oldest_with_exact_accounting() {
        let mut ring = EventRing::new(4);
        for i in 0..10u64 {
            ring.push(ev(i, TraceId::NONE, EventKind::CacheHit));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let kept: Vec<u64> = ring.ordered().iter().map(|e| e.t_nanos).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn recorder_counts_survive_ring_eviction() {
        let rec = TraceRecorder::with_capacity(1, 8);
        for _ in 0..100 {
            rec.emit(TraceId::NONE, EventKind::CacheMiss, 0);
        }
        assert_eq!(rec.count(EventKind::CacheMiss), 100);
        assert_eq!(rec.dropped(), 92);
        assert_eq!(rec.events().len(), 8);
        let s = rec.summary(3);
        assert_eq!(s.count(EventKind::CacheMiss), 100);
        assert_eq!(s.recorded(), 100);
        assert_eq!(s.dropped_events, 92);
        assert!(s.verify().is_err(), "a dropped journal must not verify");
    }

    #[test]
    fn scope_attributes_and_restores() {
        let rec = TraceRecorder::new(9);
        assert_eq!(current_id(), TraceId::NONE);
        emit_current(EventKind::CacheHit, 0); // no scope: no-op
        let outer = rec.trace_for_key(1);
        let inner = rec.trace_for_key(2);
        {
            let _a = request_scope(&rec, outer);
            assert_eq!(current_id(), outer);
            {
                let _b = request_scope(&rec, inner);
                assert_eq!(current_id(), inner);
                emit_current(EventKind::CacheMiss, 0);
            }
            assert_eq!(current_id(), outer);
        }
        assert_eq!(current_id(), TraceId::NONE);
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trace, inner);
        assert_eq!(rec.count(EventKind::CacheHit), 0);
    }

    #[test]
    fn causality_accepts_a_well_formed_stream() {
        let t = TraceId::from_key(5, 1);
        let task = TraceId::for_task(1, 0, 0);
        let stream = [
            ev(0, task, EventKind::TaskSubmit),
            ev(1, task, EventKind::TaskStart),
            ev(2, t, EventKind::CacheMiss),
            ev(3, t, EventKind::HedgeFired),
            ev(4, t, EventKind::HedgeCancelled),
            ev(5, t, EventKind::RouterDone),
            ev(6, t, EventKind::RepairMangled),
            ev(7, t, EventKind::RepairSalvaged),
            ev(8, t, EventKind::CachePublish),
            ev(9, task, EventKind::TaskEnd),
        ];
        assert!(check_causality(&stream).is_ok());
    }

    #[test]
    fn causality_rejects_malformed_streams() {
        let task = TraceId::for_task(1, 0, 0);
        let t = TraceId::from_key(5, 1);
        // Execute before submit.
        assert!(check_causality(&[ev(0, task, EventKind::TaskStart)]).is_err());
        // Terminal event twice.
        assert!(check_causality(&[
            ev(0, task, EventKind::TaskSubmit),
            ev(1, task, EventKind::TaskStart),
            ev(2, task, EventKind::TaskEnd),
            ev(3, task, EventKind::TaskEnd),
        ])
        .is_err());
        // Publish without a miss.
        assert!(check_causality(&[ev(0, t, EventKind::CachePublish)]).is_err());
        // Hedge cancelled after completion.
        assert!(check_causality(&[
            ev(0, t, EventKind::CacheMiss),
            ev(1, t, EventKind::HedgeFired),
            ev(2, t, EventKind::RouterDone),
            ev(3, t, EventKind::HedgeCancelled),
            ev(4, t, EventKind::CachePublish),
        ])
        .is_err());
        // Repair ladder that does not balance.
        assert!(check_causality(&[ev(0, t, EventKind::RepairMangled)]).is_err());
    }

    #[test]
    fn exemplars_rank_slowest_request_traces() {
        let rec = TraceRecorder::new(3);
        let slow = rec.trace_for_key(1);
        let fast = rec.trace_for_key(2);
        let task = TraceId::for_task(3, 0, 0);
        let stream = [
            ev(0, slow, EventKind::CacheMiss),
            ev(10, fast, EventKind::CacheMiss),
            ev(12, fast, EventKind::CachePublish),
            ev(50, slow, EventKind::CachePublish),
            ev(0, task, EventKind::TaskSubmit),
            ev(1, task, EventKind::TaskStart),
            ev(90, task, EventKind::TaskEnd),
        ];
        let got = build_exemplars(&stream, 2);
        assert_eq!(got.len(), 2, "task-only traces are not exemplars");
        assert_eq!(got[0].trace, slow);
        assert_eq!(got[0].span_nanos(), 50);
        assert_eq!(got[1].trace, fast);
    }

    #[test]
    fn summary_json_lists_nonzero_kinds() {
        let rec = TraceRecorder::new(1);
        rec.emit(rec.trace_for_key(9), EventKind::CacheMiss, 0);
        rec.emit(rec.trace_for_key(9), EventKind::CachePublish, 0);
        let json = rec.summary(5).to_json();
        assert!(json.contains("\"events\": 2"));
        assert!(json.contains("\"cache_miss\": 1"));
        assert!(!json.contains("task_submit"));
        assert!(json.contains("\"exemplars\": ["));
    }

    #[test]
    fn journal_jsonl_is_one_object_per_line() {
        let t = TraceId::from_key(1, 2);
        let out = journal_jsonl(&[ev(5, t, EventKind::CacheHit)]);
        assert_eq!(out.lines().count(), 1);
        assert!(out.starts_with("{\"t_ns\": 5, \"trace\": \"0x"));
        assert!(out.contains("\"kind\": \"cache_hit\""));
    }

    #[test]
    fn chrome_export_pairs_spans_and_instants() {
        let task = TraceId::for_task(1, 0, 0);
        let t = TraceId::from_key(5, 1);
        let stream = [
            ev(1_000, task, EventKind::TaskSubmit),
            ev(2_000, task, EventKind::TaskStart),
            ev(2_500, t, EventKind::CacheHit),
            ev(9_000, task, EventKind::TaskEnd),
        ];
        let out = chrome_trace_json(&stream);
        assert!(out.starts_with("[\n"));
        assert!(out.ends_with("\n]\n"));
        assert!(out.contains("\"name\": \"task_queue\""));
        assert!(out.contains("\"ph\": \"X\", \"ts\": 1.000, \"dur\": 1.000"));
        assert!(out.contains("\"name\": \"task_execute\""));
        assert!(out.contains("\"ts\": 2.000, \"dur\": 7.000"));
        assert!(out.contains("\"name\": \"cache_hit\""));
        assert!(out.contains("\"ph\": \"i\""));
        // Exactly 3 entries: two spans, one instant.
        assert_eq!(out.matches("\"ph\":").count(), 3);
    }
}
