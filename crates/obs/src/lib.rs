//! # zeroed-obs
//!
//! Dependency-free, always-on observability for the ZeroED workspace:
//!
//! * [`Profiler`] / [`Span`] — hierarchical, thread-safe **stage spans**.
//!   A span is a named node in a tree; recording a duration into it is two
//!   atomic adds, and child lookup is a get-or-create by name so repeated
//!   invocations of the same stage accumulate instead of multiplying nodes.
//!   [`Profiler::snapshot`] freezes the tree into a plain [`StageProfile`]
//!   value that serializes to the hand-rolled JSON style the bench emitters
//!   use and renders as a human-readable breakdown table.
//! * [`Histogram`] — fixed log₂-bucket latency histogram with a bounded
//!   sliding window of raw samples for **exact** nearest-rank p50/p95/p99
//!   extraction (`idx = ceil(q·n) − 1` over the sorted window, the same
//!   semantics the router's quantile tests pin).
//! * [`MetricsRegistry`] — named [`Counter`]s and [`Gauge`]s with get-or-create
//!   registration and JSON export.
//! * [`TraceRecorder`] / [`TraceEvent`] — the per-request causal **flight
//!   recorder**: deterministic [`TraceId`]s minted from request keys, a
//!   bounded drop-oldest [`EventRing`] with exact per-kind counts and drop
//!   accounting, a causality checker ([`check_causality`]) and exporters to
//!   a JSONL journal and Chrome trace-event format ([`chrome_trace_json`]).
//!
//! The crate has **no dependencies** (not even the workspace's vendored
//! stubs) so every layer — store, runtime, core, bench — can link it without
//! cycles, and it is cheap enough to leave on unconditionally: a span timer
//! is two `Instant` reads plus two relaxed atomic adds, and a histogram
//! record is three atomic adds plus one short mutex push.
//!
//! ```
//! use zeroed_obs::Profiler;
//! use std::time::Duration;
//!
//! let profiler = Profiler::new("detect");
//! let features = profiler.root().child("features");
//! features.record(Duration::from_millis(12));
//! {
//!     let llm = features.child_dist("criteria_llm");
//!     llm.record(Duration::from_millis(3));
//!     llm.record(Duration::from_millis(5));
//! }
//! let profile = profiler.snapshot();
//! assert_eq!(profile.find("features/criteria_llm").unwrap().count, 2);
//! println!("{}", profile.render_table());
//! ```

mod hist;
mod json;
mod metrics;
mod profile;
mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use json::{escape_json, fmt_ms};
pub use metrics::{Counter, Gauge, MetricsRegistry};
pub use profile::{Profiler, Quantiles, Span, SpanTimer, StageProfile};
pub use trace::{
    check_causality, chrome_trace_json, current_id, emit_current, journal_jsonl, request_scope,
    EventKind, EventRing, TraceEvent, TraceExemplar, TraceId, TraceRecorder, TraceScope,
    TraceSummary,
};
