//! Fixed-bucket latency histograms with exact quantile extraction.
//!
//! A [`Histogram`] keeps two views of the same stream of durations:
//!
//! * **log₂ buckets** — 64 atomic counters indexed by the bit-length of the
//!   sample in nanoseconds. Lock-free, lifetime-exact counts/totals, used for
//!   cheap shape summaries.
//! * **a bounded sliding window of raw samples** — the most recent
//!   `window` samples under a short mutex. Quantiles are computed over a
//!   sorted copy of this window with the nearest-rank rule
//!   `idx = ceil(q·n) − 1`, matching the semantics the router's
//!   `latency_quantile` tests pin (100 samples of 1..=100ms: q0.5 → 50ms,
//!   q0.99 → 99ms, q1.0 → 100ms; empty → 0).

use crate::profile::{Quantiles, StageProfile};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const BUCKETS: usize = 64;

/// A thread-safe latency histogram. Cloneable handles are not provided —
/// share it behind an `Arc` or borrow it; recording takes `&self`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
    window: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    cap: usize,
    buf: Vec<u64>,
    next: usize,
}

impl Ring {
    fn push(&mut self, nanos: u64) {
        if self.buf.len() < self.cap {
            self.buf.push(nanos);
        } else {
            self.buf[self.next] = nanos;
        }
        self.next = (self.next + 1) % self.cap;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Default bound on the raw-sample window (the historical 4096-sample
    /// sliding window the router's quantiles were specified against).
    pub const DEFAULT_WINDOW: usize = 4096;

    /// A histogram with the default raw-sample window
    /// ([`Histogram::DEFAULT_WINDOW`]).
    pub fn new() -> Self {
        Self::with_window(Self::DEFAULT_WINDOW)
    }

    /// A histogram whose quantiles are computed over the last `window`
    /// samples. `window` is clamped to at least 1.
    pub fn with_window(window: usize) -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            window: Mutex::new(Ring {
                cap: window.max(1),
                buf: Vec::new(),
                next: 0,
            }),
        }
    }

    /// Record one duration.
    pub fn record(&self, d: Duration) {
        self.record_nanos(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one duration given in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        let bucket = (64 - nanos.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        self.window
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(nanos);
    }

    /// Lifetime sample count (not bounded by the window).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Lifetime sum of all recorded durations.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_nanos.load(Ordering::Relaxed))
    }

    /// Largest duration ever recorded.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    /// The raw samples currently in the window, oldest-first ordering not
    /// guaranteed (callers sort as needed).
    pub fn samples(&self) -> Vec<Duration> {
        self.window
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .buf
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect()
    }

    /// Exact nearest-rank quantile over the current window:
    /// `sorted[ceil(q·n) − 1]`, clamped into range; [`Duration::ZERO`] when
    /// no samples have been recorded.
    pub fn quantile(&self, q: f64) -> Duration {
        let mut sorted: Vec<u64> = self
            .window
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .buf
            .clone();
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = (q * n as f64).ceil() as usize;
        let idx = rank.clamp(1, n) - 1;
        Duration::from_nanos(sorted[idx])
    }

    /// Per-bucket counts as `(upper_bound_nanos, count)` pairs for buckets
    /// with at least one sample. Bucket `i` covers `(2^(i-1), 2^i]` nanos.
    pub fn bucket_counts(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                if c == 0 {
                    return None;
                }
                let upper = if i >= 63 { u64::MAX } else { (1u64 << i).max(1) };
                Some((upper, c))
            })
            .collect()
    }

    /// Freeze the histogram into a plain value (count/total/max are lifetime;
    /// quantiles are over the current window). `window_dropped` records how
    /// many lifetime samples the bounded window has already evicted — when
    /// non-zero, the quantiles describe only the most recent tail of the
    /// stream, and downstream serializers flag them as truncated.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // Lock the window before reading the lifetime count so a concurrent
        // `record_nanos` (count bumped, push pending) cannot make the
        // eviction estimate go negative.
        let mut sorted: Vec<u64> = self
            .window
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .buf
            .clone();
        sorted.sort_unstable();
        let pick = |q: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let n = sorted.len();
            let rank = (q * n as f64).ceil() as usize;
            sorted[rank.clamp(1, n) - 1]
        };
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            total_nanos: self.total_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
            p50_nanos: pick(0.50),
            p95_nanos: pick(0.95),
            p99_nanos: pick(0.99),
            window_dropped: count.saturating_sub(sorted.len() as u64),
        }
    }
}

/// A frozen [`Histogram`]: lifetime count/total/max plus window quantiles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Lifetime number of recorded samples.
    pub count: u64,
    /// Lifetime sum of recorded durations, in nanoseconds.
    pub total_nanos: u64,
    /// Largest recorded duration, in nanoseconds.
    pub max_nanos: u64,
    /// Median over the sample window.
    pub p50_nanos: u64,
    /// 95th percentile over the sample window.
    pub p95_nanos: u64,
    /// 99th percentile over the sample window.
    pub p99_nanos: u64,
    /// Lifetime samples the bounded window had already evicted when the
    /// snapshot was taken (`count − window len`). When non-zero, the
    /// quantiles were computed from a truncated window — only the most
    /// recent samples — and serializers flag them accordingly.
    pub window_dropped: u64,
}

impl HistogramSnapshot {
    /// Render the snapshot as a **parallel** leaf [`StageProfile`] node so
    /// per-thread distributions (scheduler task execute time, cache lock
    /// holds, store fsyncs) can be grafted into a stage tree. The node is
    /// flagged parallel because its total is CPU-time summed across threads,
    /// not wall time on the coordinating thread.
    pub fn to_stage(&self, name: &str) -> StageProfile {
        StageProfile {
            name: name.to_string(),
            wall_nanos: self.total_nanos,
            count: self.count,
            parallel: true,
            quantiles: if self.count > 0 {
                Some(Quantiles {
                    p50_nanos: self.p50_nanos,
                    p95_nanos: self.p95_nanos,
                    p99_nanos: self.p99_nanos,
                    max_nanos: self.max_nanos,
                    window_dropped: self.window_dropped,
                })
            } else {
                None
            },
            children: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_router_semantics() {
        let h = Histogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.quantile(0.5), Duration::from_millis(50));
        assert_eq!(h.quantile(0.95), Duration::from_millis(95));
        assert_eq!(h.quantile(0.99), Duration::from_millis(99));
        assert_eq!(h.quantile(1.0), Duration::from_millis(100));
        assert_eq!(h.quantile(0.0), Duration::from_millis(1));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn window_slides() {
        let h = Histogram::with_window(4);
        for ms in [1u64, 2, 3, 4, 100, 200, 300, 400] {
            h.record(Duration::from_millis(ms));
        }
        // Lifetime count keeps everything; quantiles only see the last 4.
        assert_eq!(h.count(), 8);
        assert_eq!(h.quantile(0.5), Duration::from_millis(200));
        assert_eq!(h.quantile(1.0), Duration::from_millis(400));
        assert_eq!(h.max(), Duration::from_millis(400));
    }

    #[test]
    fn snapshot_reports_window_truncation_exactly() {
        let h = Histogram::with_window(4);
        for ms in 1..=10u64 {
            h.record(Duration::from_millis(ms));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.window_dropped, 6, "10 samples, window of 4");
        // Quantiles describe the surviving tail {7,8,9,10} only.
        assert_eq!(s.p50_nanos, 8_000_000);
        // An un-truncated histogram reports zero.
        let full = Histogram::new();
        full.record(Duration::from_millis(1));
        assert_eq!(full.snapshot().window_dropped, 0);
        // The truncation flag flows into the grafted stage node.
        let stage = h.snapshot().to_stage("execute");
        assert_eq!(stage.quantiles.unwrap().window_dropped, 6);
    }

    #[test]
    fn buckets_cover_all_samples() {
        let h = Histogram::new();
        for n in [0u64, 1, 2, 3, 1000, u64::MAX] {
            h.record_nanos(n);
        }
        let total: u64 = h.bucket_counts().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn snapshot_to_stage_is_parallel_leaf() {
        let h = Histogram::new();
        h.record(Duration::from_millis(10));
        let stage = h.snapshot().to_stage("execute");
        assert!(stage.parallel);
        assert_eq!(stage.count, 1);
        assert!(stage.children.is_empty());
        assert_eq!(stage.quantiles.unwrap().p50_nanos, 10_000_000);
    }
}
