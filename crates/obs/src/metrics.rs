//! Named counters and gauges with get-or-create registration.
//!
//! A [`MetricsRegistry`] hands out cheap cloneable [`Counter`] / [`Gauge`]
//! handles keyed by name; asking for the same name twice returns a handle to
//! the same underlying atomic, so independent layers can contribute to one
//! metric without coordination. The registry serializes to the bench
//! emitters' hand-rolled JSON style with keys in registration order.

use crate::json::escape_json;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed point-in-time gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust by a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Registry of named counters and gauges.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(String, Counter)>>,
    gauges: Mutex<Vec<(String, Gauge)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, c)) = counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        counters.push((name.to_string(), c.clone()));
        c
    }

    /// Get-or-create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, g)) = gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        gauges.push((name.to_string(), g.clone()));
        g
    }

    /// `(name, value)` pairs for all counters, in registration order.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect()
    }

    /// `(name, value)` pairs for all gauges, in registration order.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        self.gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect()
    }

    /// Serialize as one JSON object: counters then gauges, registration
    /// order, `{"name": value, ...}`.
    pub fn to_json(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (n, v) in self.counters() {
            parts.push(format!("\"{}\": {}", escape_json(&n), v));
        }
        for (n, v) in self.gauges() {
            parts.push(format!("\"{}\": {}", escape_json(&n), v));
        }
        format!("{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests");
        let b = reg.counter("requests");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("requests").get(), 5);
        assert_eq!(reg.counters(), vec![("requests".to_string(), 5)]);
    }

    #[test]
    fn gauges_set_and_add() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("queue_depth");
        g.set(10);
        g.add(-3);
        assert_eq!(reg.gauge("queue_depth").get(), 7);
    }

    #[test]
    fn json_keeps_registration_order() {
        let reg = MetricsRegistry::new();
        reg.counter("b").add(2);
        reg.counter("a").add(1);
        reg.gauge("depth").set(-4);
        assert_eq!(reg.to_json(), "{\"b\": 2, \"a\": 1, \"depth\": -4}");
    }
}
