//! Conformance suite for `zeroed-obs`: span attribution under concurrent
//! writers, histogram quantile exactness against a sorted-sample oracle, a
//! serialization golden for [`StageProfile`], and an overhead guard keeping
//! the always-on profiler cheap enough to never turn off.

use std::time::{Duration, Instant};
use zeroed_obs::{Histogram, MetricsRegistry, Profiler, StageProfile};

/// Deterministic pseudo-random stream (splitmix64) — no external crates.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn span_attribution_is_exact_under_concurrent_writers() {
    const THREADS: u64 = 8;
    const RECORDS_PER_THREAD: u64 = 1_000;
    let profiler = Profiler::new("run");
    let root = profiler.root();
    let shared = root.child_parallel("stage").child_dist("task");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let shared = shared.clone();
            let own = root.child_parallel("stage").child_dist(&format!("worker-{t}"));
            scope.spawn(move || {
                for i in 0..RECORDS_PER_THREAD {
                    shared.record(Duration::from_nanos(1_000 + i));
                    own.record(Duration::from_nanos(t + 1));
                }
            });
        }
    });
    let snap = profiler.snapshot();
    let stage = snap.child("stage").expect("stage node");
    // One node per distinct name: the shared child plus one per worker.
    assert_eq!(stage.children.len(), 1 + THREADS as usize);
    let task = stage.child("task").unwrap();
    assert_eq!(task.count, THREADS * RECORDS_PER_THREAD, "no lost records");
    // Sum of an arithmetic series times the number of threads — exact.
    let expected: u64 = THREADS * (0..RECORDS_PER_THREAD).map(|i| 1_000 + i).sum::<u64>();
    assert_eq!(task.wall_nanos, expected, "no lost nanoseconds");
    for t in 0..THREADS {
        let own = stage.child(&format!("worker-{t}")).unwrap();
        assert_eq!(own.count, RECORDS_PER_THREAD);
        assert_eq!(own.wall_nanos, (t + 1) * RECORDS_PER_THREAD, "cross-thread attribution leak");
    }
}

#[test]
fn histogram_quantiles_match_a_sorted_sample_oracle() {
    let mut state = 7u64;
    let hist = Histogram::new();
    let mut samples: Vec<u64> = Vec::new();
    for _ in 0..2_500 {
        let nanos = splitmix(&mut state) % 10_000_000;
        hist.record_nanos(nanos);
        samples.push(nanos);
    }
    samples.sort_unstable();
    let n = samples.len();
    for q in [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0] {
        let rank = (q * n as f64).ceil() as usize;
        let oracle = samples[rank.clamp(1, n) - 1];
        assert_eq!(
            hist.quantile(q),
            Duration::from_nanos(oracle),
            "nearest-rank mismatch at q={q}"
        );
    }
    let snap = hist.snapshot();
    assert_eq!(snap.p50_nanos, samples[(0.5 * n as f64).ceil() as usize - 1]);
    assert_eq!(snap.max_nanos, *samples.last().unwrap());
    assert_eq!(snap.count, n as u64);
    assert_eq!(snap.total_nanos, samples.iter().sum::<u64>());
}

#[test]
fn stage_profile_serialization_golden() {
    let mut root = StageProfile::leaf("detect", Duration::from_millis(100), 1);
    root.children
        .push(StageProfile::leaf("features", Duration::from_micros(61_500), 1));
    let mut dist = StageProfile::leaf("label_attribute", Duration::from_millis(250), 20);
    dist.parallel = true;
    dist.quantiles = Some(zeroed_obs::Quantiles {
        p50_nanos: 11_000_000,
        p95_nanos: 19_500_000,
        p99_nanos: 21_000_000,
        max_nanos: 22_000_000,
        window_dropped: 0,
    });
    let mut labeling = StageProfile::leaf("labeling", Duration::from_millis(30), 1);
    labeling.children.push(dist);
    root.children.push(labeling);
    assert_eq!(
        root.to_json(),
        "{\"name\": \"detect\", \"wall_ms\": 100.000, \"count\": 1, \"parallel\": false, \
         \"children\": [\
         {\"name\": \"features\", \"wall_ms\": 61.500, \"count\": 1, \"parallel\": false}, \
         {\"name\": \"labeling\", \"wall_ms\": 30.000, \"count\": 1, \"parallel\": false, \
         \"children\": [{\"name\": \"label_attribute\", \"wall_ms\": 250.000, \"count\": 20, \
         \"parallel\": true, \"p50_ms\": 11.000, \"p95_ms\": 19.500, \"p99_ms\": 21.000, \
         \"max_ms\": 22.000}]}]}"
    );
    // The golden tree also satisfies the invariants the bench asserts.
    assert!(root.accounting_ok());
    assert!((root.coverage() - 0.915).abs() < 1e-9);
}

/// Overhead guard: recording a span must be cheap enough to leave on
/// unconditionally. The bound is deliberately loose (10µs/record amortized —
/// two orders of magnitude above the measured cost) so the guard catches a
/// pathological regression (a sort on the hot path, an O(children) blowup),
/// not scheduler noise.
#[test]
fn span_recording_overhead_stays_negligible() {
    const RECORDS: u32 = 100_000;
    let profiler = Profiler::new("overhead");
    let span = profiler.root().child_dist("op");
    let t = Instant::now();
    for i in 0..RECORDS {
        span.record(Duration::from_nanos(u64::from(i)));
    }
    let per_record = t.elapsed() / RECORDS;
    assert!(
        per_record < Duration::from_micros(10),
        "span recording costs {per_record:?} per record"
    );
    // The get-or-create child lookup on a realistic fan-out is also hot-path.
    let parent = profiler.root().child("stages");
    for i in 0..16 {
        parent.child(&format!("s{i}"));
    }
    let t = Instant::now();
    for _ in 0..RECORDS / 10 {
        parent.child("s15").record(Duration::ZERO);
    }
    let per_lookup = t.elapsed() / (RECORDS / 10);
    assert!(
        per_lookup < Duration::from_micros(20),
        "child lookup + record costs {per_lookup:?}"
    );
}

#[test]
fn metrics_registry_is_exact_under_concurrent_writers() {
    let registry = MetricsRegistry::new();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let registry = &registry;
            scope.spawn(move || {
                let c = registry.counter("requests");
                let g = registry.gauge("inflight");
                for _ in 0..1_000 {
                    c.inc();
                    g.add(1);
                }
            });
        }
    });
    assert_eq!(registry.counter("requests").get(), 8_000);
    assert_eq!(registry.gauge("inflight").get(), 8_000);
    assert_eq!(
        registry.to_json(),
        "{\"requests\": 8000, \"inflight\": 8000}"
    );
}
