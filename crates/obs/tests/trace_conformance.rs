//! Flight-recorder conformance: the journal's exactness guarantees under
//! concurrency and overflow, and the exporters' byte-stable output.
//!
//! 1. **Exact counts under contention** — 8 writer threads hammering one
//!    recorder lose nothing: per-kind counters equal exactly what was
//!    emitted, and `survivors + dropped == recorded`.
//! 2. **Overflow exactness** — a deliberately tiny ring evicts
//!    oldest-first and reports the evicted count exactly, while the per-kind
//!    counters stay unaffected.
//! 3. **Byte-pinned exporters** — the JSONL journal and the Chrome
//!    trace-event export of a fixed event stream are pinned byte-for-byte,
//!    so any accidental format drift (a tool-breaking change for Perfetto
//!    or downstream `jq` pipelines) fails loudly.

use std::sync::Arc;
use std::thread;
use zeroed_obs::{
    check_causality, chrome_trace_json, journal_jsonl, EventKind, TraceEvent, TraceId,
    TraceRecorder,
};

#[test]
fn eight_writers_lose_nothing() {
    let recorder = TraceRecorder::new(99);
    let writers = 8usize;
    let per_writer = 5_000u64;
    thread::scope(|s| {
        for w in 0..writers {
            let rec = Arc::clone(&recorder);
            s.spawn(move || {
                for i in 0..per_writer {
                    let trace = TraceId::from_key((w as u128) << 64 | i as u128, rec.nonce());
                    rec.emit(trace, EventKind::CacheHit, i);
                    rec.emit(trace, EventKind::RepairMangled, 0);
                }
            });
        }
    });
    let expected = writers as u64 * per_writer;
    assert_eq!(recorder.count(EventKind::CacheHit), expected);
    assert_eq!(recorder.count(EventKind::RepairMangled), expected);
    assert_eq!(recorder.count(EventKind::CacheMiss), 0);

    let summary = recorder.summary(3);
    assert_eq!(summary.recorded(), 2 * expected);
    assert_eq!(
        summary.events.len() as u64 + summary.dropped_events,
        2 * expected,
        "every emission is either in the ring or counted as dropped"
    );
    // 80k events fit in the default 128Ki-slot ring: nothing dropped, and
    // the survivors are totally ordered by timestamp.
    assert_eq!(summary.dropped_events, 0);
    assert!(summary
        .events
        .windows(2)
        .all(|w| w[0].t_nanos <= w[1].t_nanos));
}

#[test]
fn overflow_reports_evictions_exactly_and_keeps_the_newest() {
    let recorder = TraceRecorder::with_capacity(7, 64);
    for i in 0..1_000u64 {
        recorder.emit(TraceId::from_key(i as u128, 7), EventKind::TaskSubmit, i);
    }
    assert_eq!(recorder.count(EventKind::TaskSubmit), 1_000);
    assert_eq!(recorder.dropped(), 1_000 - 64);
    let events = recorder.events();
    assert_eq!(events.len(), 64);
    // Drop-oldest: the survivors are exactly the newest 64, in order.
    for (i, ev) in events.iter().enumerate() {
        assert_eq!(ev.arg, (1_000 - 64 + i) as u64);
    }
    let summary = recorder.summary(1);
    assert_eq!(summary.dropped_events, 936);
    assert!(
        summary.verify().is_err(),
        "an incomplete journal must refuse causality verification"
    );
}

/// A small fixed stream exercising every exporter feature: two complete
/// spans on one trace, a nested queue/execute pair, an unmatched open and
/// standalone instants (one on the NONE trace).
fn golden_events() -> Vec<TraceEvent> {
    let t1 = TraceId::from_key(1, 7);
    let t2 = TraceId::from_key(2, 7);
    let ev = |t_nanos: u64, trace: TraceId, kind: EventKind, arg: u64| TraceEvent {
        t_nanos,
        trace,
        kind,
        arg,
    };
    vec![
        ev(100, t1, EventKind::TaskSubmit, 0),
        ev(250, t1, EventKind::TaskStart, 0),
        ev(300, t1, EventKind::CacheMiss, 0),
        ev(400, t2, EventKind::CacheHit, 1),
        ev(950, t1, EventKind::CachePublish, 0),
        ev(1_000, t1, EventKind::TaskEnd, 0),
        ev(1_200, t2, EventKind::CacheMiss, 0),
        ev(1_500, TraceId::NONE, EventKind::RepairMangled, 3),
        ev(1_550, TraceId::NONE, EventKind::RepairDefaulted, 3),
    ]
}

#[test]
fn journal_jsonl_is_byte_pinned() {
    let events = golden_events();
    let t1 = TraceId::from_key(1, 7).raw();
    let t2 = TraceId::from_key(2, 7).raw();
    let expected = format!(
        concat!(
            "{{\"t_ns\": 100, \"trace\": \"0x{t1:016x}\", \"kind\": \"task_submit\", \"arg\": 0}}\n",
            "{{\"t_ns\": 250, \"trace\": \"0x{t1:016x}\", \"kind\": \"task_start\", \"arg\": 0}}\n",
            "{{\"t_ns\": 300, \"trace\": \"0x{t1:016x}\", \"kind\": \"cache_miss\", \"arg\": 0}}\n",
            "{{\"t_ns\": 400, \"trace\": \"0x{t2:016x}\", \"kind\": \"cache_hit\", \"arg\": 1}}\n",
            "{{\"t_ns\": 950, \"trace\": \"0x{t1:016x}\", \"kind\": \"cache_publish\", \"arg\": 0}}\n",
            "{{\"t_ns\": 1000, \"trace\": \"0x{t1:016x}\", \"kind\": \"task_end\", \"arg\": 0}}\n",
            "{{\"t_ns\": 1200, \"trace\": \"0x{t2:016x}\", \"kind\": \"cache_miss\", \"arg\": 0}}\n",
            "{{\"t_ns\": 1500, \"trace\": \"0x0000000000000000\", \"kind\": \"repair_mangled\", \"arg\": 3}}\n",
            "{{\"t_ns\": 1550, \"trace\": \"0x0000000000000000\", \"kind\": \"repair_defaulted\", \"arg\": 3}}\n",
        ),
        t1 = t1,
        t2 = t2,
    );
    assert_eq!(journal_jsonl(&events), expected);
}

#[test]
fn chrome_trace_export_is_byte_pinned() {
    let events = golden_events();
    let t1 = TraceId::from_key(1, 7).raw();
    let t2 = TraceId::from_key(2, 7).raw();
    let (tid1, tid2) = (t1 & 0xffff_ffff, t2 & 0xffff_ffff);
    let expected = format!(
        concat!(
            "[\n",
            // task_submit@100 → task_start@250: a 0.150us queue span.
            "{{\"name\": \"task_queue\", \"cat\": \"zeroed\", \"ph\": \"X\", \"ts\": 0.100, \"dur\": 0.150, \"pid\": 1, \"tid\": {tid1}, \"args\": {{\"trace\": \"0x{t1:016x}\", \"arg\": 0}}}},\n",
            // task_start@250 → task_end@1000: the execute span.
            "{{\"name\": \"task_execute\", \"cat\": \"zeroed\", \"ph\": \"X\", \"ts\": 0.250, \"dur\": 0.750, \"pid\": 1, \"tid\": {tid1}, \"args\": {{\"trace\": \"0x{t1:016x}\", \"arg\": 0}}}},\n",
            // cache_miss@300 → cache_publish@950: the compute span.
            "{{\"name\": \"cache_compute\", \"cat\": \"zeroed\", \"ph\": \"X\", \"ts\": 0.300, \"dur\": 0.650, \"pid\": 1, \"tid\": {tid1}, \"args\": {{\"trace\": \"0x{t1:016x}\", \"arg\": 0}}}},\n",
            // Unpaired events become instants.
            "{{\"name\": \"cache_hit\", \"cat\": \"zeroed\", \"ph\": \"i\", \"ts\": 0.400, \"s\": \"t\", \"pid\": 1, \"tid\": {tid2}, \"args\": {{\"trace\": \"0x{t2:016x}\", \"arg\": 1}}}},\n",
            "{{\"name\": \"cache_miss\", \"cat\": \"zeroed\", \"ph\": \"i\", \"ts\": 1.200, \"s\": \"t\", \"pid\": 1, \"tid\": {tid2}, \"args\": {{\"trace\": \"0x{t2:016x}\", \"arg\": 0}}}},\n",
            "{{\"name\": \"repair_mangled\", \"cat\": \"zeroed\", \"ph\": \"i\", \"ts\": 1.500, \"s\": \"t\", \"pid\": 1, \"tid\": 0, \"args\": {{\"trace\": \"0x0000000000000000\", \"arg\": 3}}}},\n",
            "{{\"name\": \"repair_defaulted\", \"cat\": \"zeroed\", \"ph\": \"i\", \"ts\": 1.550, \"s\": \"t\", \"pid\": 1, \"tid\": 0, \"args\": {{\"trace\": \"0x0000000000000000\", \"arg\": 3}}}}\n",
            "]\n",
        ),
        t1 = t1,
        t2 = t2,
        tid1 = tid1,
        tid2 = tid2,
    );
    assert_eq!(chrome_trace_json(&events), expected);
}

#[test]
fn the_golden_stream_is_causally_consistent() {
    let mut events = golden_events();
    // Close t2's miss so end-of-journal publish accounting balances (the
    // fixture leaves it open on purpose: the Chrome exporter must render an
    // unmatched open as an instant, not hallucinate a span).
    events.push(TraceEvent {
        t_nanos: 1_600,
        trace: TraceId::from_key(2, 7),
        kind: EventKind::CachePublish,
        arg: 0,
    });
    check_causality(&events).expect("golden stream must be causally consistent");
}
