//! The unified feature representation (paper §III-B).
//!
//! For each attribute the [`FeatureBuilder`] assembles a *base* feature matrix
//! (statistics + pattern frequencies + semantic embedding + optional
//! error-reason-aware criteria indicators) and then concatenates the base
//! features of the top-`k` NMI-correlated attributes to form the *unified*
//! representation `Feat(D[i,j]) = f_base(D[i,j]) ⊕ { f_base(D[i,q]) }` used by
//! clustering, sampling and the detector.
//!
//! [`FittedFeatures`] keeps the fitted statistics (frequency model, correlated
//! attributes) so that individual cells — including hypothetical values that
//! do not appear in the table, such as the LLM-augmented error examples of
//! Algorithm 1 — can be featurised consistently after the initial build.

use crate::embed::HashEmbedder;
use crate::matrix::FeatureMatrix;
use crate::nmi::top_k_correlated_sampled;
use crate::pattern::Level;
use crate::stats::FrequencyModel;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use zeroed_table::value::is_missing;
use zeroed_table::Table;

/// Configuration of the feature representation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Dimensionality of the semantic (subword hashing) embedding.
    pub embed_dim: usize,
    /// Number of correlated attributes whose base features are concatenated
    /// (the paper's default is 2).
    pub top_k_corr: usize,
    /// Include the semantic embedding component.
    pub include_semantic: bool,
    /// Include the statistical frequency component.
    pub include_stats: bool,
    /// Row-sample cap used when estimating NMI on large tables.
    pub nmi_sample_rows: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self {
            embed_dim: 24,
            top_k_corr: 2,
            include_semantic: true,
            include_stats: true,
            nmi_sample_rows: 5_000,
        }
    }
}

/// The per-table output of feature construction.
#[derive(Debug, Clone)]
pub struct TableFeatures {
    /// Unified feature matrix per attribute (base ⊕ correlated bases).
    pub unified: Vec<FeatureMatrix>,
    /// Base feature matrix per attribute.
    pub base: Vec<FeatureMatrix>,
    /// Indices of the correlated attributes chosen for each attribute.
    pub correlated: Vec<Vec<usize>>,
}

impl TableFeatures {
    /// Unified feature dimensionality of one attribute.
    pub fn dim(&self, col: usize) -> usize {
        self.unified[col].n_cols()
    }
}

/// Builds base and unified feature matrices for a table.
#[derive(Debug, Clone)]
pub struct FeatureBuilder {
    config: FeatureConfig,
    embedder: HashEmbedder,
}

/// Fitted per-table feature state: the frequency model, the correlated
/// attributes and the extra (criteria) feature blocks. Produced by
/// [`FeatureBuilder::fit`]; can featurise arbitrary cells, including cells
/// with an overridden (synthetic) value.
pub struct FittedFeatures<'a> {
    config: FeatureConfig,
    embedder: &'a HashEmbedder,
    table: &'a Table,
    extra: &'a [Vec<Vec<f32>>],
    freq: FrequencyModel,
    correlated: Vec<Vec<usize>>,
}

impl FeatureBuilder {
    /// Creates a builder from a configuration.
    pub fn new(config: FeatureConfig) -> Self {
        let embedder = HashEmbedder::new(config.embed_dim);
        Self { config, embedder }
    }

    /// The builder's configuration.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Fits the per-table feature state (frequency model, correlated
    /// attributes) without materialising the full matrices.
    ///
    /// `extra` supplies optional per-attribute, per-row additional features —
    /// ZeroED passes the binary error-checking-criteria indicators here. Use an
    /// empty slice (or empty inner vectors) when there are none. `extra[j]`,
    /// when present, must contain one vector per row.
    pub fn fit<'a>(&'a self, table: &'a Table, extra: &'a [Vec<Vec<f32>>]) -> FittedFeatures<'a> {
        let n_cols = table.n_cols();
        let correlated: Vec<Vec<usize>> = (0..n_cols)
            .map(|j| {
                top_k_correlated_sampled(
                    table,
                    j,
                    self.config.top_k_corr,
                    self.config.nmi_sample_rows,
                )
            })
            .collect();
        let mut freq = FrequencyModel::new(table);
        if self.config.include_stats {
            for (j, corr) in correlated.iter().enumerate() {
                for &q in corr {
                    freq.prepare_pair(table, j, q);
                }
            }
        }
        FittedFeatures {
            config: self.config.clone(),
            embedder: &self.embedder,
            table,
            extra,
            freq,
            correlated,
        }
    }

    /// Builds features for every attribute of `table` (fit + materialise).
    pub fn build(&self, table: &Table, extra: &[Vec<Vec<f32>>]) -> TableFeatures {
        self.fit(table, extra).build_all()
    }
}

impl<'a> FittedFeatures<'a> {
    /// The correlated attributes chosen for each column.
    pub fn correlated(&self) -> &[Vec<usize>] {
        &self.correlated
    }

    /// Base feature vector for one cell. `value_override` substitutes a
    /// hypothetical value for the cell (used to featurise augmented error
    /// examples in the context of an existing row); `extra_override` replaces
    /// the cell's extra (criteria) features, which callers must supply when
    /// overriding the value and criteria features are in use.
    pub fn base_row(
        &self,
        row: usize,
        col: usize,
        value_override: Option<&str>,
        extra_override: Option<&[f32]>,
    ) -> Vec<f32> {
        let value = value_override.unwrap_or_else(|| self.table.cell(row, col));
        let mut feat: Vec<f32> = Vec::new();
        if self.config.include_stats {
            feat.push(self.freq.value_frequency(col, value) as f32);
            feat.push(self.freq.pattern_frequency(col, value, Level::L1) as f32);
            feat.push(self.freq.pattern_frequency(col, value, Level::L2) as f32);
            feat.push(self.freq.pattern_frequency(col, value, Level::L3) as f32);
            for &q in &self.correlated[col] {
                feat.push(
                    self.freq
                        .vicinity_frequency(col, value, q, self.table.cell(row, q))
                        as f32,
                );
            }
            feat.push((value.chars().count() as f32 / 64.0).min(1.0));
            feat.push(if is_missing(value) { 1.0 } else { 0.0 });
        }
        if self.config.include_semantic {
            feat.extend(self.embedder.embed(value));
        }
        let extra_cell: Option<&[f32]> = extra_override.or_else(|| {
            self.extra
                .get(col)
                .filter(|v| !v.is_empty())
                .map(|v| v[row].as_slice())
        });
        if let Some(extra) = extra_cell {
            feat.extend(extra.iter().copied());
        }
        if feat.is_empty() {
            feat.push(0.0);
        }
        feat
    }

    /// Unified feature vector for one cell: its base features concatenated
    /// with the base features of its correlated attributes (taken from the
    /// stored table, never overridden).
    pub fn unified_row(
        &self,
        row: usize,
        col: usize,
        value_override: Option<&str>,
        extra_override: Option<&[f32]>,
    ) -> Vec<f32> {
        let mut feat = self.base_row(row, col, value_override, extra_override);
        for &q in &self.correlated[col] {
            feat.extend(self.base_row(row, q, None, None));
        }
        feat
    }

    /// Materialises the full base and unified matrices for every attribute.
    pub fn build_all(&self) -> TableFeatures {
        let n_cols = self.table.n_cols();
        let n_rows = self.table.n_rows();
        let base: Vec<FeatureMatrix> = (0..n_cols)
            .into_par_iter()
            .map(|j| {
                let rows: Vec<Vec<f32>> = (0..n_rows)
                    .map(|i| self.base_row(i, j, None, None))
                    .collect();
                FeatureMatrix::from_rows(rows)
            })
            .collect();
        let unified: Vec<FeatureMatrix> = (0..n_cols)
            .into_par_iter()
            .map(|j| {
                let mut m = base[j].clone();
                for &q in &self.correlated[j] {
                    m = m.hconcat(&base[q]);
                }
                m
            })
            .collect();
        TableFeatures {
            unified,
            base,
            correlated: self.correlated.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let rows: Vec<Vec<String>> = (0..60)
            .map(|i| {
                let name = format!("person{}", i % 12);
                let gender = if (i % 12) < 6 { "M" } else { "F" };
                let salary = format!("{}", 40_000 + (i % 12) * 1_000);
                vec![name, gender.to_string(), salary]
            })
            .collect();
        Table::new(
            "t",
            vec!["name".into(), "gender".into(), "salary".into()],
            rows,
        )
        .unwrap()
    }

    #[test]
    fn builds_matrices_of_expected_shape() {
        let t = table();
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 8,
            top_k_corr: 2,
            ..Default::default()
        });
        let feats = builder.build(&t, &[]);
        assert_eq!(feats.base.len(), 3);
        assert_eq!(feats.unified.len(), 3);
        for j in 0..3 {
            assert_eq!(feats.base[j].n_rows(), 60);
            assert_eq!(feats.unified[j].n_rows(), 60);
            // base dim: 4 freq + 2 vicinity + 2 misc + 8 embed = 16
            assert_eq!(feats.base[j].n_cols(), 16);
            // unified: base + 2 correlated bases
            assert_eq!(feats.unified[j].n_cols(), 16 * 3);
            assert_eq!(feats.correlated[j].len(), 2);
            assert_eq!(feats.dim(j), 48);
        }
    }

    #[test]
    fn extra_features_are_appended() {
        let t = table();
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 4,
            top_k_corr: 1,
            ..Default::default()
        });
        let extra: Vec<Vec<Vec<f32>>> = vec![
            (0..60).map(|_| vec![1.0, 0.0]).collect(),
            Vec::new(),
            Vec::new(),
        ];
        let feats = builder.build(&t, &extra);
        // Column 0 has 2 extra dims compared to columns 1 and 2.
        assert_eq!(feats.base[0].n_cols(), feats.base[1].n_cols() + 2);
        assert_eq!(feats.base[0].row(0)[feats.base[0].n_cols() - 2], 1.0);
    }

    #[test]
    fn stats_only_and_semantic_only() {
        let t = table();
        let stats_only = FeatureBuilder::new(FeatureConfig {
            include_semantic: false,
            top_k_corr: 1,
            ..Default::default()
        })
        .build(&t, &[]);
        assert_eq!(stats_only.base[0].n_cols(), 4 + 1 + 2);
        let sem_only = FeatureBuilder::new(FeatureConfig {
            include_stats: false,
            embed_dim: 6,
            top_k_corr: 0,
            ..Default::default()
        })
        .build(&t, &[]);
        assert_eq!(sem_only.base[0].n_cols(), 6);
        assert!(sem_only.correlated[0].is_empty());
    }

    #[test]
    fn identical_values_share_feature_rows() {
        let t = table();
        let feats = FeatureBuilder::new(FeatureConfig {
            embed_dim: 8,
            top_k_corr: 1,
            ..Default::default()
        })
        .build(&t, &[]);
        // Rows 0 and 12 hold the same (name, gender, salary) combination.
        assert_eq!(feats.unified[0].row(0), feats.unified[0].row(12));
    }

    #[test]
    fn fitted_rows_match_built_matrices() {
        let t = table();
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 8,
            top_k_corr: 2,
            ..Default::default()
        });
        let fitted = builder.fit(&t, &[]);
        let built = fitted.build_all();
        for j in 0..3 {
            for i in [0usize, 7, 59] {
                assert_eq!(
                    fitted.unified_row(i, j, None, None),
                    built.unified[j].row(i).to_vec(),
                    "cell ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn value_override_changes_only_base_part() {
        let t = table();
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 8,
            top_k_corr: 1,
            ..Default::default()
        });
        let fitted = builder.fit(&t, &[]);
        let normal = fitted.unified_row(0, 2, None, None);
        let overridden = fitted.unified_row(0, 2, Some("999999999"), None);
        assert_eq!(normal.len(), overridden.len());
        assert_ne!(normal, overridden);
        // The correlated (tail) block is unchanged by the override.
        let base_dim = fitted.base_row(0, 2, None, None).len();
        assert_eq!(normal[base_dim..], overridden[base_dim..]);
        // An unseen value has zero value-frequency.
        assert_eq!(overridden[0], 0.0);
    }
}
