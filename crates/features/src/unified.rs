//! The unified feature representation (paper §III-B).
//!
//! For each attribute the [`FeatureBuilder`] assembles a *base* feature matrix
//! (statistics + pattern frequencies + semantic embedding + optional
//! error-reason-aware criteria indicators) and then concatenates the base
//! features of the top-`k` NMI-correlated attributes to form the *unified*
//! representation `Feat(D[i,j]) = f_base(D[i,j]) ⊕ { f_base(D[i,q]) }` used by
//! clustering, sampling and the detector.
//!
//! [`FittedFeatures`] keeps the fitted statistics (frequency model, correlated
//! attributes) so that individual cells — including hypothetical values that
//! do not appear in the table, such as the LLM-augmented error examples of
//! Algorithm 1 — can be featurised consistently after the initial build.
//!
//! # Interned fast path
//!
//! Fitting interns the table once ([`zeroed_table::TableDict`]) and
//! precomputes, per column and per *distinct* value: the six row-independent
//! statistics (value frequency, three pattern frequencies, length, missing
//! flag) and the semantic embedding. A cell's base vector is then assembled by
//! copying its distinct value's cached blocks and filling only the genuinely
//! row-dependent slots (vicinity frequencies, keyed by `(u32, u32)` code
//! pairs; criteria indicators, which are per-row inputs).
//! [`FittedFeatures::build_all`] scatters those blocks directly into
//! preallocated [`FeatureMatrix`] buffers, parallelised over
//! (column × row-chunk) — no per-cell `Vec`, no `from_rows` materialisation,
//! no chained `hconcat` copies. The [`crate::reference`] module keeps the
//! seed's per-cell implementation as the correctness oracle; equivalence tests
//! assert the two paths produce bit-identical output.

use crate::embed::HashEmbedder;
use crate::matrix::FeatureMatrix;
use crate::nmi::top_k_correlated_dict;
use crate::pattern::Level;
use crate::stats::FrequencyModel;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use zeroed_table::value::is_missing;
use zeroed_table::{Table, TableDict};

/// Row-chunk granularity of the parallel scatter in
/// [`FittedFeatures::build_all`].
const SCATTER_CHUNK_ROWS: usize = 1024;

/// Configuration of the feature representation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Dimensionality of the semantic (subword hashing) embedding.
    pub embed_dim: usize,
    /// Number of correlated attributes whose base features are concatenated
    /// (the paper's default is 2).
    pub top_k_corr: usize,
    /// Include the semantic embedding component.
    pub include_semantic: bool,
    /// Include the statistical frequency component.
    pub include_stats: bool,
    /// Row-sample cap used when estimating NMI on large tables.
    pub nmi_sample_rows: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self {
            embed_dim: 24,
            top_k_corr: 2,
            include_semantic: true,
            include_stats: true,
            nmi_sample_rows: 5_000,
        }
    }
}

/// The per-table output of feature construction.
#[derive(Debug, Clone)]
pub struct TableFeatures {
    /// Unified feature matrix per attribute (base ⊕ correlated bases).
    pub unified: Vec<FeatureMatrix>,
    /// Base feature matrix per attribute.
    pub base: Vec<FeatureMatrix>,
    /// Indices of the correlated attributes chosen for each attribute.
    pub correlated: Vec<Vec<usize>>,
}

impl TableFeatures {
    /// Unified feature dimensionality of one attribute.
    pub fn dim(&self, col: usize) -> usize {
        self.unified[col].n_cols()
    }
}

/// Builds base and unified feature matrices for a table.
#[derive(Debug, Clone)]
pub struct FeatureBuilder {
    config: FeatureConfig,
    embedder: HashEmbedder,
}

/// Width of the per-distinct-value stats cache rows:
/// `[value_freq, pat_l1, pat_l2, pat_l3, len_norm, missing]`.
const STATS_CACHE_COLS: usize = 6;

/// Fitted per-table feature state: the frequency model, the correlated
/// attributes, the extra (criteria) feature blocks and the per-column
/// distinct-value caches. Produced by [`FeatureBuilder::fit`]; can featurise
/// arbitrary cells, including cells with an overridden (synthetic) value.
pub struct FittedFeatures<'a> {
    pub(crate) config: FeatureConfig,
    pub(crate) embedder: &'a HashEmbedder,
    pub(crate) table: &'a Table,
    pub(crate) extra: &'a [Vec<Vec<f32>>],
    pub(crate) freq: FrequencyModel,
    pub(crate) correlated: Vec<Vec<usize>>,
    /// Interned view of `table` (shared with the frequency model).
    dict: Arc<TableDict>,
    /// Per column: `[n_distinct × STATS_CACHE_COLS]` row-independent stats
    /// (empty when stats are disabled).
    stats_cache: Vec<FeatureMatrix>,
    /// Per column: `[n_distinct × embed_dim]` embeddings (empty when the
    /// semantic component is disabled).
    embed_cache: Vec<FeatureMatrix>,
}

impl FeatureBuilder {
    /// Creates a builder from a configuration.
    pub fn new(config: FeatureConfig) -> Self {
        let embedder = HashEmbedder::new(config.embed_dim);
        Self { config, embedder }
    }

    /// The builder's configuration.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Fits the per-table feature state (frequency model, correlated
    /// attributes, distinct-value caches) without materialising the full
    /// matrices. The table is interned internally; use
    /// [`FeatureBuilder::fit_with_dict`] when a dictionary already exists.
    ///
    /// `extra` supplies optional per-attribute, per-row additional features —
    /// ZeroED passes the binary error-checking-criteria indicators here. Use an
    /// empty slice (or empty inner vectors) when there are none. `extra[j]`,
    /// when present, must contain one vector per row.
    pub fn fit<'a>(&'a self, table: &'a Table, extra: &'a [Vec<Vec<f32>>]) -> FittedFeatures<'a> {
        self.fit_with_dict(table, Arc::new(table.intern()), extra)
    }

    /// [`FeatureBuilder::fit`] over a pre-built dictionary, so callers that
    /// already interned the table don't pay for a second interning pass.
    /// `dict` must describe `table`.
    pub fn fit_with_dict<'a>(
        &'a self,
        table: &'a Table,
        dict: Arc<TableDict>,
        extra: &'a [Vec<Vec<f32>>],
    ) -> FittedFeatures<'a> {
        let correlated: Vec<Vec<usize>> = (0..table.n_cols())
            .map(|j| {
                top_k_correlated_dict(&dict, j, self.config.top_k_corr, self.config.nmi_sample_rows)
            })
            .collect();
        self.fit_prepared(table, dict, correlated, extra)
    }

    /// [`FeatureBuilder::fit_with_dict`] with the correlated attributes
    /// already chosen. The pipeline computes them once (they are also fed to
    /// the LLM prompt contexts) and hands them in here, so the `O(cols²)` NMI
    /// sweep runs exactly once per detection and the features are guaranteed
    /// to encode the same correlated attributes the prompts describe.
    pub fn fit_prepared<'a>(
        &'a self,
        table: &'a Table,
        dict: Arc<TableDict>,
        correlated: Vec<Vec<usize>>,
        extra: &'a [Vec<Vec<f32>>],
    ) -> FittedFeatures<'a> {
        assert_eq!(dict.n_rows(), table.n_rows(), "dictionary/table row mismatch");
        assert_eq!(dict.n_cols(), table.n_cols(), "dictionary/table column mismatch");
        assert_eq!(
            correlated.len(),
            table.n_cols(),
            "one correlated-attribute list per column required"
        );
        let n_cols = table.n_cols();
        for (j, corr) in correlated.iter().enumerate() {
            for &q in corr {
                assert!(
                    q < n_cols && q != j,
                    "correlated list of column {j} holds invalid attribute {q}"
                );
            }
        }
        let mut freq = FrequencyModel::from_dict(dict.clone());
        if self.config.include_stats {
            for (j, corr) in correlated.iter().enumerate() {
                for &q in corr {
                    freq.prepare_pair(table, j, q);
                }
            }
        }
        let stats_cache: Vec<FeatureMatrix> = if self.config.include_stats {
            (0..n_cols)
                .into_par_iter()
                .map(|j| {
                    let col = dict.column(j);
                    let n_distinct = col.n_distinct();
                    let mut cache = FeatureMatrix::zeros(n_distinct, STATS_CACHE_COLS);
                    for code in 0..n_distinct as u32 {
                        let value = col.value(code);
                        let row = cache.row_mut(code as usize);
                        row[0] = freq.value_frequency_code(j, code) as f32;
                        row[1] = freq.pattern_frequency_code(j, code, Level::L1) as f32;
                        row[2] = freq.pattern_frequency_code(j, code, Level::L2) as f32;
                        row[3] = freq.pattern_frequency_code(j, code, Level::L3) as f32;
                        row[4] = (value.chars().count() as f32 / 64.0).min(1.0);
                        row[5] = if is_missing(value) { 1.0 } else { 0.0 };
                    }
                    cache
                })
                .collect()
        } else {
            Vec::new()
        };
        // Embedding is the most expensive per-distinct-value work, so
        // parallelise *within* each column's pool (`embed_pool`) rather than
        // across columns — a single high-cardinality column then still uses
        // every core.
        let embed_cache: Vec<FeatureMatrix> = if self.config.include_semantic {
            (0..n_cols)
                .map(|j| self.embedder.embed_pool(dict.column(j).values()))
                .collect()
        } else {
            Vec::new()
        };
        FittedFeatures {
            config: self.config.clone(),
            embedder: &self.embedder,
            table,
            extra,
            freq,
            correlated,
            dict,
            stats_cache,
            embed_cache,
        }
    }

    /// Builds features for every attribute of `table` (fit + materialise).
    pub fn build(&self, table: &Table, extra: &[Vec<Vec<f32>>]) -> TableFeatures {
        self.fit(table, extra).build_all()
    }
}

impl<'a> FittedFeatures<'a> {
    /// The correlated attributes chosen for each column.
    pub fn correlated(&self) -> &[Vec<usize>] {
        &self.correlated
    }

    /// The shared distinct-value dictionary of the fitted table.
    pub fn dict(&self) -> &Arc<TableDict> {
        &self.dict
    }

    /// Width of the table-extra block of column `col`.
    fn extra_width(&self, col: usize) -> usize {
        self.extra
            .get(col)
            .filter(|v| !v.is_empty())
            .map(|v| v[0].len())
            .unwrap_or(0)
    }

    /// Base-vector width of column `col` given an extra block of `extra_len`
    /// values (the empty feature set degenerates to a single 0.0 slot,
    /// matching the seed implementation).
    fn base_width_with(&self, col: usize, extra_len: usize) -> usize {
        let mut width = 0;
        if self.config.include_stats {
            width += 4 + self.correlated[col].len() + 2;
        }
        if self.config.include_semantic {
            width += self.config.embed_dim;
        }
        width += extra_len;
        width.max(1)
    }

    /// Base feature dimensionality of column `col` (with the table's own
    /// extra block).
    pub fn base_dim(&self, col: usize) -> usize {
        self.base_width_with(col, self.extra_width(col))
    }

    /// Unified feature dimensionality of column `col`.
    pub fn unified_dim(&self, col: usize) -> usize {
        self.base_dim(col)
            + self.correlated[col]
                .iter()
                .map(|&q| self.base_dim(q))
                .sum::<usize>()
    }

    /// Fast path: fills the base vector of a cell whose value is the table's
    /// own (interned) value. `out` must be `base_dim(col)` long.
    fn fill_base_row_interned(&self, row: usize, col: usize, out: &mut [f32]) {
        let mut off = 0usize;
        if self.config.include_stats {
            let code = self.dict.column(col).code(row);
            let cached = self.stats_cache[col].row(code as usize);
            out[..4].copy_from_slice(&cached[..4]);
            off = 4;
            for &q in &self.correlated[col] {
                // The row's own code pair: a single memoised array read
                // (correlated attributes never include the column itself).
                out[off] = self.freq.vicinity_frequency_row(col, q, row) as f32;
                off += 1;
            }
            out[off] = cached[4];
            out[off + 1] = cached[5];
            off += 2;
        }
        if self.config.include_semantic {
            let code = self.dict.column(col).code(row);
            let dim = self.config.embed_dim;
            out[off..off + dim].copy_from_slice(self.embed_cache[col].row(code as usize));
            off += dim;
        }
        if let Some(block) = self
            .extra
            .get(col)
            .filter(|v| !v.is_empty())
            .map(|v| v[row].as_slice())
        {
            out[off..off + block.len()].copy_from_slice(block);
            off += block.len();
        }
        if off == 0 {
            out[0] = 0.0;
        }
    }

    /// General path: fills the base vector of a cell, honouring value and
    /// extra overrides. `out` must be `base_width_with(col, effective extra
    /// length)` long. Falls back to string-keyed statistics only for override
    /// values missing from the dictionary.
    pub fn base_row_into(
        &self,
        row: usize,
        col: usize,
        value_override: Option<&str>,
        extra_override: Option<&[f32]>,
        out: &mut [f32],
    ) {
        if value_override.is_none() && extra_override.is_none() {
            self.fill_base_row_interned(row, col, out);
            return;
        }
        let value = value_override.unwrap_or_else(|| self.table.cell(row, col));
        // An override value may still be one of the column's distinct values,
        // in which case every cached block applies.
        let code = self.dict.column(col).lookup(value);
        let mut off = 0usize;
        if self.config.include_stats {
            match code {
                Some(code) => {
                    let cached = self.stats_cache[col].row(code as usize);
                    out[..4].copy_from_slice(&cached[..4]);
                    off = 4;
                    for &q in &self.correlated[col] {
                        let code_q = self.dict.column(q).code(row);
                        out[off] =
                            self.freq.vicinity_frequency_code(col, code, q, code_q) as f32;
                        off += 1;
                    }
                    out[off] = cached[4];
                    out[off + 1] = cached[5];
                    off += 2;
                }
                None => {
                    out[0] = self.freq.value_frequency(col, value) as f32;
                    out[1] = self.freq.pattern_frequency(col, value, Level::L1) as f32;
                    out[2] = self.freq.pattern_frequency(col, value, Level::L2) as f32;
                    out[3] = self.freq.pattern_frequency(col, value, Level::L3) as f32;
                    off = 4;
                    for &q in &self.correlated[col] {
                        out[off] = self
                            .freq
                            .vicinity_frequency(col, value, q, self.table.cell(row, q))
                            as f32;
                        off += 1;
                    }
                    out[off] = (value.chars().count() as f32 / 64.0).min(1.0);
                    out[off + 1] = if is_missing(value) { 1.0 } else { 0.0 };
                    off += 2;
                }
            }
        }
        if self.config.include_semantic {
            let dim = self.config.embed_dim;
            match code {
                Some(code) => {
                    out[off..off + dim].copy_from_slice(self.embed_cache[col].row(code as usize));
                }
                None => self.embedder.embed_into(value, &mut out[off..off + dim]),
            }
            off += dim;
        }
        let extra_cell: Option<&[f32]> = extra_override.or_else(|| {
            self.extra
                .get(col)
                .filter(|v| !v.is_empty())
                .map(|v| v[row].as_slice())
        });
        if let Some(block) = extra_cell {
            out[off..off + block.len()].copy_from_slice(block);
            off += block.len();
        }
        if off == 0 {
            out[0] = 0.0;
        }
    }

    /// Base feature vector for one cell. `value_override` substitutes a
    /// hypothetical value for the cell (used to featurise augmented error
    /// examples in the context of an existing row); `extra_override` replaces
    /// the cell's extra (criteria) features, which callers must supply when
    /// overriding the value and criteria features are in use.
    pub fn base_row(
        &self,
        row: usize,
        col: usize,
        value_override: Option<&str>,
        extra_override: Option<&[f32]>,
    ) -> Vec<f32> {
        let extra_len = extra_override
            .map(|e| e.len())
            .unwrap_or_else(|| self.extra_width(col));
        let mut out = vec![0.0f32; self.base_width_with(col, extra_len)];
        self.base_row_into(row, col, value_override, extra_override, &mut out);
        out
    }

    /// Fills the unified feature vector of one cell: its base features
    /// followed by the base features of its correlated attributes (taken from
    /// the stored table, never overridden). `out` must be long enough for the
    /// base width implied by the overrides plus `base_dim` of each correlated
    /// attribute.
    pub fn unified_row_into(
        &self,
        row: usize,
        col: usize,
        value_override: Option<&str>,
        extra_override: Option<&[f32]>,
        out: &mut [f32],
    ) {
        let extra_len = extra_override
            .map(|e| e.len())
            .unwrap_or_else(|| self.extra_width(col));
        let mut off = self.base_width_with(col, extra_len);
        self.base_row_into(row, col, value_override, extra_override, &mut out[..off]);
        for &q in &self.correlated[col] {
            let width = self.base_dim(q);
            self.fill_base_row_interned(row, q, &mut out[off..off + width]);
            off += width;
        }
    }

    /// Unified feature vector for one cell: its base features concatenated
    /// with the base features of its correlated attributes (taken from the
    /// stored table, never overridden).
    pub fn unified_row(
        &self,
        row: usize,
        col: usize,
        value_override: Option<&str>,
        extra_override: Option<&[f32]>,
    ) -> Vec<f32> {
        let extra_len = extra_override
            .map(|e| e.len())
            .unwrap_or_else(|| self.extra_width(col));
        let width = self.base_width_with(col, extra_len)
            + self.correlated[col]
                .iter()
                .map(|&q| self.base_dim(q))
                .sum::<usize>();
        let mut out = vec![0.0f32; width];
        self.unified_row_into(row, col, value_override, extra_override, &mut out);
        out
    }

    /// Materialises the full base and unified matrices for every attribute.
    ///
    /// Per-distinct-value blocks (frequencies, patterns, embeddings) were
    /// computed once at fit time; this pass only scatters them to rows and
    /// fills the row-dependent slots, writing directly into preallocated
    /// buffers. Work is parallelised over (column × row-chunk) tasks.
    pub fn build_all(&self) -> TableFeatures {
        let n_cols = self.table.n_cols();
        let n_rows = self.table.n_rows();
        if n_rows == 0 {
            // Mirror the seed path (`from_rows` of an empty vector): empty
            // tables yield 0×0 matrices.
            return TableFeatures {
                unified: (0..n_cols).map(|_| FeatureMatrix::zeros(0, 0)).collect(),
                base: (0..n_cols).map(|_| FeatureMatrix::zeros(0, 0)).collect(),
                correlated: self.correlated.clone(),
            };
        }
        let dims: Vec<usize> = (0..n_cols).map(|j| self.base_dim(j)).collect();
        let mut base: Vec<FeatureMatrix> = dims
            .iter()
            .map(|&bd| FeatureMatrix::zeros(n_rows, bd))
            .collect();
        let tasks: Vec<(usize, usize, &mut [f32])> = base
            .iter_mut()
            .enumerate()
            .flat_map(|(j, m)| {
                let bd = dims[j];
                m.data_mut()
                    .chunks_mut(SCATTER_CHUNK_ROWS * bd)
                    .enumerate()
                    .map(move |(ci, chunk)| (j, ci, chunk))
            })
            .collect();
        tasks.into_par_iter().for_each(|(j, ci, chunk)| {
            let bd = dims[j];
            for (r, out) in chunk.chunks_mut(bd).enumerate() {
                self.fill_base_row_interned(ci * SCATTER_CHUNK_ROWS + r, j, out);
            }
        });
        let unified: Vec<FeatureMatrix> = (0..n_cols)
            .into_par_iter()
            .map(|j| {
                let parts: Vec<&FeatureMatrix> = std::iter::once(&base[j])
                    .chain(self.correlated[j].iter().map(|&q| &base[q]))
                    .collect();
                FeatureMatrix::hconcat_all(&parts)
            })
            .collect();
        TableFeatures {
            unified,
            base,
            correlated: self.correlated.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let rows: Vec<Vec<String>> = (0..60)
            .map(|i| {
                let name = format!("person{}", i % 12);
                let gender = if (i % 12) < 6 { "M" } else { "F" };
                let salary = format!("{}", 40_000 + (i % 12) * 1_000);
                vec![name, gender.to_string(), salary]
            })
            .collect();
        Table::new(
            "t",
            vec!["name".into(), "gender".into(), "salary".into()],
            rows,
        )
        .unwrap()
    }

    #[test]
    fn builds_matrices_of_expected_shape() {
        let t = table();
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 8,
            top_k_corr: 2,
            ..Default::default()
        });
        let feats = builder.build(&t, &[]);
        assert_eq!(feats.base.len(), 3);
        assert_eq!(feats.unified.len(), 3);
        for j in 0..3 {
            assert_eq!(feats.base[j].n_rows(), 60);
            assert_eq!(feats.unified[j].n_rows(), 60);
            // base dim: 4 freq + 2 vicinity + 2 misc + 8 embed = 16
            assert_eq!(feats.base[j].n_cols(), 16);
            // unified: base + 2 correlated bases
            assert_eq!(feats.unified[j].n_cols(), 16 * 3);
            assert_eq!(feats.correlated[j].len(), 2);
            assert_eq!(feats.dim(j), 48);
        }
    }

    #[test]
    fn extra_features_are_appended() {
        let t = table();
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 4,
            top_k_corr: 1,
            ..Default::default()
        });
        let extra: Vec<Vec<Vec<f32>>> = vec![
            (0..60).map(|_| vec![1.0, 0.0]).collect(),
            Vec::new(),
            Vec::new(),
        ];
        let feats = builder.build(&t, &extra);
        // Column 0 has 2 extra dims compared to columns 1 and 2.
        assert_eq!(feats.base[0].n_cols(), feats.base[1].n_cols() + 2);
        assert_eq!(feats.base[0].row(0)[feats.base[0].n_cols() - 2], 1.0);
    }

    #[test]
    fn stats_only_and_semantic_only() {
        let t = table();
        let stats_only = FeatureBuilder::new(FeatureConfig {
            include_semantic: false,
            top_k_corr: 1,
            ..Default::default()
        })
        .build(&t, &[]);
        assert_eq!(stats_only.base[0].n_cols(), 4 + 1 + 2);
        let sem_only = FeatureBuilder::new(FeatureConfig {
            include_stats: false,
            embed_dim: 6,
            top_k_corr: 0,
            ..Default::default()
        })
        .build(&t, &[]);
        assert_eq!(sem_only.base[0].n_cols(), 6);
        assert!(sem_only.correlated[0].is_empty());
    }

    #[test]
    fn identical_values_share_feature_rows() {
        let t = table();
        let feats = FeatureBuilder::new(FeatureConfig {
            embed_dim: 8,
            top_k_corr: 1,
            ..Default::default()
        })
        .build(&t, &[]);
        // Rows 0 and 12 hold the same (name, gender, salary) combination.
        assert_eq!(feats.unified[0].row(0), feats.unified[0].row(12));
    }

    #[test]
    fn fitted_rows_match_built_matrices() {
        let t = table();
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 8,
            top_k_corr: 2,
            ..Default::default()
        });
        let fitted = builder.fit(&t, &[]);
        let built = fitted.build_all();
        for j in 0..3 {
            for i in [0usize, 7, 59] {
                assert_eq!(
                    fitted.unified_row(i, j, None, None),
                    built.unified[j].row(i).to_vec(),
                    "cell ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn value_override_changes_only_base_part() {
        let t = table();
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 8,
            top_k_corr: 1,
            ..Default::default()
        });
        let fitted = builder.fit(&t, &[]);
        let normal = fitted.unified_row(0, 2, None, None);
        let overridden = fitted.unified_row(0, 2, Some("999999999"), None);
        assert_eq!(normal.len(), overridden.len());
        assert_ne!(normal, overridden);
        // The correlated (tail) block is unchanged by the override.
        let base_dim = fitted.base_row(0, 2, None, None).len();
        assert_eq!(normal[base_dim..], overridden[base_dim..]);
        // An unseen value has zero value-frequency.
        assert_eq!(overridden[0], 0.0);
    }

    #[test]
    fn override_with_existing_value_hits_the_cache() {
        let t = table();
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 8,
            top_k_corr: 1,
            ..Default::default()
        });
        let fitted = builder.fit(&t, &[]);
        // Overriding cell (0, 0) with the value it already holds must be a
        // no-op relative to the plain path.
        let own_value = t.cell(0, 0).to_string();
        assert_eq!(
            fitted.unified_row(0, 0, Some(&own_value), None),
            fitted.unified_row(0, 0, None, None),
        );
        // Overriding with another row's value reuses that value's cached
        // blocks; spot-check the value-frequency slot.
        let other = t.cell(1, 0).to_string();
        let feat = fitted.base_row(0, 0, Some(&other), None);
        assert_eq!(feat[0], fitted.base_row(1, 0, None, None)[0]);
    }

    #[test]
    fn fit_with_dict_reuses_the_given_dictionary() {
        let t = table();
        let dict = Arc::new(t.intern());
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 4,
            top_k_corr: 1,
            ..Default::default()
        });
        let fitted = builder.fit_with_dict(&t, dict.clone(), &[]);
        assert!(Arc::ptr_eq(fitted.dict(), &dict));
        let from_scratch = builder.fit(&t, &[]);
        assert_eq!(
            fitted.unified_row(3, 0, None, None),
            from_scratch.unified_row(3, 0, None, None),
        );
    }
}
