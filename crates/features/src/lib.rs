//! # zeroed-features
//!
//! Feature representation for ZeroED (paper §III-B).
//!
//! ZeroED represents every cell value `D[i,j]` by a *base feature vector*
//! combining:
//!
//! * **statistical features** — value frequency, vicinity (co-occurrence)
//!   frequency with correlated attributes, and pattern frequency at three
//!   generalisation levels ([`stats`], [`pattern`]);
//! * **semantic features** — an averaged subword-hashing embedding standing in
//!   for the paper's FastText vectors ([`embed`]);
//! * **error-reason-aware criteria features** — binary indicators of whether
//!   the value satisfies each LLM-derived error-checking criterion (produced
//!   by `zeroed-criteria` / `zeroed-llm` and passed into the builder as extra
//!   columns).
//!
//! Base vectors of the top-`k` correlated attributes (by normalised mutual
//! information, [`nmi`]) are concatenated to form the *unified representation*
//! used for clustering, sampling and the MLP detector ([`unified`]).

pub mod embed;
pub mod matrix;
pub mod nmi;
pub mod pattern;
pub mod stats;
pub mod unified;

pub use embed::HashEmbedder;
pub use matrix::FeatureMatrix;
pub use nmi::{normalized_mutual_information, top_k_correlated};
pub use pattern::{generalize, Level};
pub use stats::FrequencyModel;
pub use unified::{FeatureBuilder, FeatureConfig, FittedFeatures, TableFeatures};
