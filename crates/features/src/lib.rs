//! # zeroed-features
//!
//! Feature representation for ZeroED (paper §III-B).
//!
//! ZeroED represents every cell value `D[i,j]` by a *base feature vector*
//! combining:
//!
//! * **statistical features** — value frequency, vicinity (co-occurrence)
//!   frequency with correlated attributes, and pattern frequency at three
//!   generalisation levels ([`stats`], [`pattern`]);
//! * **semantic features** — an averaged subword-hashing embedding standing in
//!   for the paper's FastText vectors ([`embed`]);
//! * **error-reason-aware criteria features** — binary indicators of whether
//!   the value satisfies each LLM-derived error-checking criterion (produced
//!   by `zeroed-criteria` / `zeroed-llm` and passed into the builder as extra
//!   columns).
//!
//! Base vectors of the top-`k` correlated attributes (by normalised mutual
//! information, [`nmi`]) are concatenated to form the *unified representation*
//! used for clustering, sampling and the MLP detector ([`unified`]).
//!
//! # Interned featurisation (architecture + invariants)
//!
//! The whole stack is built on the distinct-value dictionary of
//! `zeroed_table::intern`: fitting interns the table once (or reuses a
//! caller-supplied dictionary via `FeatureBuilder::fit_with_dict`) and every
//! layer works per *distinct* value where the feature is row-independent:
//!
//! * [`stats::FrequencyModel`] reads value counts straight off the dictionary,
//!   memoises each distinct value's pattern count per level, keys
//!   co-occurrence maps by `(u32, u32)` code pairs, and additionally memoises
//!   each *row's own* pair count so the full-table scatter never hashes;
//! * [`embed::HashEmbedder::embed_into`] is allocation-free (no per-window
//!   `String`, no per-call `Vec`; thread-local scratch) and the fitted state
//!   caches one embedding per distinct value per column;
//! * [`unified::FittedFeatures::build_all`] scatters the cached per-distinct
//!   blocks directly into preallocated [`matrix::FeatureMatrix`] buffers,
//!   parallelised over (column × row-chunk), and assembles unified matrices
//!   with the single-pass [`matrix::FeatureMatrix::hconcat_all`].
//!
//! Invariants the fast path must uphold (enforced by `tests/equivalence.rs`
//! against the seed implementation preserved in [`reference`](mod@reference)):
//!
//! 1. `base_row` / `unified_row` / `build_all` output is **bit-identical** to
//!    the per-cell reference path, for every config combination — including
//!    `value_override` cells whose value is *not* in the dictionary (they fall
//!    back to string-keyed statistics and a fresh embedding) and
//!    `extra_override` criteria blocks of arbitrary width.
//! 2. Cached blocks store the exact `f64 → f32` casts of the reference
//!    arithmetic; derived quantities keep the reference's operation order.
//! 3. A fitted state is a snapshot: the dictionary, caches and frequency
//!    model all describe the table as it was at fit time.

pub mod embed;
pub(crate) mod fx;
pub mod matrix;
pub mod nmi;
pub mod pattern;
pub mod reference;
pub mod stats;
pub mod unified;

pub use embed::HashEmbedder;
pub use matrix::FeatureMatrix;
pub use nmi::{normalized_mutual_information, top_k_correlated, top_k_correlated_dict};
pub use pattern::{generalize, Level};
pub use stats::FrequencyModel;
pub use unified::{FeatureBuilder, FeatureConfig, FittedFeatures, TableFeatures};
