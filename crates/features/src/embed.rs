//! Subword-hashing embeddings (`f_sem`, paper §III-B).
//!
//! The paper averages pre-trained FastText word vectors over a cell value's
//! tokens. FastText itself represents a word as the sum of its character
//! n-gram vectors; this module reproduces that mechanism directly: each
//! character n-gram (3–5 characters, with `<`/`>` boundary markers) is hashed
//! into one of `dim` buckets with a deterministic sign, token vectors are the
//! normalised sum of their n-gram contributions, and the value embedding is
//! the average of its token vectors. Lexically similar strings (typos,
//! reformatted values) therefore land close together — the property ZeroED
//! relies on — without any external model file.

use zeroed_table::value::tokenize;

/// Deterministic FNV-1a hash (64-bit).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Character n-gram hashing embedder.
#[derive(Debug, Clone)]
pub struct HashEmbedder {
    dim: usize,
    min_ngram: usize,
    max_ngram: usize,
}

impl Default for HashEmbedder {
    fn default() -> Self {
        Self::new(24)
    }
}

impl HashEmbedder {
    /// Creates an embedder producing `dim`-dimensional vectors with n-grams of
    /// length 3–5.
    pub fn new(dim: usize) -> Self {
        Self {
            dim: dim.max(1),
            min_ngram: 3,
            max_ngram: 5,
        }
    }

    /// Creates an embedder with a custom n-gram range.
    pub fn with_ngrams(dim: usize, min_ngram: usize, max_ngram: usize) -> Self {
        assert!(min_ngram >= 1 && max_ngram >= min_ngram);
        Self {
            dim: dim.max(1),
            min_ngram,
            max_ngram,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds a single token by hashing its character n-grams.
    fn embed_token(&self, token: &str, out: &mut [f32]) {
        let marked: Vec<char> = std::iter::once('<')
            .chain(token.chars())
            .chain(std::iter::once('>'))
            .collect();
        let mut n_grams = 0usize;
        for n in self.min_ngram..=self.max_ngram {
            if marked.len() < n {
                continue;
            }
            for window in marked.windows(n) {
                let s: String = window.iter().collect();
                let h = fnv1a(s.as_bytes());
                let bucket = (h % self.dim as u64) as usize;
                let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
                out[bucket] += sign;
                n_grams += 1;
            }
        }
        // Also hash the whole token so very short tokens still contribute.
        let h = fnv1a(token.as_bytes());
        let bucket = (h % self.dim as u64) as usize;
        out[bucket] += if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        n_grams += 1;
        if n_grams > 0 {
            for x in out.iter_mut() {
                *x /= n_grams as f32;
            }
        }
    }

    /// Embeds a cell value: tokenises it, embeds each token and averages,
    /// then L2-normalises. Missing/empty values map to the zero vector.
    pub fn embed(&self, value: &str) -> Vec<f32> {
        let tokens = tokenize(value);
        let mut acc = vec![0.0f32; self.dim];
        if tokens.is_empty() {
            return acc;
        }
        let mut tmp = vec![0.0f32; self.dim];
        for token in &tokens {
            tmp.iter_mut().for_each(|x| *x = 0.0);
            self.embed_token(token, &mut tmp);
            for (a, t) in acc.iter_mut().zip(tmp.iter()) {
                *a += t;
            }
        }
        for x in acc.iter_mut() {
            *x /= tokens.len() as f32;
        }
        let norm: f32 = acc.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for x in acc.iter_mut() {
                *x /= norm;
            }
        }
        acc
    }

    /// Cosine similarity between the embeddings of two values.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        let ea = self.embed(a);
        let eb = self.embed(b);
        ea.iter().zip(eb.iter()).map(|(x, y)| x * y).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_determinism() {
        let e = HashEmbedder::new(16);
        assert_eq!(e.dim(), 16);
        let a = e.embed("Bob Johnson");
        let b = e.embed("Bob Johnson");
        assert_eq!(a.len(), 16);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_is_zero_vector() {
        let e = HashEmbedder::default();
        let z = e.embed("");
        assert!(z.iter().all(|&x| x == 0.0));
        let z2 = e.embed("   ");
        assert!(z2.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn embeddings_are_normalized() {
        let e = HashEmbedder::new(32);
        let v = e.embed("pneumonia");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn typos_are_closer_than_unrelated_words() {
        let e = HashEmbedder::new(48);
        let typo_sim = e.similarity("Bachelor", "Bechxlor");
        let unrelated_sim = e.similarity("Bachelor", "pneumonia");
        assert!(
            typo_sim > unrelated_sim,
            "typo similarity {typo_sim} should exceed unrelated {unrelated_sim}"
        );
        assert!(typo_sim > 0.1, "typo similarity {typo_sim} too low");
    }

    #[test]
    fn identical_strings_have_similarity_one() {
        let e = HashEmbedder::new(24);
        assert!((e.similarity("heart attack", "heart attack") - 1.0).abs() < 1e-5);
    }

    #[test]
    fn custom_ngram_range() {
        let e = HashEmbedder::with_ngrams(8, 2, 3);
        assert_eq!(e.embed("ab").len(), 8);
        // Short tokens still produce a non-zero vector via the whole-token hash.
        assert!(e.embed("a").iter().any(|&x| x != 0.0));
    }
}
