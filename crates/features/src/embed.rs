//! Subword-hashing embeddings (`f_sem`, paper §III-B).
//!
//! The paper averages pre-trained FastText word vectors over a cell value's
//! tokens. FastText itself represents a word as the sum of its character
//! n-gram vectors; this module reproduces that mechanism directly: each
//! character n-gram (3–5 characters, with `<`/`>` boundary markers) is hashed
//! into one of `dim` buckets with a deterministic sign, token vectors are the
//! normalised sum of their n-gram contributions, and the value embedding is
//! the average of its token vectors. Lexically similar strings (typos,
//! reformatted values) therefore land close together — the property ZeroED
//! relies on — without any external model file.
//!
//! The hot-path entry point is [`HashEmbedder::embed_into`], which writes into
//! a caller-supplied slice and performs **no per-call heap allocation**:
//! n-gram windows are hashed character-by-character (no per-window `String`),
//! and the token scratch buffers live in a thread-local arena reused across
//! calls. [`HashEmbedder::embed`] is the allocating convenience wrapper, and
//! [`HashEmbedder::embed_pool`] embeds a column's distinct-value pool in
//! parallel — the per-column embedding cache used by the feature builder, so
//! each distinct string is embedded exactly once no matter how many rows
//! repeat it.

use crate::matrix::FeatureMatrix;
use rayon::prelude::*;
use std::cell::RefCell;

/// Deterministic FNV-1a hash (64-bit). Production code hashes incrementally
/// via [`fnv1a_step`]/[`fnv1a_char`]; the slice form remains for the seed
/// reference implementation in the tests.
#[cfg(test)]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash = fnv1a_step(hash, b);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;

#[inline(always)]
fn fnv1a_step(mut hash: u64, byte: u8) -> u64 {
    hash ^= byte as u64;
    hash.wrapping_mul(0x100000001b3)
}

/// Feeds one char's UTF-8 bytes into an FNV-1a state.
#[inline(always)]
fn fnv1a_char(mut hash: u64, c: char) -> u64 {
    let mut buf = [0u8; 4];
    for &b in c.encode_utf8(&mut buf).as_bytes() {
        hash = fnv1a_step(hash, b);
    }
    hash
}

thread_local! {
    /// Reusable (marked-token chars, per-token accumulator) scratch space so
    /// `embed_into` allocates nothing after the first call on a thread.
    static SCRATCH: RefCell<(Vec<char>, Vec<f32>)> = RefCell::new((Vec::new(), Vec::new()));
}

/// Character n-gram hashing embedder.
#[derive(Debug, Clone)]
pub struct HashEmbedder {
    dim: usize,
    min_ngram: usize,
    max_ngram: usize,
}

impl Default for HashEmbedder {
    fn default() -> Self {
        Self::new(24)
    }
}

impl HashEmbedder {
    /// Creates an embedder producing `dim`-dimensional vectors with n-grams of
    /// length 3–5.
    pub fn new(dim: usize) -> Self {
        Self {
            dim: dim.max(1),
            min_ngram: 3,
            max_ngram: 5,
        }
    }

    /// Creates an embedder with a custom n-gram range.
    pub fn with_ngrams(dim: usize, min_ngram: usize, max_ngram: usize) -> Self {
        assert!(min_ngram >= 1 && max_ngram >= min_ngram);
        Self {
            dim: dim.max(1),
            min_ngram,
            max_ngram,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Accumulates one marked token (`marked` = `<` + lowercase chars + `>`,
    /// `token_hash` = FNV-1a over the unmarked token bytes) into `acc`,
    /// using `tmp` as the per-token scratch accumulator.
    fn accumulate_token(&self, marked: &[char], token_hash: u64, tmp: &mut [f32], acc: &mut [f32]) {
        tmp.iter_mut().for_each(|x| *x = 0.0);
        let mut n_grams = 0usize;
        for n in self.min_ngram..=self.max_ngram {
            if marked.len() < n {
                continue;
            }
            for window in marked.windows(n) {
                let mut h = FNV_OFFSET;
                for &c in window {
                    h = fnv1a_char(h, c);
                }
                let bucket = (h % self.dim as u64) as usize;
                let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
                tmp[bucket] += sign;
                n_grams += 1;
            }
        }
        // Also hash the whole token so very short tokens still contribute.
        let bucket = (token_hash % self.dim as u64) as usize;
        tmp[bucket] += if (token_hash >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        n_grams += 1;
        if n_grams > 0 {
            for x in tmp.iter_mut() {
                *x /= n_grams as f32;
            }
        }
        for (a, t) in acc.iter_mut().zip(tmp.iter()) {
            *a += t;
        }
    }

    /// Embeds a cell value into `out` (length must equal [`Self::dim`]):
    /// tokenises it, embeds each token and averages, then L2-normalises.
    /// Missing/empty values map to the zero vector.
    ///
    /// This is the allocation-free hot path: tokens are walked in place (no
    /// `Vec<String>`), windows are hashed char-by-char (no per-window
    /// `String`), and scratch space is a reused thread-local arena.
    pub fn embed_into(&self, value: &str, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "output slice must match embedder dim");
        out.iter_mut().for_each(|x| *x = 0.0);
        SCRATCH.with(|scratch| {
            let (marked, tmp) = &mut *scratch.borrow_mut();
            tmp.resize(self.dim, 0.0);
            let mut n_tokens = 0usize;
            let mut token_hash = FNV_OFFSET;
            marked.clear();
            marked.push('<');
            // Tokenise in place: alphanumeric runs, lowercased (mirroring
            // `zeroed_table::value::tokenize`), with `<`/`>` markers.
            for ch in value.chars() {
                if ch.is_alphanumeric() {
                    for lc in ch.to_lowercase() {
                        marked.push(lc);
                        token_hash = fnv1a_char(token_hash, lc);
                    }
                } else if marked.len() > 1 {
                    marked.push('>');
                    self.accumulate_token(marked, token_hash, tmp, out);
                    n_tokens += 1;
                    marked.clear();
                    marked.push('<');
                    token_hash = FNV_OFFSET;
                }
            }
            if marked.len() > 1 {
                marked.push('>');
                self.accumulate_token(marked, token_hash, tmp, out);
                n_tokens += 1;
            }
            if n_tokens == 0 {
                return;
            }
            for x in out.iter_mut() {
                *x /= n_tokens as f32;
            }
            let norm: f32 = out.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for x in out.iter_mut() {
                    *x /= norm;
                }
            }
        });
    }

    /// Embeds a cell value, allocating the output vector. See
    /// [`Self::embed_into`] for the non-allocating variant.
    pub fn embed(&self, value: &str) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        self.embed_into(value, &mut out);
        out
    }

    /// Embeds a column's distinct-value pool: one row per value, embedded in
    /// parallel. This is the per-column embedding cache of the interned
    /// featurisation path — each distinct string is embedded exactly once.
    pub fn embed_pool<S: AsRef<str> + Sync>(&self, values: &[S]) -> FeatureMatrix {
        let n = values.len();
        let mut pool = FeatureMatrix::zeros(n, self.dim);
        pool.data_mut()
            .par_chunks_mut(self.dim)
            .enumerate()
            .for_each(|(i, row)| self.embed_into(values[i].as_ref(), row));
        pool
    }

    /// Cosine similarity between the embeddings of two values.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        let ea = self.embed(a);
        let eb = self.embed(b);
        ea.iter().zip(eb.iter()).map(|(x, y)| x * y).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_table::value::tokenize;

    /// The seed implementation of `embed` (per-token `String` windows), kept
    /// as the arithmetic reference for the allocation-free rewrite.
    fn embed_reference(e: &HashEmbedder, value: &str) -> Vec<f32> {
        let tokens = tokenize(value);
        let mut acc = vec![0.0f32; e.dim];
        if tokens.is_empty() {
            return acc;
        }
        let mut tmp = vec![0.0f32; e.dim];
        for token in &tokens {
            tmp.iter_mut().for_each(|x| *x = 0.0);
            let marked: Vec<char> = std::iter::once('<')
                .chain(token.chars())
                .chain(std::iter::once('>'))
                .collect();
            let mut n_grams = 0usize;
            for n in e.min_ngram..=e.max_ngram {
                if marked.len() < n {
                    continue;
                }
                for window in marked.windows(n) {
                    let s: String = window.iter().collect();
                    let h = fnv1a(s.as_bytes());
                    let bucket = (h % e.dim as u64) as usize;
                    let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
                    tmp[bucket] += sign;
                    n_grams += 1;
                }
            }
            let h = fnv1a(token.as_bytes());
            let bucket = (h % e.dim as u64) as usize;
            tmp[bucket] += if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            n_grams += 1;
            if n_grams > 0 {
                for x in tmp.iter_mut() {
                    *x /= n_grams as f32;
                }
            }
            for (a, t) in acc.iter_mut().zip(tmp.iter()) {
                *a += t;
            }
        }
        for x in acc.iter_mut() {
            *x /= tokens.len() as f32;
        }
        let norm: f32 = acc.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for x in acc.iter_mut() {
                *x /= norm;
            }
        }
        acc
    }

    #[test]
    fn embed_into_matches_seed_reference_bit_for_bit() {
        let e = HashEmbedder::new(24);
        for value in [
            "Bob Johnson",
            "prophylactic antibiotic received within one hour",
            "80000",
            "(205) 325-8100",
            "a",
            "",
            "   ",
            "Ünïcode Tøkens 123",
            "x-y_z.9",
        ] {
            assert_eq!(e.embed(value), embed_reference(&e, value), "value {value:?}");
        }
        let short = HashEmbedder::with_ngrams(8, 2, 3);
        assert_eq!(short.embed("ab cd"), embed_reference(&short, "ab cd"));
    }

    #[test]
    fn dimensions_and_determinism() {
        let e = HashEmbedder::new(16);
        assert_eq!(e.dim(), 16);
        let a = e.embed("Bob Johnson");
        let b = e.embed("Bob Johnson");
        assert_eq!(a.len(), 16);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_is_zero_vector() {
        let e = HashEmbedder::default();
        let z = e.embed("");
        assert!(z.iter().all(|&x| x == 0.0));
        let z2 = e.embed("   ");
        assert!(z2.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn embeddings_are_normalized() {
        let e = HashEmbedder::new(32);
        let v = e.embed("pneumonia");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn typos_are_closer_than_unrelated_words() {
        let e = HashEmbedder::new(48);
        let typo_sim = e.similarity("Bachelor", "Bechxlor");
        let unrelated_sim = e.similarity("Bachelor", "pneumonia");
        assert!(
            typo_sim > unrelated_sim,
            "typo similarity {typo_sim} should exceed unrelated {unrelated_sim}"
        );
        assert!(typo_sim > 0.1, "typo similarity {typo_sim} too low");
    }

    #[test]
    fn identical_strings_have_similarity_one() {
        let e = HashEmbedder::new(24);
        assert!((e.similarity("heart attack", "heart attack") - 1.0).abs() < 1e-5);
    }

    #[test]
    fn custom_ngram_range() {
        let e = HashEmbedder::with_ngrams(8, 2, 3);
        assert_eq!(e.embed("ab").len(), 8);
        // Short tokens still produce a non-zero vector via the whole-token hash.
        assert!(e.embed("a").iter().any(|&x| x != 0.0));
    }

    #[test]
    fn embed_pool_matches_single_embeds() {
        let e = HashEmbedder::new(12);
        let values = vec!["alpha", "beta", "alpha beta", "", "42"];
        let pool = e.embed_pool(&values);
        assert_eq!(pool.n_rows(), 5);
        assert_eq!(pool.n_cols(), 12);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(pool.row(i), e.embed(v).as_slice(), "value {v:?}");
        }
    }
}
