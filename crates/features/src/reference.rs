//! The seed (pre-interning) featurisation path, kept verbatim as the
//! correctness oracle for the interned fast path.
//!
//! Every function here recomputes features per cell through the string-keyed
//! [`FrequencyModel`] accessors and a fresh embedding per value — exactly what
//! `FittedFeatures` did before the distinct-value interning refactor. The
//! equivalence tests (`tests/equivalence.rs`) assert the fast path produces
//! bit-identical output, and the `zeroed-bench` `bench_features` emitter uses
//! [`build_all_reference`] as the "before" timing when reporting speedups.
//!
//! [`FrequencyModel`]: crate::stats::FrequencyModel

use crate::matrix::FeatureMatrix;
use crate::pattern::Level;
use crate::unified::{FittedFeatures, TableFeatures};
use rayon::prelude::*;
use zeroed_table::value::is_missing;

/// Per-cell base vector, recomputed from scratch (seed implementation).
pub fn base_row_reference(
    fitted: &FittedFeatures<'_>,
    row: usize,
    col: usize,
    value_override: Option<&str>,
    extra_override: Option<&[f32]>,
) -> Vec<f32> {
    let value = value_override.unwrap_or_else(|| fitted.table.cell(row, col));
    let mut feat: Vec<f32> = Vec::new();
    if fitted.config.include_stats {
        feat.push(fitted.freq.value_frequency(col, value) as f32);
        feat.push(fitted.freq.pattern_frequency(col, value, Level::L1) as f32);
        feat.push(fitted.freq.pattern_frequency(col, value, Level::L2) as f32);
        feat.push(fitted.freq.pattern_frequency(col, value, Level::L3) as f32);
        for &q in &fitted.correlated[col] {
            feat.push(
                fitted
                    .freq
                    .vicinity_frequency(col, value, q, fitted.table.cell(row, q))
                    as f32,
            );
        }
        feat.push((value.chars().count() as f32 / 64.0).min(1.0));
        feat.push(if is_missing(value) { 1.0 } else { 0.0 });
    }
    if fitted.config.include_semantic {
        feat.extend(fitted.embedder.embed(value));
    }
    let extra_cell: Option<&[f32]> = extra_override.or_else(|| {
        fitted
            .extra
            .get(col)
            .filter(|v| !v.is_empty())
            .map(|v| v[row].as_slice())
    });
    if let Some(extra) = extra_cell {
        feat.extend(extra.iter().copied());
    }
    if feat.is_empty() {
        feat.push(0.0);
    }
    feat
}

/// Per-cell unified vector, recomputed from scratch (seed implementation).
pub fn unified_row_reference(
    fitted: &FittedFeatures<'_>,
    row: usize,
    col: usize,
    value_override: Option<&str>,
    extra_override: Option<&[f32]>,
) -> Vec<f32> {
    let mut feat = base_row_reference(fitted, row, col, value_override, extra_override);
    for &q in &fitted.correlated[col] {
        feat.extend(base_row_reference(fitted, row, q, None, None));
    }
    feat
}

/// Full-table materialisation through per-cell row vectors, `from_rows` and
/// chained `hconcat` (seed implementation, including its parallelism over
/// columns — so benchmark comparisons against the fast path measure the
/// algorithmic change, not a parallelism difference).
pub fn build_all_reference(fitted: &FittedFeatures<'_>) -> TableFeatures {
    let n_cols = fitted.table.n_cols();
    let n_rows = fitted.table.n_rows();
    let base: Vec<FeatureMatrix> = (0..n_cols)
        .into_par_iter()
        .map(|j| {
            let rows: Vec<Vec<f32>> = (0..n_rows)
                .map(|i| base_row_reference(fitted, i, j, None, None))
                .collect();
            FeatureMatrix::from_rows(rows)
        })
        .collect();
    let unified: Vec<FeatureMatrix> = (0..n_cols)
        .into_par_iter()
        .map(|j| {
            let mut m = base[j].clone();
            for &q in &fitted.correlated[j] {
                m = m.hconcat(&base[q]);
            }
            m
        })
        .collect();
    TableFeatures {
        unified,
        base,
        correlated: fitted.correlated.clone(),
    }
}
