//! A minimal FxHash-style multiplicative hasher for small fixed-width keys.
//!
//! The interned featurisation path keys its hot maps by `u32` codes or
//! `(u32, u32)` code pairs; the default SipHash is overkill for 8-byte keys
//! and dominates lookup cost. This hasher (rotate-xor-multiply per word, the
//! scheme rustc's `FxHashMap` uses) is a few times faster and perfectly
//! adequate for non-adversarial interned codes.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotate-xor-multiply hasher over 64-bit words.
#[derive(Default, Clone)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub(crate) type FxBuild = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn pair_keys_round_trip() {
        let mut map: HashMap<(u32, u32), usize, FxBuild> = HashMap::default();
        for a in 0..50u32 {
            for b in 0..50u32 {
                map.insert((a, b), (a * 100 + b) as usize);
            }
        }
        assert_eq!(map.len(), 2500);
        assert_eq!(map[&(7, 13)], 713);
        assert_eq!(map.get(&(99, 99)), None);
    }
}
