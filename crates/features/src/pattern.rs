//! Three-level pattern generalisation of cell values (paper §III-B).
//!
//! A value is generalised by replacing characters with class symbols and
//! run-length encoding the result:
//!
//! * **L1** keeps only the distinction between alphanumeric characters (`A`)
//!   and everything else (kept literally);
//! * **L2** distinguishes letters (`L`), digits (`D`) and symbols (`S`);
//! * **L3** additionally splits letters into uppercase (`U`) and lowercase
//!   (`u`).
//!
//! For example `"DOe123."` generalises to `A[6].` (L1), `L[3]D[3]S[1]` (L2)
//! and `U[2]u[1]D[3]S[1]` (L3), exactly as in the paper's example.

use serde::{Deserialize, Serialize};

/// Pattern generalisation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Alphanumeric runs collapsed to `A[n]`, other characters literal.
    L1,
    /// Letters/digits/symbols (`L`/`D`/`S`).
    L2,
    /// Uppercase/lowercase/digits/symbols (`U`/`u`/`D`/`S`).
    L3,
}

impl Level {
    /// All three levels, coarsest first.
    pub const ALL: [Level; 3] = [Level::L1, Level::L2, Level::L3];
}

fn classify(c: char, level: Level) -> char {
    match level {
        Level::L1 => {
            if c.is_alphanumeric() {
                'A'
            } else {
                c
            }
        }
        Level::L2 => {
            if c.is_alphabetic() {
                'L'
            } else if c.is_ascii_digit() {
                'D'
            } else {
                'S'
            }
        }
        Level::L3 => {
            if c.is_uppercase() {
                'U'
            } else if c.is_alphabetic() {
                'u'
            } else if c.is_ascii_digit() {
                'D'
            } else {
                'S'
            }
        }
    }
}

/// Generalises `value` at the requested [`Level`].
///
/// Runs of identical class symbols are collapsed to `C[len]`; literal
/// characters (only possible at L1) are emitted as-is.
pub fn generalize(value: &str, level: Level) -> String {
    let mut out = String::new();
    let mut run_char: Option<char> = None;
    let mut run_len = 0usize;
    let flush = |out: &mut String, c: char, len: usize| {
        if len == 0 {
            return;
        }
        if matches!(c, 'A' | 'L' | 'D' | 'S' | 'U' | 'u') {
            out.push(c);
            out.push('[');
            out.push_str(&len.to_string());
            out.push(']');
        } else {
            // Literal characters at L1: repeat them.
            for _ in 0..len {
                out.push(c);
            }
        }
    };
    for c in value.chars() {
        let sym = classify(c, level);
        // At L1, non-alphanumerics stay literal and must not merge with 'A'.
        match run_char {
            Some(prev) if prev == sym => run_len += 1,
            Some(prev) => {
                flush(&mut out, prev, run_len);
                run_char = Some(sym);
                run_len = 1;
            }
            None => {
                run_char = Some(sym);
                run_len = 1;
            }
        }
    }
    if let Some(prev) = run_char {
        flush(&mut out, prev, run_len);
    }
    out
}

/// Generalises a value at every level, returning `[L1, L2, L3]`.
pub fn generalize_all(value: &str) -> [String; 3] {
    [
        generalize(value, Level::L1),
        generalize(value, Level::L2),
        generalize(value, Level::L3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_example() {
        assert_eq!(generalize("DOe123.", Level::L1), "A[6].");
        assert_eq!(generalize("DOe123.", Level::L2), "L[3]D[3]S[1]");
        assert_eq!(generalize("DOe123.", Level::L3), "U[2]u[1]D[3]S[1]");
    }

    #[test]
    fn empty_and_symbol_only() {
        assert_eq!(generalize("", Level::L1), "");
        assert_eq!(generalize("---", Level::L1), "---");
        assert_eq!(generalize("---", Level::L2), "S[3]");
    }

    #[test]
    fn mixed_value() {
        assert_eq!(generalize("ab 12", Level::L2), "L[2]S[1]D[2]");
        assert_eq!(generalize("AB cd", Level::L3), "U[2]S[1]u[2]");
        assert_eq!(generalize("7:45 am", Level::L2), "D[1]S[1]D[2]S[1]L[2]");
    }

    #[test]
    fn same_format_same_pattern() {
        // Two distinct values with the same format produce identical patterns.
        assert_eq!(
            generalize("(205) 325-8100", Level::L3),
            generalize("(714) 999-1234", Level::L3)
        );
        assert_ne!(
            generalize("(205) 325-8100", Level::L3),
            generalize("205-325-8100", Level::L3)
        );
    }

    #[test]
    fn generalize_all_produces_three() {
        let [l1, l2, l3] = generalize_all("Abc9");
        assert_eq!(l1, "A[4]");
        assert_eq!(l2, "L[3]D[1]");
        assert_eq!(l3, "U[1]u[2]D[1]");
    }
}
