//! A simple dense, row-major `f32` feature matrix.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f32` features: one row per cell value of an
/// attribute, one column per feature dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f32>,
}

impl FeatureMatrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// Builds a matrix from per-row vectors. All rows must share a length;
    /// panics otherwise (programming error).
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in &rows {
            assert_eq!(row.len(), n_cols, "all feature rows must share a dimension");
            data.extend_from_slice(row);
        }
        Self {
            n_rows,
            n_cols,
            data,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature dimensions.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Borrow one row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Mutable borrow of one row.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// The underlying flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Returns a new matrix keeping only the selected rows.
    pub fn select_rows(&self, indices: &[usize]) -> FeatureMatrix {
        let mut out = FeatureMatrix::zeros(indices.len(), self.n_cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Horizontally concatenates two matrices with the same row count.
    pub fn hconcat(&self, other: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(
            self.n_rows, other.n_rows,
            "hconcat requires matching row counts"
        );
        let mut out = FeatureMatrix::zeros(self.n_rows, self.n_cols + other.n_cols);
        for i in 0..self.n_rows {
            out.row_mut(i)[..self.n_cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.n_cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Squared Euclidean distance between two rows of (possibly different)
    /// matrices with the same dimensionality.
    pub fn sq_distance(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = FeatureMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let z = FeatureMatrix::zeros(3, 2);
        assert_eq!(z.row(2), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn ragged_rows_panic() {
        let _ = FeatureMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn select_and_concat() {
        let m = FeatureMatrix::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
        let n = FeatureMatrix::from_rows(vec![vec![9.0], vec![8.0], vec![7.0]]);
        let c = m.hconcat(&n);
        assert_eq!(c.n_cols(), 2);
        assert_eq!(c.row(1), &[2.0, 8.0]);
    }

    #[test]
    fn distances() {
        assert_eq!(FeatureMatrix::sq_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(FeatureMatrix::sq_distance(&[1.0], &[1.0]), 0.0);
    }
}
