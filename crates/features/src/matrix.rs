//! A simple dense, row-major `f32` feature matrix.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f32` features: one row per cell value of an
/// attribute, one column per feature dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f32>,
}

impl FeatureMatrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// Builds a matrix from per-row vectors. All rows must share a length;
    /// panics otherwise (programming error).
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in &rows {
            assert_eq!(row.len(), n_cols, "all feature rows must share a dimension");
            data.extend_from_slice(row);
        }
        Self {
            n_rows,
            n_cols,
            data,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature dimensions.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Borrow one row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Mutable borrow of one row.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Builds a matrix from an existing flat row-major buffer.
    ///
    /// Panics when `data.len() != n_rows * n_cols` (programming error).
    pub fn from_flat(n_rows: usize, n_cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            n_rows * n_cols,
            "flat buffer must hold n_rows * n_cols values"
        );
        Self {
            n_rows,
            n_cols,
            data,
        }
    }

    /// The underlying flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer (used by the zero-copy
    /// feature assembly to scatter per-distinct-value blocks into rows, and to
    /// split the buffer into disjoint row chunks for parallel writers).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrowed references to every row in order — the view the clustering
    /// and detector layers consume (`&[&[f32]]`) without copying any data.
    pub fn row_refs(&self) -> Vec<&[f32]> {
        (0..self.n_rows).map(|i| self.row(i)).collect()
    }

    /// Returns a new matrix keeping only the selected rows.
    pub fn select_rows(&self, indices: &[usize]) -> FeatureMatrix {
        let mut out = FeatureMatrix::zeros(indices.len(), self.n_cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Horizontally concatenates two matrices with the same row count.
    pub fn hconcat(&self, other: &FeatureMatrix) -> FeatureMatrix {
        FeatureMatrix::hconcat_all(&[self, other])
    }

    /// Horizontally concatenates any number of matrices with the same row
    /// count in a single pass.
    ///
    /// Unlike chaining [`FeatureMatrix::hconcat`] — which re-copies the whole
    /// accumulated prefix on every step (`O(parts² · cells)`) — every input
    /// cell is written exactly once. An empty `parts` yields a 0×0 matrix.
    pub fn hconcat_all(parts: &[&FeatureMatrix]) -> FeatureMatrix {
        let Some(first) = parts.first() else {
            return FeatureMatrix::zeros(0, 0);
        };
        let n_rows = first.n_rows;
        for part in parts {
            assert_eq!(
                part.n_rows, n_rows,
                "hconcat_all requires matching row counts"
            );
        }
        let n_cols: usize = parts.iter().map(|p| p.n_cols).sum();
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for i in 0..n_rows {
            for part in parts {
                data.extend_from_slice(part.row(i));
            }
        }
        FeatureMatrix::from_flat(n_rows, n_cols, data)
    }

    /// Squared Euclidean distance between two rows of (possibly different)
    /// matrices with the same dimensionality.
    pub fn sq_distance(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = FeatureMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let z = FeatureMatrix::zeros(3, 2);
        assert_eq!(z.row(2), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn ragged_rows_panic() {
        let _ = FeatureMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn select_and_concat() {
        let m = FeatureMatrix::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
        let n = FeatureMatrix::from_rows(vec![vec![9.0], vec![8.0], vec![7.0]]);
        let c = m.hconcat(&n);
        assert_eq!(c.n_cols(), 2);
        assert_eq!(c.row(1), &[2.0, 8.0]);
    }

    #[test]
    fn hconcat_all_single_pass_matches_chained_concat() {
        let a = FeatureMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = FeatureMatrix::from_rows(vec![vec![5.0], vec![6.0]]);
        let c = FeatureMatrix::from_rows(vec![vec![7.0, 8.0, 9.0], vec![10.0, 11.0, 12.0]]);
        let chained = a.hconcat(&b).hconcat(&c);
        let single = FeatureMatrix::hconcat_all(&[&a, &b, &c]);
        assert_eq!(single, chained);
        assert_eq!(single.n_cols(), 6);
        assert_eq!(single.row(0), &[1.0, 2.0, 5.0, 7.0, 8.0, 9.0]);
        // Degenerate arities.
        assert_eq!(FeatureMatrix::hconcat_all(&[&a]), a);
        let empty = FeatureMatrix::hconcat_all(&[]);
        assert_eq!(empty.n_rows(), 0);
        assert_eq!(empty.n_cols(), 0);
    }

    #[test]
    fn from_flat_round_trips() {
        let m = FeatureMatrix::from_flat(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "n_rows * n_cols")]
    fn from_flat_checks_length() {
        let _ = FeatureMatrix::from_flat(2, 3, vec![0.0; 5]);
    }

    #[test]
    fn distances() {
        assert_eq!(FeatureMatrix::sq_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(FeatureMatrix::sq_distance(&[1.0], &[1.0]), 0.0);
    }
}
