//! Statistical frequency features (paper §III-B, `f_stat` and `f_pat`).
//!
//! Three frequency families are computed for a cell value `D[i, j]`:
//!
//! * **value frequency** — how often the value occurs in its own attribute;
//! * **vicinity frequency** — for another attribute `a_q`, how often the pair
//!   `(D[i,q], D[i,j])` co-occurs, normalised by the frequency of `D[i,q]`
//!   (an empirical estimate of `P(D[i,j] | D[i,q])`);
//! * **pattern frequency** — how often the value's generalised pattern (at
//!   levels L1–L3) occurs within the attribute.

use crate::pattern::{generalize, Level};
use std::collections::HashMap;
use zeroed_table::Table;

/// Pre-computed per-attribute frequency statistics for one table.
#[derive(Debug, Clone)]
pub struct FrequencyModel {
    n_rows: usize,
    /// Per column: value → count.
    value_counts: Vec<HashMap<String, usize>>,
    /// Per column and level: pattern → count.
    pattern_counts: Vec<[HashMap<String, usize>; 3]>,
    /// Lazily built co-occurrence maps keyed by (col_j, col_q):
    /// (value_j, value_q) → count.
    pair_counts: HashMap<(usize, usize), HashMap<(String, String), usize>>,
}

impl FrequencyModel {
    /// Builds value and pattern counts for every column of the table.
    pub fn new(table: &Table) -> Self {
        let n_cols = table.n_cols();
        let n_rows = table.n_rows();
        let mut value_counts = vec![HashMap::new(); n_cols];
        let mut pattern_counts: Vec<[HashMap<String, usize>; 3]> = (0..n_cols)
            .map(|_| [HashMap::new(), HashMap::new(), HashMap::new()])
            .collect();
        for row in table.rows() {
            for (j, v) in row.iter().enumerate() {
                *value_counts[j].entry(v.clone()).or_insert(0) += 1;
                for (li, level) in Level::ALL.iter().enumerate() {
                    let pat = generalize(v, *level);
                    *pattern_counts[j][li].entry(pat).or_insert(0) += 1;
                }
            }
        }
        Self {
            n_rows,
            value_counts,
            pattern_counts,
            pair_counts: HashMap::new(),
        }
    }

    /// Number of rows of the underlying table.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Relative frequency of `value` within column `col` (0 when unseen).
    pub fn value_frequency(&self, col: usize, value: &str) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        *self.value_counts[col].get(value).unwrap_or(&0) as f64 / self.n_rows as f64
    }

    /// Absolute count of `value` within column `col`.
    pub fn value_count(&self, col: usize, value: &str) -> usize {
        *self.value_counts[col].get(value).unwrap_or(&0)
    }

    /// Number of distinct values in a column.
    pub fn distinct_count(&self, col: usize) -> usize {
        self.value_counts[col].len()
    }

    /// Relative frequency of the value's generalised pattern at `level`.
    pub fn pattern_frequency(&self, col: usize, value: &str, level: Level) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        let li = match level {
            Level::L1 => 0,
            Level::L2 => 1,
            Level::L3 => 2,
        };
        let pat = generalize(value, level);
        *self.pattern_counts[col][li].get(&pat).unwrap_or(&0) as f64 / self.n_rows as f64
    }

    /// Ensures the co-occurrence map for `(col_j, col_q)` is built. Pair maps
    /// are constructed lazily because only the top-`k` correlated attribute
    /// pairs are ever requested.
    pub fn prepare_pair(&mut self, table: &Table, col_j: usize, col_q: usize) {
        if col_j == col_q || self.pair_counts.contains_key(&(col_j, col_q)) {
            return;
        }
        let mut map: HashMap<(String, String), usize> = HashMap::new();
        for row in table.rows() {
            *map.entry((row[col_j].clone(), row[col_q].clone()))
                .or_insert(0) += 1;
        }
        self.pair_counts.insert((col_j, col_q), map);
    }

    /// Vicinity frequency: empirical `P(value_j | value_q)` where `value_q`
    /// is the co-occurring value in attribute `col_q`.
    ///
    /// Returns the value frequency when `col_j == col_q` (the paper's
    /// definition collapses to the value frequency in that case). The pair map
    /// must have been prepared with [`FrequencyModel::prepare_pair`];
    /// otherwise 0 is returned.
    pub fn vicinity_frequency(
        &self,
        col_j: usize,
        value_j: &str,
        col_q: usize,
        value_q: &str,
    ) -> f64 {
        if col_j == col_q {
            return self.value_frequency(col_j, value_j);
        }
        let denom = self.value_count(col_q, value_q);
        if denom == 0 {
            return 0.0;
        }
        let num = self
            .pair_counts
            .get(&(col_j, col_q))
            .and_then(|m| m.get(&(value_j.to_string(), value_q.to_string())))
            .copied()
            .unwrap_or(0);
        num as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "t",
            vec!["name".into(), "gender".into(), "salary".into()],
            vec![
                vec!["bob".into(), "M".into(), "80000".into()],
                vec!["bob".into(), "M".into(), "80000".into()],
                vec!["carol".into(), "F".into(), "6000".into()],
                vec!["dave".into(), "M".into(), "64000".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn value_frequency() {
        let fm = FrequencyModel::new(&table());
        assert!((fm.value_frequency(0, "bob") - 0.5).abs() < 1e-12);
        assert!((fm.value_frequency(0, "carol") - 0.25).abs() < 1e-12);
        assert_eq!(fm.value_frequency(0, "unknown"), 0.0);
        assert_eq!(fm.value_count(1, "M"), 3);
        assert_eq!(fm.distinct_count(0), 3);
    }

    #[test]
    fn pattern_frequency_groups_same_formats() {
        let fm = FrequencyModel::new(&table());
        // All salaries are digit strings; at L2 they share a pattern family
        // (D[5] for the 5-digit ones, D[4] for 6000).
        assert!((fm.pattern_frequency(2, "80000", Level::L2) - 0.75).abs() < 1e-12);
        assert!((fm.pattern_frequency(2, "6000", Level::L2) - 0.25).abs() < 1e-12);
        // L2 pattern of a new 5-digit value is still frequent even if unseen.
        assert!((fm.pattern_frequency(2, "99999", Level::L2) - 0.75).abs() < 1e-12);
        // L1 keeps run lengths: "bob" (A[3]) appears twice out of four names.
        assert!((fm.pattern_frequency(0, "bob", Level::L1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn vicinity_frequency_estimates_conditionals() {
        let t = table();
        let mut fm = FrequencyModel::new(&t);
        fm.prepare_pair(&t, 1, 0); // P(gender | name)
        assert!((fm.vicinity_frequency(1, "M", 0, "bob") - 1.0).abs() < 1e-12);
        assert_eq!(fm.vicinity_frequency(1, "F", 0, "bob"), 0.0);
        // Same column collapses to value frequency.
        assert!((fm.vicinity_frequency(1, "M", 1, "M") - 0.75).abs() < 1e-12);
        // Unknown conditioning value.
        assert_eq!(fm.vicinity_frequency(1, "M", 0, "nobody"), 0.0);
        // Unprepared pair returns 0 rather than panicking.
        assert_eq!(fm.vicinity_frequency(2, "80000", 0, "bob"), 0.0);
    }

    #[test]
    fn empty_table() {
        let t = Table::empty("e", vec!["a".into()]);
        let fm = FrequencyModel::new(&t);
        assert_eq!(fm.value_frequency(0, "x"), 0.0);
        assert_eq!(fm.pattern_frequency(0, "x", Level::L1), 0.0);
        assert_eq!(fm.n_rows(), 0);
    }
}
