//! Statistical frequency features (paper §III-B, `f_stat` and `f_pat`).
//!
//! Three frequency families are computed for a cell value `D[i, j]`:
//!
//! * **value frequency** — how often the value occurs in its own attribute;
//! * **vicinity frequency** — for another attribute `a_q`, how often the pair
//!   `(D[i,q], D[i,j])` co-occurs, normalised by the frequency of `D[i,q]`
//!   (an empirical estimate of `P(D[i,j] | D[i,q])`);
//! * **pattern frequency** — how often the value's generalised pattern (at
//!   levels L1–L3) occurs within the attribute.
//!
//! All counts are keyed by the table's interned value codes
//! ([`zeroed_table::TableDict`]): value counts come straight from the
//! dictionary, pattern generalisation runs once per *distinct* value with the
//! per-code pattern count memoised, and co-occurrence maps are keyed by
//! `(u32, u32)` code pairs instead of owned `(String, String)` pairs. The
//! string-keyed accessors remain for arbitrary (e.g. hypothetical) values and
//! produce results identical to the seed implementation.

use crate::fx::FxBuild;
use crate::pattern::{generalize, Level};
use std::collections::HashMap;
use std::sync::Arc;
use zeroed_table::{Table, TableDict};

fn level_index(level: Level) -> usize {
    match level {
        Level::L1 => 0,
        Level::L2 => 1,
        Level::L3 => 2,
    }
}

/// Pre-computed per-attribute frequency statistics for one table.
#[derive(Debug, Clone)]
pub struct FrequencyModel {
    dict: Arc<TableDict>,
    n_rows: usize,
    /// Per column and level: pattern → count (serves arbitrary-value queries).
    pattern_counts: Vec<[HashMap<String, usize>; 3]>,
    /// Per column and level: memoised pattern count of each distinct code.
    pattern_count_of_code: Vec<[Vec<usize>; 3]>,
    /// Lazily built co-occurrence maps keyed by (col_j, col_q):
    /// (code_j, code_q) → count.
    pair_counts: HashMap<(usize, usize), HashMap<(u32, u32), usize, FxBuild>>,
    /// Per prepared pair: the co-occurrence count of each *row's* code pair,
    /// so the full-table scatter reads an array instead of hashing.
    pair_row_counts: HashMap<(usize, usize), Vec<u32>>,
}

impl FrequencyModel {
    /// Builds value and pattern counts for every column of the table.
    pub fn new(table: &Table) -> Self {
        Self::from_dict(Arc::new(table.intern()))
    }

    /// Builds the model over an existing dictionary (shared with other
    /// featurisation layers so the table is interned exactly once).
    pub fn from_dict(dict: Arc<TableDict>) -> Self {
        let n_rows = dict.n_rows();
        let n_cols = dict.n_cols();
        let mut pattern_counts: Vec<[HashMap<String, usize>; 3]> = (0..n_cols)
            .map(|_| [HashMap::new(), HashMap::new(), HashMap::new()])
            .collect();
        let mut pattern_count_of_code: Vec<[Vec<usize>; 3]> = Vec::with_capacity(n_cols);
        for j in 0..n_cols {
            let col = dict.column(j);
            // Generalise each *distinct* value once; a pattern's count is the
            // sum of the value counts mapping to it.
            let mut pattern_of_code: [Vec<String>; 3] =
                [Vec::new(), Vec::new(), Vec::new()];
            for (code, value) in col.values().iter().enumerate() {
                for (li, level) in Level::ALL.iter().enumerate() {
                    let pat = generalize(value, *level);
                    *pattern_counts[j][li].entry(pat.clone()).or_insert(0) +=
                        col.count(code as u32) as usize;
                    pattern_of_code[li].push(pat);
                }
            }
            let memo: [Vec<usize>; 3] = std::array::from_fn(|li| {
                pattern_of_code[li]
                    .iter()
                    .map(|pat| pattern_counts[j][li][pat])
                    .collect()
            });
            pattern_count_of_code.push(memo);
        }
        Self {
            dict,
            n_rows,
            pattern_counts,
            pattern_count_of_code,
            pair_counts: HashMap::new(),
            pair_row_counts: HashMap::new(),
        }
    }

    /// Number of rows of the underlying table.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The shared distinct-value dictionary.
    pub fn dict(&self) -> &Arc<TableDict> {
        &self.dict
    }

    /// Relative frequency of `value` within column `col` (0 when unseen).
    pub fn value_frequency(&self, col: usize, value: &str) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        self.value_count(col, value) as f64 / self.n_rows as f64
    }

    /// Relative frequency of the distinct value `code` within column `col`.
    #[inline]
    pub fn value_frequency_code(&self, col: usize, code: u32) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        self.dict.column(col).count(code) as f64 / self.n_rows as f64
    }

    /// Absolute count of `value` within column `col`.
    pub fn value_count(&self, col: usize, value: &str) -> usize {
        let col_dict = self.dict.column(col);
        col_dict
            .lookup(value)
            .map(|code| col_dict.count(code) as usize)
            .unwrap_or(0)
    }

    /// Number of distinct values in a column.
    pub fn distinct_count(&self, col: usize) -> usize {
        self.dict.column(col).n_distinct()
    }

    /// Relative frequency of the value's generalised pattern at `level`.
    pub fn pattern_frequency(&self, col: usize, value: &str, level: Level) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        let li = level_index(level);
        // Memoised fast path for values that occur in the table.
        if let Some(code) = self.dict.column(col).lookup(value) {
            return self.pattern_count_of_code[col][li][code as usize] as f64
                / self.n_rows as f64;
        }
        let pat = generalize(value, level);
        *self.pattern_counts[col][li].get(&pat).unwrap_or(&0) as f64 / self.n_rows as f64
    }

    /// Relative frequency of the pattern of distinct value `code` at `level`.
    #[inline]
    pub fn pattern_frequency_code(&self, col: usize, code: u32, level: Level) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        self.pattern_count_of_code[col][level_index(level)][code as usize] as f64
            / self.n_rows as f64
    }

    /// Ensures the co-occurrence map for `(col_j, col_q)` is built. Pair maps
    /// are constructed lazily because only the top-`k` correlated attribute
    /// pairs are ever requested. `table` must be the table the model was built
    /// from (kept in the signature for API compatibility; the codes come from
    /// the shared dictionary).
    pub fn prepare_pair(&mut self, _table: &Table, col_j: usize, col_q: usize) {
        if col_j == col_q || self.pair_counts.contains_key(&(col_j, col_q)) {
            return;
        }
        let codes_j = self.dict.column(col_j).codes();
        let codes_q = self.dict.column(col_q).codes();
        let mut map: HashMap<(u32, u32), usize, FxBuild> = HashMap::default();
        for (&cj, &cq) in codes_j.iter().zip(codes_q.iter()) {
            *map.entry((cj, cq)).or_insert(0) += 1;
        }
        // Memoise each row's own pair count so the build_all scatter does a
        // single array read per vicinity slot instead of a map lookup.
        let row_counts: Vec<u32> = codes_j
            .iter()
            .zip(codes_q.iter())
            .map(|(&cj, &cq)| map[&(cj, cq)] as u32)
            .collect();
        self.pair_row_counts.insert((col_j, col_q), row_counts);
        self.pair_counts.insert((col_j, col_q), map);
    }

    /// Vicinity frequency: empirical `P(value_j | value_q)` where `value_q`
    /// is the co-occurring value in attribute `col_q`.
    ///
    /// Returns the value frequency when `col_j == col_q` (the paper's
    /// definition collapses to the value frequency in that case). The pair map
    /// must have been prepared with [`FrequencyModel::prepare_pair`];
    /// otherwise 0 is returned.
    pub fn vicinity_frequency(
        &self,
        col_j: usize,
        value_j: &str,
        col_q: usize,
        value_q: &str,
    ) -> f64 {
        if col_j == col_q {
            return self.value_frequency(col_j, value_j);
        }
        let Some(code_q) = self.dict.column(col_q).lookup(value_q) else {
            return 0.0;
        };
        let Some(code_j) = self.dict.column(col_j).lookup(value_j) else {
            // Unknown value_j cannot co-occur with anything, but an unknown
            // conditioning value must still yield 0 before the denominator is
            // consulted — both branches return 0, matching the seed.
            return 0.0;
        };
        self.vicinity_frequency_code(col_j, code_j, col_q, code_q)
    }

    /// Vicinity frequency of row `row`'s own cell pair in `(col_j, col_q)` —
    /// the hash-free hot path of the full-table scatter. Must only be called
    /// for prepared pairs with `col_j != col_q`.
    #[inline]
    pub fn vicinity_frequency_row(&self, col_j: usize, col_q: usize, row: usize) -> f64 {
        debug_assert_ne!(col_j, col_q);
        let Some(row_counts) = self.pair_row_counts.get(&(col_j, col_q)) else {
            return 0.0;
        };
        let denom = self.dict.column(col_q).count(self.dict.column(col_q).code(row));
        if denom == 0 {
            return 0.0;
        }
        row_counts[row] as f64 / denom as f64
    }

    /// Code-keyed vicinity frequency (fast path for values in the table).
    #[inline]
    pub fn vicinity_frequency_code(
        &self,
        col_j: usize,
        code_j: u32,
        col_q: usize,
        code_q: u32,
    ) -> f64 {
        if col_j == col_q {
            return self.value_frequency_code(col_j, code_j);
        }
        let denom = self.dict.column(col_q).count(code_q) as usize;
        if denom == 0 {
            return 0.0;
        }
        let num = self
            .pair_counts
            .get(&(col_j, col_q))
            .and_then(|m| m.get(&(code_j, code_q)))
            .copied()
            .unwrap_or(0);
        num as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "t",
            vec!["name".into(), "gender".into(), "salary".into()],
            vec![
                vec!["bob".into(), "M".into(), "80000".into()],
                vec!["bob".into(), "M".into(), "80000".into()],
                vec!["carol".into(), "F".into(), "6000".into()],
                vec!["dave".into(), "M".into(), "64000".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn value_frequency() {
        let fm = FrequencyModel::new(&table());
        assert!((fm.value_frequency(0, "bob") - 0.5).abs() < 1e-12);
        assert!((fm.value_frequency(0, "carol") - 0.25).abs() < 1e-12);
        assert_eq!(fm.value_frequency(0, "unknown"), 0.0);
        assert_eq!(fm.value_count(1, "M"), 3);
        assert_eq!(fm.distinct_count(0), 3);
    }

    #[test]
    fn code_accessors_match_string_accessors() {
        let t = table();
        let fm = FrequencyModel::new(&t);
        let dict = fm.dict().clone();
        for j in 0..t.n_cols() {
            for i in 0..t.n_rows() {
                let value = t.cell(i, j);
                let code = dict.column(j).code(i);
                assert_eq!(fm.value_frequency(j, value), fm.value_frequency_code(j, code));
                for level in Level::ALL {
                    assert_eq!(
                        fm.pattern_frequency(j, value, level),
                        fm.pattern_frequency_code(j, code, level)
                    );
                }
            }
        }
    }

    #[test]
    fn pattern_frequency_groups_same_formats() {
        let fm = FrequencyModel::new(&table());
        // All salaries are digit strings; at L2 they share a pattern family
        // (D[5] for the 5-digit ones, D[4] for 6000).
        assert!((fm.pattern_frequency(2, "80000", Level::L2) - 0.75).abs() < 1e-12);
        assert!((fm.pattern_frequency(2, "6000", Level::L2) - 0.25).abs() < 1e-12);
        // L2 pattern of a new 5-digit value is still frequent even if unseen.
        assert!((fm.pattern_frequency(2, "99999", Level::L2) - 0.75).abs() < 1e-12);
        // L1 keeps run lengths: "bob" (A[3]) appears twice out of four names.
        assert!((fm.pattern_frequency(0, "bob", Level::L1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn vicinity_frequency_estimates_conditionals() {
        let t = table();
        let mut fm = FrequencyModel::new(&t);
        fm.prepare_pair(&t, 1, 0); // P(gender | name)
        assert!((fm.vicinity_frequency(1, "M", 0, "bob") - 1.0).abs() < 1e-12);
        assert_eq!(fm.vicinity_frequency(1, "F", 0, "bob"), 0.0);
        // Same column collapses to value frequency.
        assert!((fm.vicinity_frequency(1, "M", 1, "M") - 0.75).abs() < 1e-12);
        // Unknown conditioning value.
        assert_eq!(fm.vicinity_frequency(1, "M", 0, "nobody"), 0.0);
        // Unprepared pair returns 0 rather than panicking.
        assert_eq!(fm.vicinity_frequency(2, "80000", 0, "bob"), 0.0);
    }

    #[test]
    fn row_vicinity_matches_code_and_string_paths() {
        let t = table();
        let mut fm = FrequencyModel::new(&t);
        fm.prepare_pair(&t, 1, 0);
        let dict = fm.dict().clone();
        for row in 0..t.n_rows() {
            let by_row = fm.vicinity_frequency_row(1, 0, row);
            let by_code = fm.vicinity_frequency_code(
                1,
                dict.column(1).code(row),
                0,
                dict.column(0).code(row),
            );
            let by_string = fm.vicinity_frequency(1, t.cell(row, 1), 0, t.cell(row, 0));
            assert_eq!(by_row, by_code, "row {row}");
            assert_eq!(by_row, by_string, "row {row}");
        }
        // Unprepared pair stays 0.
        assert_eq!(fm.vicinity_frequency_row(2, 0, 0), 0.0);
    }

    #[test]
    fn empty_table() {
        let t = Table::empty("e", vec!["a".into()]);
        let fm = FrequencyModel::new(&t);
        assert_eq!(fm.value_frequency(0, "x"), 0.0);
        assert_eq!(fm.pattern_frequency(0, "x", Level::L1), 0.0);
        assert_eq!(fm.n_rows(), 0);
    }
}
