//! Normalised mutual information between attributes (paper §III-B).
//!
//! ZeroED identifies the attributes most correlated with a target attribute by
//! computing NMI over the empirical joint distribution of their values and
//! keeping the top-`k`. NMI captures both linear and non-linear dependencies
//! and is normalised to `[0, 1]`.

use std::collections::HashMap;
use zeroed_table::{Table, TableDict};

/// Computes the normalised mutual information between two value sequences of
/// equal length.
///
/// `NMI(X, Y) = I(X; Y) / sqrt(H(X) * H(Y))`, with probabilities estimated by
/// relative frequencies. Returns 0 when either entropy is 0 (constant column).
pub fn normalized_mutual_information(xs: &[&str], ys: &[&str]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "NMI requires equal-length columns");
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mut px: HashMap<&str, f64> = HashMap::new();
    let mut py: HashMap<&str, f64> = HashMap::new();
    let mut pxy: HashMap<(&str, &str), f64> = HashMap::new();
    let inc = 1.0 / n as f64;
    for (x, y) in xs.iter().zip(ys.iter()) {
        *px.entry(x).or_insert(0.0) += inc;
        *py.entry(y).or_insert(0.0) += inc;
        *pxy.entry((x, y)).or_insert(0.0) += inc;
    }
    let hx: f64 = -px.values().map(|p| p * p.ln()).sum::<f64>();
    let hy: f64 = -py.values().map(|p| p * p.ln()).sum::<f64>();
    if hx <= 1e-12 || hy <= 1e-12 {
        return 0.0;
    }
    let mut mi = 0.0;
    for ((x, y), p) in &pxy {
        let denom = px[x] * py[y];
        if *p > 0.0 && denom > 0.0 {
            mi += p * (p / denom).ln();
        }
    }
    (mi / (hx * hy).sqrt()).clamp(0.0, 1.0)
}

/// Computes NMI between two columns of a table.
pub fn column_nmi(table: &Table, col_a: usize, col_b: usize) -> f64 {
    let xs = table.column_refs(col_a);
    let ys = table.column_refs(col_b);
    normalized_mutual_information(&xs, &ys)
}

/// NMI over two equal-length interned code sequences.
///
/// Identical in definition to [`normalized_mutual_information`] but keyed by
/// `u32` codes, so no string hashing or `&str` comparisons happen on the hot
/// path. Codes are remapped to dense local indices first, keeping the cost
/// `O(len)` even when the sequences are a small sample of a high-cardinality
/// column (sampled codes can be numerically huge while few are present).
/// (Floating-point summation order differs from the string-keyed variant, so
/// results may differ in the last ulp.)
pub fn nmi_from_codes(xs: &[u32], ys: &[u32]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "NMI requires equal-length columns");
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    // Dense local remap: index = first-occurrence rank within the sample.
    let mut remap_x: HashMap<u32, u32, crate::fx::FxBuild> = HashMap::default();
    let mut remap_y: HashMap<u32, u32, crate::fx::FxBuild> = HashMap::default();
    let mut px: Vec<f64> = Vec::new();
    let mut py: Vec<f64> = Vec::new();
    let mut pxy: HashMap<(u32, u32), f64, crate::fx::FxBuild> = HashMap::default();
    let inc = 1.0 / n as f64;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        let xi = *remap_x.entry(x).or_insert_with(|| {
            px.push(0.0);
            px.len() as u32 - 1
        });
        let yi = *remap_y.entry(y).or_insert_with(|| {
            py.push(0.0);
            py.len() as u32 - 1
        });
        px[xi as usize] += inc;
        py[yi as usize] += inc;
        *pxy.entry((xi, yi)).or_insert(0.0) += inc;
    }
    let hx: f64 = -px.iter().map(|p| p * p.ln()).sum::<f64>();
    let hy: f64 = -py.iter().map(|p| p * p.ln()).sum::<f64>();
    if hx <= 1e-12 || hy <= 1e-12 {
        return 0.0;
    }
    let mut mi = 0.0;
    for (&(x, y), p) in &pxy {
        let denom = px[x as usize] * py[y as usize];
        if *p > 0.0 && denom > 0.0 {
            mi += p * (p / denom).ln();
        }
    }
    (mi / (hx * hy).sqrt()).clamp(0.0, 1.0)
}

/// Returns the indices of the `k` attributes most correlated with `target`
/// (by NMI, descending), excluding `target` itself.
///
/// For large tables the NMI estimate is computed on a row sample (`max_rows`,
/// default 5,000) — the ranking is extremely stable under sampling and this
/// keeps the cost linear for the 200k-row Tax dataset.
pub fn top_k_correlated(table: &Table, target: usize, k: usize) -> Vec<usize> {
    top_k_correlated_sampled(table, target, k, 5_000)
}

/// [`top_k_correlated`] with an explicit row-sample cap.
pub fn top_k_correlated_sampled(
    table: &Table,
    target: usize,
    k: usize,
    max_rows: usize,
) -> Vec<usize> {
    let n_cols = table.n_cols();
    if n_cols <= 1 || k == 0 {
        return Vec::new();
    }
    let n_rows = table.n_rows();
    let stride = (n_rows / max_rows.max(1)).max(1);
    let sample_rows: Vec<usize> = (0..n_rows).step_by(stride).collect();
    let target_vals: Vec<&str> = sample_rows
        .iter()
        .map(|&i| table.cell(i, target))
        .collect();
    let mut scored: Vec<(usize, f64)> = (0..n_cols)
        .filter(|&j| j != target)
        .map(|j| {
            let vals: Vec<&str> = sample_rows.iter().map(|&i| table.cell(i, j)).collect();
            (j, normalized_mutual_information(&vals, &target_vals))
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().take(k).map(|(j, _)| j).collect()
}

/// [`top_k_correlated_sampled`] over an interned table: NMI is estimated on
/// `u32` code vectors instead of string columns, so the sweep over candidate
/// attributes does no string hashing at all.
pub fn top_k_correlated_dict(
    dict: &TableDict,
    target: usize,
    k: usize,
    max_rows: usize,
) -> Vec<usize> {
    let n_cols = dict.n_cols();
    if n_cols <= 1 || k == 0 {
        return Vec::new();
    }
    let n_rows = dict.n_rows();
    let stride = (n_rows / max_rows.max(1)).max(1);
    let sample_rows: Vec<usize> = (0..n_rows).step_by(stride).collect();
    let target_codes: Vec<u32> = {
        let col = dict.column(target);
        sample_rows.iter().map(|&i| col.code(i)).collect()
    };
    let mut scored: Vec<(usize, f64)> = (0..n_cols)
        .filter(|&j| j != target)
        .map(|j| {
            let col = dict.column(j);
            let codes: Vec<u32> = sample_rows.iter().map(|&i| col.code(i)).collect();
            (j, nmi_from_codes(&codes, &target_codes))
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().take(k).map(|(j, _)| j).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_columns_have_nmi_one() {
        let xs = vec!["a", "b", "c", "a", "b", "c", "a", "b"];
        let nmi = normalized_mutual_information(&xs, &xs);
        assert!((nmi - 1.0).abs() < 1e-9, "got {nmi}");
    }

    #[test]
    fn independent_columns_have_low_nmi() {
        // x alternates with period 2, y with period 3 over 600 rows → close to
        // independent.
        let xs: Vec<String> = (0..600).map(|i| format!("x{}", i % 2)).collect();
        let ys: Vec<String> = (0..600).map(|i| format!("y{}", i % 3)).collect();
        let xr: Vec<&str> = xs.iter().map(|s| s.as_str()).collect();
        let yr: Vec<&str> = ys.iter().map(|s| s.as_str()).collect();
        let nmi = normalized_mutual_information(&xr, &yr);
        assert!(nmi < 0.05, "got {nmi}");
    }

    #[test]
    fn nmi_is_symmetric_and_bounded() {
        let xs = vec!["a", "a", "b", "b", "c", "a"];
        let ys = vec!["1", "1", "2", "2", "2", "1"];
        let ab = normalized_mutual_information(&xs, &ys);
        let ba = normalized_mutual_information(&ys, &xs);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn constant_column_yields_zero() {
        let xs = vec!["k", "k", "k", "k"];
        let ys = vec!["1", "2", "1", "2"];
        assert_eq!(normalized_mutual_information(&xs, &ys), 0.0);
        assert_eq!(normalized_mutual_information(&[], &[]), 0.0);
    }

    #[test]
    fn code_nmi_agrees_with_string_nmi() {
        let rows: Vec<Vec<String>> = (0..120)
            .map(|i| {
                let a = format!("a{}", i % 7);
                let b = format!("b{}", (i % 7) / 2);
                let c = format!("c{}", (i * 13) % 5);
                vec![a, b, c]
            })
            .collect();
        let t = Table::new("t", vec!["a".into(), "b".into(), "c".into()], rows).unwrap();
        let dict = t.intern();
        for (x, y) in [(0, 1), (0, 2), (1, 2)] {
            let string_nmi = column_nmi(&t, x, y);
            let code_nmi = nmi_from_codes(dict.column(x).codes(), dict.column(y).codes());
            assert!(
                (string_nmi - code_nmi).abs() < 1e-9,
                "columns ({x}, {y}): {string_nmi} vs {code_nmi}"
            );
        }
        // The dict-based top-k ranking matches the string-based one.
        for target in 0..3 {
            assert_eq!(
                top_k_correlated_sampled(&t, target, 2, 5_000),
                top_k_correlated_dict(&dict, target, 2, 5_000),
                "target {target}"
            );
        }
    }

    #[test]
    fn top_k_prefers_dependent_columns() {
        // name determines gender; salary is random-ish.
        let rows: Vec<Vec<String>> = (0..200)
            .map(|i| {
                let name = format!("p{}", i % 10);
                let gender = if (i % 10) < 5 { "M" } else { "F" };
                let salary = format!("{}", 1000 + (i * 37) % 977);
                vec![name, gender.to_string(), salary]
            })
            .collect();
        let t = Table::new(
            "t",
            vec!["name".into(), "gender".into(), "salary".into()],
            rows,
        )
        .unwrap();
        let top = top_k_correlated(&t, 1, 1);
        assert_eq!(top, vec![0], "gender should correlate most with name");
        let top2 = top_k_correlated(&t, 1, 2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top_k_correlated(&t, 1, 0), Vec::<usize>::new());
    }
}
