//! Equivalence property tests: the interned/cached fast path must produce
//! **bit-identical** feature output to the seed per-cell implementation
//! preserved in `zeroed_features::reference`.
//!
//! Random tables are drawn duplicate-heavy (small value pools, so codes
//! repeat) with occasional missing placeholders and unicode, then compared
//! across feature configurations — including `value_override` cells that are
//! *not* in the dictionary and `extra_override` criteria blocks.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use zeroed_features::reference::{
    base_row_reference, build_all_reference, unified_row_reference,
};
use zeroed_features::{FeatureBuilder, FeatureConfig};
use zeroed_table::Table;

/// A random table with duplicate-heavy columns: each column draws from a pool
/// of `pool_size` values, some of which are missing placeholders.
fn random_table(rng: &mut ChaCha8Rng, n_rows: usize, n_cols: usize, pool_size: usize) -> Table {
    let pools: Vec<Vec<String>> = (0..n_cols)
        .map(|j| {
            (0..pool_size)
                .map(|v| match rng.gen_range(0..10u8) {
                    0 => String::new(),
                    1 => "N/A".to_string(),
                    2 => format!("Wörd-{j}-{v} Münich"),
                    3 => format!("({v:03}) 555-01{j:02}"),
                    _ => format!("value {j}-{v}"),
                })
                .collect()
        })
        .collect();
    let rows: Vec<Vec<String>> = (0..n_rows)
        .map(|_| {
            (0..n_cols)
                .map(|j| pools[j][rng.gen_range(0..pool_size)].clone())
                .collect()
        })
        .collect();
    let columns: Vec<String> = (0..n_cols).map(|j| format!("c{j}")).collect();
    Table::new("equiv", columns, rows).unwrap()
}

fn configs() -> Vec<FeatureConfig> {
    vec![
        FeatureConfig {
            embed_dim: 8,
            top_k_corr: 2,
            ..FeatureConfig::default()
        },
        FeatureConfig {
            embed_dim: 6,
            top_k_corr: 1,
            include_semantic: false,
            ..FeatureConfig::default()
        },
        FeatureConfig {
            embed_dim: 5,
            top_k_corr: 0,
            include_stats: false,
            ..FeatureConfig::default()
        },
        FeatureConfig {
            embed_dim: 4,
            top_k_corr: 2,
            include_stats: false,
            include_semantic: false,
            ..FeatureConfig::default()
        },
    ]
}

#[test]
fn build_all_is_bit_identical_to_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB1DE);
    for case in 0..8 {
        let n_rows = rng.gen_range(20..120usize);
        let n_cols = rng.gen_range(2..5usize);
        let pool = rng.gen_range(3..12usize);
        let table = random_table(&mut rng, n_rows, n_cols, pool);
        for (ci, config) in configs().into_iter().enumerate() {
            let builder = FeatureBuilder::new(config);
            let fitted = builder.fit(&table, &[]);
            let fast = fitted.build_all();
            let naive = build_all_reference(&fitted);
            for j in 0..n_cols {
                assert_eq!(
                    fast.base[j], naive.base[j],
                    "case {case} config {ci}: base matrix of column {j} diverged"
                );
                assert_eq!(
                    fast.unified[j], naive.unified[j],
                    "case {case} config {ci}: unified matrix of column {j} diverged"
                );
            }
            assert_eq!(fast.correlated, naive.correlated);
        }
    }
}

#[test]
fn build_all_with_extra_blocks_is_bit_identical() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xE74A);
    for _case in 0..4 {
        let n_rows = rng.gen_range(30..80usize);
        let table = random_table(&mut rng, n_rows, 3, 6);
        // Criteria indicators on columns 0 and 2 (column 1 has none).
        let extra: Vec<Vec<Vec<f32>>> = vec![
            (0..n_rows)
                .map(|_| vec![f32::from(rng.gen_bool(0.5)), f32::from(rng.gen_bool(0.2))])
                .collect(),
            Vec::new(),
            (0..n_rows).map(|_| vec![f32::from(rng.gen_bool(0.8))]).collect(),
        ];
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 7,
            top_k_corr: 2,
            ..FeatureConfig::default()
        });
        let fitted = builder.fit(&table, &extra);
        let fast = fitted.build_all();
        let naive = build_all_reference(&fitted);
        for j in 0..3 {
            assert_eq!(fast.base[j], naive.base[j], "base matrix of column {j}");
            assert_eq!(fast.unified[j], naive.unified[j], "unified matrix of column {j}");
        }
    }
}

#[test]
fn single_cell_rows_match_reference_including_overrides() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0CE1);
    let n_rows = 60;
    let table = random_table(&mut rng, n_rows, 3, 5);
    for config in configs() {
        let builder = FeatureBuilder::new(config);
        let fitted = builder.fit(&table, &[]);
        for _ in 0..40 {
            let row = rng.gen_range(0..n_rows);
            let col = rng.gen_range(0..3usize);
            assert_eq!(
                fitted.base_row(row, col, None, None),
                base_row_reference(&fitted, row, col, None, None),
                "plain base cell ({row}, {col})"
            );
            assert_eq!(
                fitted.unified_row(row, col, None, None),
                unified_row_reference(&fitted, row, col, None, None),
                "plain unified cell ({row}, {col})"
            );
            // Overrides: a value that is NOT in the dictionary, a value that
            // IS (another cell of the same column), and an extra block.
            let unseen = format!("unseen-{}", rng.gen_range(0..1_000_000u32));
            assert!(fitted.dict().column(col).lookup(&unseen).is_none());
            assert_eq!(
                fitted.unified_row(row, col, Some(&unseen), None),
                unified_row_reference(&fitted, row, col, Some(&unseen), None),
                "unseen override at ({row}, {col})"
            );
            let other_value = table.cell(rng.gen_range(0..n_rows), col).to_string();
            assert_eq!(
                fitted.unified_row(row, col, Some(&other_value), None),
                unified_row_reference(&fitted, row, col, Some(&other_value), None),
                "in-dictionary override at ({row}, {col})"
            );
            let extra_block = [1.0f32, 0.0];
            assert_eq!(
                fitted.unified_row(row, col, Some(&unseen), Some(&extra_block)),
                unified_row_reference(&fitted, row, col, Some(&unseen), Some(&extra_block)),
                "override with extra block at ({row}, {col})"
            );
        }
    }
}

#[test]
fn empty_and_constant_tables_match_reference() {
    let empty = Table::empty("e", vec!["a".into(), "b".into()]);
    let constant = Table::new(
        "c",
        vec!["a".into(), "b".into()],
        (0..10).map(|_| vec!["same".to_string(), "same".into()]).collect(),
    )
    .unwrap();
    for table in [&empty, &constant] {
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 4,
            top_k_corr: 1,
            ..FeatureConfig::default()
        });
        let fitted = builder.fit(table, &[]);
        let fast = fitted.build_all();
        let naive = build_all_reference(&fitted);
        for j in 0..table.n_cols() {
            assert_eq!(fast.base[j], naive.base[j], "{} base col {j}", table.name());
            assert_eq!(fast.unified[j], naive.unified[j], "{} unified col {j}", table.name());
        }
    }
}
