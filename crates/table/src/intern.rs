//! Column dictionaries: distinct-value interning for the featurisation hot
//! path.
//!
//! Real tables are dominated by repeated values (a 50k-row `state` column
//! holds ~50 distinct strings), yet the naive featuriser re-embeds,
//! re-generalises and re-hashes every cell independently. A [`TableDict`]
//! factors that redundancy out once, at load time:
//!
//! * each column gets a **distinct-value pool** (`Vec<Arc<str>>`, first-
//!   occurrence order) and a **per-row `u32` code vector**, so any per-value
//!   computation can run once per *distinct* value and be scattered to rows by
//!   code;
//! * per-code **occurrence counts** come free from the interning pass, which
//!   is exactly the value-frequency statistic of ZeroED's `f_stat`;
//! * downstream layers key hash maps by `u32` (or `(u32, u32)` pairs) instead
//!   of owned `String`s, eliminating the per-row allocations the seed
//!   implementation paid in `FrequencyModel`.
//!
//! The dictionary is a snapshot: it is built from a [`Table`] and does not
//! track later mutations. Builders that accept a caller-supplied dictionary
//! (e.g. `zeroed-features`) document that it must describe the same table.

use crate::Table;
use std::collections::HashMap;
use std::sync::Arc;

/// The interned view of one column: distinct-value pool + per-row codes.
#[derive(Debug, Clone)]
pub struct ColumnDict {
    /// Distinct values in first-occurrence order; index = code.
    values: Vec<Arc<str>>,
    /// One code per row, indexing into `values`.
    codes: Vec<u32>,
    /// Occurrences of each code in the column.
    counts: Vec<u32>,
    /// Reverse lookup: value → code.
    index: HashMap<Arc<str>, u32>,
}

impl ColumnDict {
    /// Interns a single column of `table` without building the full
    /// [`TableDict`] — for consumers that touch only a few columns (e.g.
    /// KATARA's knowledge-base lookups), where interning every column would
    /// cost more than it saves.
    pub fn for_column(table: &Table, col: usize) -> Self {
        Self::build(table, col)
    }

    /// Interns every value of column `col`.
    fn build(table: &Table, col: usize) -> Self {
        let n_rows = table.n_rows();
        let mut values: Vec<Arc<str>> = Vec::new();
        let mut codes: Vec<u32> = Vec::with_capacity(n_rows);
        let mut counts: Vec<u32> = Vec::new();
        let mut index: HashMap<Arc<str>, u32> = HashMap::new();
        for row in table.rows() {
            let cell = row[col].as_str();
            let code = match index.get(cell) {
                Some(&code) => code,
                None => {
                    let code = values.len() as u32;
                    let interned: Arc<str> = Arc::from(cell);
                    values.push(interned.clone());
                    counts.push(0);
                    index.insert(interned, code);
                    code
                }
            };
            counts[code as usize] += 1;
            codes.push(code);
        }
        Self {
            values,
            codes,
            counts,
            index,
        }
    }

    /// Number of distinct values.
    pub fn n_distinct(&self) -> usize {
        self.values.len()
    }

    /// Number of rows the column was built from.
    pub fn n_rows(&self) -> usize {
        self.codes.len()
    }

    /// The code of row `i`.
    #[inline]
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// All per-row codes.
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The distinct value behind `code`.
    #[inline]
    pub fn value(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// The distinct-value pool in code order.
    pub fn values(&self) -> &[Arc<str>] {
        &self.values
    }

    /// Occurrence count of `code` in the column.
    #[inline]
    pub fn count(&self, code: u32) -> u32 {
        self.counts[code as usize]
    }

    /// Per-code occurrence counts (index = code).
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Looks up the code of an arbitrary value (`None` when the value never
    /// occurs in the column — e.g. a hypothetical override value).
    #[inline]
    pub fn lookup(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }
}

/// Interned view of a whole table: one [`ColumnDict`] per column.
#[derive(Debug, Clone)]
pub struct TableDict {
    columns: Vec<ColumnDict>,
    n_rows: usize,
}

impl TableDict {
    /// Interns every column of `table`.
    pub fn build(table: &Table) -> Self {
        let columns = (0..table.n_cols())
            .map(|j| ColumnDict::build(table, j))
            .collect();
        Self {
            columns,
            n_rows: table.n_rows(),
        }
    }

    /// Number of rows of the source table.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// The dictionary of column `j`.
    #[inline]
    pub fn column(&self, j: usize) -> &ColumnDict {
        &self.columns[j]
    }

    /// All column dictionaries.
    pub fn columns(&self) -> &[ColumnDict] {
        &self.columns
    }
}

impl Table {
    /// Builds the distinct-value dictionary for this table (a snapshot; later
    /// mutations of the table are not reflected).
    pub fn intern(&self) -> TableDict {
        TableDict::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "t",
            vec!["name".into(), "gender".into()],
            vec![
                vec!["bob".into(), "M".into()],
                vec!["carol".into(), "F".into()],
                vec!["bob".into(), "M".into()],
                vec!["dave".into(), "M".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn codes_round_trip_to_values() {
        let dict = table().intern();
        assert_eq!(dict.n_rows(), 4);
        assert_eq!(dict.n_cols(), 2);
        let names = dict.column(0);
        assert_eq!(names.n_distinct(), 3);
        assert_eq!(names.value(names.code(0)), "bob");
        assert_eq!(names.value(names.code(1)), "carol");
        assert_eq!(names.code(0), names.code(2), "repeated values share a code");
        let t = table();
        for j in 0..t.n_cols() {
            for i in 0..t.n_rows() {
                assert_eq!(dict.column(j).value(dict.column(j).code(i)), t.cell(i, j));
            }
        }
    }

    #[test]
    fn first_occurrence_order_and_counts() {
        let dict = table().intern();
        let names = dict.column(0);
        let pool: Vec<&str> = names.values().iter().map(|v| v.as_ref()).collect();
        assert_eq!(pool, vec!["bob", "carol", "dave"]);
        assert_eq!(names.count(0), 2);
        assert_eq!(names.count(1), 1);
        let genders = dict.column(1);
        assert_eq!(genders.n_distinct(), 2);
        assert_eq!(genders.count(genders.lookup("M").unwrap()), 3);
    }

    #[test]
    fn lookup_misses_for_unseen_values() {
        let dict = table().intern();
        assert_eq!(dict.column(0).lookup("nobody"), None);
        assert!(dict.column(0).lookup("bob").is_some());
    }

    #[test]
    fn empty_table_interns_cleanly() {
        let t = Table::empty("e", vec!["a".into()]);
        let dict = t.intern();
        assert_eq!(dict.n_rows(), 0);
        assert_eq!(dict.column(0).n_distinct(), 0);
        assert_eq!(dict.column(0).codes().len(), 0);
    }
}
