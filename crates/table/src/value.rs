//! Cell-value helpers.
//!
//! In ZeroED every cell is a string; this module centralises the small amount
//! of interpretation the framework does on those strings: missing-value
//! detection, numeric parsing, tokenisation and edit distance (used by the
//! error-type classifier and the typo-oriented features).

/// Placeholder strings that are treated as *missing values* in addition to the
/// empty string. These mirror the implicit placeholders discussed in the paper
/// ("explicit and implicit placeholders", Section IV-A).
pub const MISSING_PLACEHOLDERS: &[&str] = &[
    "", "null", "nan", "n/a", "na", "none", "-", "?", "missing", "unknown", "empty",
];

/// Returns `true` when the value should be treated as a missing value.
///
/// Matching is case-insensitive and ignores surrounding whitespace.
///
/// ```
/// use zeroed_table::value::is_missing;
/// assert!(is_missing(""));
/// assert!(is_missing("  NULL "));
/// assert!(is_missing("n/a"));
/// assert!(!is_missing("0"));
/// assert!(!is_missing("Nadia"));
/// ```
pub fn is_missing(value: &str) -> bool {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        return true;
    }
    let lower = trimmed.to_ascii_lowercase();
    MISSING_PLACEHOLDERS.contains(&lower.as_str())
}

/// Attempts to parse a cell value as a floating-point number.
///
/// Thousands separators (`,`) and leading currency symbols (`$`, `€`) are
/// stripped first so values such as `"$1,200.50"` parse as `1200.5`.
pub fn parse_numeric(value: &str) -> Option<f64> {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        return None;
    }
    let cleaned: String = trimmed
        .chars()
        .filter(|c| *c != ',' && *c != '$' && *c != '€' && *c != '%')
        .collect();
    if cleaned.is_empty() {
        return None;
    }
    cleaned.parse::<f64>().ok()
}

/// Splits a value into lowercase alphanumeric tokens.
///
/// This is the tokenisation used before embedding cell values (paper §III-B,
/// `f_sem`): non-alphanumeric characters act as separators and single-character
/// stop tokens are kept (they still carry signal for codes like `M`/`F`).
pub fn tokenize(value: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in value.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Levenshtein edit distance between two strings (operating on Unicode scalar
/// values). Used by [`crate::errors::classify_error`] to mirror the paper's
/// typo definition ("errors within edit distance ≤ 3 from clean data").
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr: Vec<usize> = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Normalises a value for comparison: trims whitespace and lowercases.
///
/// Ground-truth diffing ([`crate::mask::ErrorMask::diff`]) compares raw strings
/// (the paper treats any literal difference as an error); this helper is used
/// by baselines and generators that need a looser notion of equality.
pub fn normalize(value: &str) -> String {
    value.trim().to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_detects_placeholders_and_blank() {
        for v in ["", "   ", "NULL", "NaN", "n/a", "-", "?", "None", "UNKNOWN"] {
            assert!(is_missing(v), "{v:?} should be missing");
        }
        for v in ["0", "false", "abc", "  x  ", "N/A extra"] {
            assert!(!is_missing(v), "{v:?} should not be missing");
        }
    }

    #[test]
    fn numeric_parsing_handles_separators() {
        assert_eq!(parse_numeric("42"), Some(42.0));
        assert_eq!(parse_numeric(" -3.5 "), Some(-3.5));
        assert_eq!(parse_numeric("$1,200.50"), Some(1200.50));
        assert_eq!(parse_numeric("12%"), Some(12.0));
        assert_eq!(parse_numeric("abc"), None);
        assert_eq!(parse_numeric(""), None);
        assert_eq!(parse_numeric("12a"), None);
    }

    #[test]
    fn tokenize_splits_on_non_alphanumeric() {
        assert_eq!(tokenize("Bob Johnson"), vec!["bob", "johnson"]);
        assert_eq!(tokenize("a-b_c"), vec!["a", "b", "c"]);
        assert_eq!(tokenize("  "), Vec::<String>::new());
        assert_eq!(tokenize("12:30 PM"), vec!["12", "30", "pm"]);
    }

    #[test]
    fn edit_distance_basic_properties() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("Bachelor", "Bechxlor"), 2);
    }

    #[test]
    fn normalize_trims_and_lowercases() {
        assert_eq!(normalize("  Heart Attack "), "heart attack");
    }
}
