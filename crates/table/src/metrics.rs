//! Cell-level detection metrics: precision, recall, F1.
//!
//! These are the evaluation metrics used throughout the paper's Section IV.

use serde::{Deserialize, Serialize};

/// Precision / recall / F1 together with the underlying confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// True positives: erroneous cells correctly flagged.
    pub tp: usize,
    /// False positives: clean cells incorrectly flagged.
    pub fp: usize,
    /// False negatives: erroneous cells missed.
    pub fn_: usize,
    /// True negatives: clean cells correctly left unflagged.
    pub tn: usize,
    /// `tp / (tp + fp)`; defined as 0 when no cell was flagged.
    pub precision: f64,
    /// `tp / (tp + fn)`; defined as 1 when there are no true errors.
    pub recall: f64,
    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub f1: f64,
}

impl DetectionReport {
    /// Builds a report from raw confusion counts.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize, tn: usize) -> Self {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            tp,
            fp,
            fn_,
            tn,
            precision,
            recall,
            f1,
        }
    }

    /// A report representing "flagged nothing on a dataset with no errors".
    pub fn perfect_empty() -> Self {
        Self::from_counts(0, 0, 0, 0)
    }

    /// Total number of cells covered by the report.
    pub fn total_cells(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Averages several reports metric-wise (used for the paper's "average of
    /// three repeated experiments").
    pub fn mean(reports: &[DetectionReport]) -> DetectionReport {
        if reports.is_empty() {
            return DetectionReport::perfect_empty();
        }
        let n = reports.len() as f64;
        let mut out = DetectionReport::perfect_empty();
        out.tp = reports.iter().map(|r| r.tp).sum::<usize>() / reports.len();
        out.fp = reports.iter().map(|r| r.fp).sum::<usize>() / reports.len();
        out.fn_ = reports.iter().map(|r| r.fn_).sum::<usize>() / reports.len();
        out.tn = reports.iter().map(|r| r.tn).sum::<usize>() / reports.len();
        out.precision = reports.iter().map(|r| r.precision).sum::<f64>() / n;
        out.recall = reports.iter().map(|r| r.recall).sum::<f64>() / n;
        out.f1 = reports.iter().map(|r| r.f1).sum::<f64>() / n;
        out
    }
}

impl std::fmt::Display for DetectionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.3} R={:.3} F1={:.3} (tp={}, fp={}, fn={}, tn={})",
            self.precision, self.recall, self.f1, self.tp, self.fp, self.fn_, self.tn
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_to_metrics() {
        let r = DetectionReport::from_counts(8, 2, 4, 86);
        assert!((r.precision - 0.8).abs() < 1e-12);
        assert!((r.recall - 8.0 / 12.0).abs() < 1e-12);
        let expect_f1 = 2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0);
        assert!((r.f1 - expect_f1).abs() < 1e-12);
        assert_eq!(r.total_cells(), 100);
    }

    #[test]
    fn degenerate_cases() {
        let none_flagged = DetectionReport::from_counts(0, 0, 5, 95);
        assert_eq!(none_flagged.precision, 0.0);
        assert_eq!(none_flagged.recall, 0.0);
        assert_eq!(none_flagged.f1, 0.0);

        let no_errors = DetectionReport::from_counts(0, 0, 0, 100);
        assert_eq!(no_errors.recall, 1.0);
        assert_eq!(no_errors.f1, 0.0);

        let all_wrong = DetectionReport::from_counts(0, 10, 10, 80);
        assert_eq!(all_wrong.f1, 0.0);
    }

    #[test]
    fn mean_of_reports() {
        let a = DetectionReport::from_counts(10, 0, 0, 90);
        let b = DetectionReport::from_counts(0, 10, 10, 80);
        let m = DetectionReport::mean(&[a, b]);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert_eq!(DetectionReport::mean(&[]).total_cells(), 0);
    }

    #[test]
    fn display_is_readable() {
        let r = DetectionReport::from_counts(1, 1, 1, 1);
        let s = format!("{r}");
        assert!(s.contains("P=0.500"));
        assert!(s.contains("tp=1"));
    }
}
