//! Minimal RFC-4180-style CSV reading and writing.
//!
//! The workspace deliberately avoids an external CSV dependency; the benchmark
//! datasets are generated in-process and only occasionally round-tripped
//! through files, so a small, well-tested parser is sufficient. Quoted fields,
//! embedded commas, embedded quotes (`""`) and embedded newlines are supported.

use crate::table::Table;
use crate::{Result, TableError};
use std::fs;
use std::path::Path;

/// Parses CSV text into a [`Table`]. The first record is the header.
pub fn parse_csv(name: &str, text: &str) -> Result<Table> {
    let records = parse_records(text)?;
    let mut iter = records.into_iter();
    let header = iter.next().ok_or(TableError::EmptyInput)?;
    let ncols = header.len();
    let mut rows = Vec::new();
    for (i, rec) in iter.enumerate() {
        // A completely empty trailing record (e.g. trailing newline) is skipped.
        if rec.len() == 1 && rec[0].is_empty() {
            continue;
        }
        if rec.len() != ncols {
            return Err(TableError::RowArity {
                row: i,
                found: rec.len(),
                expected: ncols,
            });
        }
        rows.push(rec);
    }
    Table::new(name, header, rows)
}

/// Reads a CSV file into a [`Table`], deriving the table name from the file
/// stem.
pub fn read_csv_file(path: impl AsRef<Path>) -> Result<Table> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "table".to_string());
    let text = fs::read_to_string(path).map_err(|e| TableError::ShapeMismatch(e.to_string()))?;
    parse_csv(&name, &text)
}

/// Serialises a [`Table`] to CSV text (header + rows). Fields containing
/// commas, quotes or newlines are quoted.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    write_record(&mut out, table.columns().iter().map(|s| s.as_str()));
    for row in table.rows() {
        write_record(&mut out, row.iter().map(|s| s.as_str()));
    }
    out
}

/// Writes a [`Table`] to a CSV file.
pub fn write_csv_file(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    fs::write(path, to_csv(table)).map_err(|e| TableError::ShapeMismatch(e.to_string()))
}

fn write_record<'a>(out: &mut String, fields: impl Iterator<Item = &'a str>) {
    let mut first = true;
    for field in fields {
        if !first {
            out.push(',');
        }
        first = false;
        if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r')
        {
            out.push('"');
            for ch in field.chars() {
                if ch == '"' {
                    out.push('"');
                }
                out.push(ch);
            }
            out.push('"');
        } else {
            out.push_str(field);
        }
    }
    out.push('\n');
}

/// Low-level record parser: splits CSV text into records of fields.
fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut record_idx = 0usize;

    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(ch),
            }
        } else {
            match ch {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // Swallow \r in \r\n; a lone \r also terminates the record.
                    if chars.peek() == Some(&'\n') {
                        continue;
                    }
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    record_idx += 1;
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    record_idx += 1;
                }
                _ => field.push(ch),
            }
        }
    }
    if in_quotes {
        return Err(TableError::UnterminatedQuote { row: record_idx });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if records.is_empty() {
        return Err(TableError::EmptyInput);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_csv() {
        let t = parse_csv("t", "a,b,c\n1,2,3\n4,5,6\n").unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.cell(1, 2), "6");
    }

    #[test]
    fn parses_quoted_fields() {
        let t = parse_csv("t", "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.cell(0, 0), "hello, world");
        assert_eq!(t.cell(0, 1), "say \"hi\"");
    }

    #[test]
    fn parses_embedded_newline() {
        let t = parse_csv("t", "a,b\n\"line1\nline2\",x\n").unwrap();
        assert_eq!(t.cell(0, 0), "line1\nline2");
    }

    #[test]
    fn handles_crlf_and_missing_trailing_newline() {
        let t = parse_csv("t", "a,b\r\n1,2\r\n3,4").unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.cell(1, 1), "4");
    }

    #[test]
    fn rejects_bad_arity_and_empty() {
        assert!(matches!(
            parse_csv("t", "a,b\n1\n"),
            Err(TableError::RowArity { .. })
        ));
        assert!(matches!(parse_csv("t", ""), Err(TableError::EmptyInput)));
        assert!(matches!(
            parse_csv("t", "a,b\n\"unterminated\n"),
            Err(TableError::UnterminatedQuote { .. })
        ));
    }

    #[test]
    fn round_trip() {
        let t = Table::new(
            "rt",
            vec!["name".into(), "note".into()],
            vec![
                vec!["alice".into(), "likes, commas".into()],
                vec!["bob \"the builder\"".into(), "multi\nline".into()],
                vec!["".into(), "".into()],
            ],
        )
        .unwrap();
        let text = to_csv(&t);
        let back = parse_csv("rt", &text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn file_round_trip() {
        let t = parse_csv("t", "a,b\n1,2\n").unwrap();
        let dir = std::env::temp_dir().join("zeroed_table_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv_file(&t, &path).unwrap();
        let back = read_csv_file(&path).unwrap();
        assert_eq!(back.n_rows(), 1);
        assert_eq!(back.name(), "t");
    }
}
