//! Schema inference: per-column types and summary statistics.

use crate::table::Table;
use crate::value;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Coarse value type of a column, inferred from its contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// Mostly integer values.
    Integer,
    /// Mostly floating-point (or mixed numeric) values.
    Float,
    /// Few distinct values relative to the row count (codes, enums, flags).
    Categorical,
    /// Free-form text values.
    Text,
    /// Column is (almost) entirely missing.
    Empty,
}

/// Per-column metadata computed by [`Schema::infer`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Column name.
    pub name: String,
    /// Inferred coarse type.
    pub ty: ColumnType,
    /// Number of distinct non-missing values.
    pub distinct: usize,
    /// Fraction of rows whose value is missing ([`value::is_missing`]).
    pub missing_ratio: f64,
    /// Minimum numeric value among parseable cells (if any).
    pub numeric_min: Option<f64>,
    /// Maximum numeric value among parseable cells (if any).
    pub numeric_max: Option<f64>,
    /// Mean numeric value among parseable cells (if any).
    pub numeric_mean: Option<f64>,
    /// Mean string length of non-missing values.
    pub mean_len: f64,
}

/// A table schema: ordered per-column metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnMeta>,
}

impl Schema {
    /// Infers column metadata from the table contents.
    ///
    /// Type inference rules (applied to non-missing values only):
    /// * ≥ 90% parse as integers → [`ColumnType::Integer`];
    /// * ≥ 90% parse as numbers → [`ColumnType::Float`];
    /// * otherwise, if the number of distinct values is at most
    ///   `max(10, 5% of rows)` → [`ColumnType::Categorical`];
    /// * otherwise [`ColumnType::Text`].
    pub fn infer(table: &Table) -> Schema {
        let n_rows = table.n_rows();
        let mut columns = Vec::with_capacity(table.n_cols());
        for (j, name) in table.columns().iter().enumerate() {
            let mut distinct: HashSet<&str> = HashSet::new();
            let mut missing = 0usize;
            let mut numeric: Vec<f64> = Vec::new();
            let mut integers = 0usize;
            let mut non_missing = 0usize;
            let mut total_len = 0usize;
            for row in table.rows() {
                let v = row[j].as_str();
                if value::is_missing(v) {
                    missing += 1;
                    continue;
                }
                non_missing += 1;
                total_len += v.chars().count();
                distinct.insert(v);
                if let Some(x) = value::parse_numeric(v) {
                    numeric.push(x);
                    if (x.fract()).abs() < f64::EPSILON {
                        integers += 1;
                    }
                }
            }
            let ty = if non_missing == 0 {
                ColumnType::Empty
            } else if numeric.len() as f64 >= 0.9 * non_missing as f64 {
                if integers as f64 >= 0.9 * non_missing as f64 {
                    ColumnType::Integer
                } else {
                    ColumnType::Float
                }
            } else if distinct.len() <= 10.max(n_rows / 20) {
                ColumnType::Categorical
            } else {
                ColumnType::Text
            };
            let (numeric_min, numeric_max, numeric_mean) = if numeric.is_empty() {
                (None, None, None)
            } else {
                let min = numeric.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = numeric.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mean = numeric.iter().sum::<f64>() / numeric.len() as f64;
                (Some(min), Some(max), Some(mean))
            };
            columns.push(ColumnMeta {
                name: name.clone(),
                ty,
                distinct: distinct.len(),
                missing_ratio: if n_rows == 0 {
                    0.0
                } else {
                    missing as f64 / n_rows as f64
                },
                numeric_min,
                numeric_max,
                numeric_mean,
                mean_len: if non_missing == 0 {
                    0.0
                } else {
                    total_len as f64 / non_missing as f64
                },
            });
        }
        Schema { columns }
    }

    /// Per-column metadata in column order.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// Metadata for a single column index.
    pub fn column(&self, idx: usize) -> Option<&ColumnMeta> {
        self.columns.get(idx)
    }

    /// Looks up a column's metadata by name.
    pub fn by_name(&self, name: &str) -> Option<&ColumnMeta> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Returns `true` if the column at `idx` is numeric (integer or float).
    pub fn is_numeric(&self, idx: usize) -> bool {
        matches!(
            self.columns.get(idx).map(|c| c.ty),
            Some(ColumnType::Integer) | Some(ColumnType::Float)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                "id".into(),
                "price".into(),
                "gender".into(),
                "bio".into(),
                "empty".into(),
            ],
            (0..100)
                .map(|i| {
                    vec![
                        i.to_string(),
                        format!("{}.5", i),
                        if i % 2 == 0 { "M".into() } else { "F".into() },
                        format!("this is a rather unique biography number {i}"),
                        "".into(),
                    ]
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn infers_types() {
        let schema = table().schema();
        assert_eq!(schema.column(0).unwrap().ty, ColumnType::Integer);
        assert_eq!(schema.column(1).unwrap().ty, ColumnType::Float);
        assert_eq!(schema.column(2).unwrap().ty, ColumnType::Categorical);
        assert_eq!(schema.column(3).unwrap().ty, ColumnType::Text);
        assert_eq!(schema.column(4).unwrap().ty, ColumnType::Empty);
        assert!(schema.is_numeric(0));
        assert!(schema.is_numeric(1));
        assert!(!schema.is_numeric(2));
    }

    #[test]
    fn numeric_summaries() {
        let schema = table().schema();
        let price = schema.by_name("price").unwrap();
        assert_eq!(price.numeric_min, Some(0.5));
        assert_eq!(price.numeric_max, Some(99.5));
        assert!((price.numeric_mean.unwrap() - 50.0).abs() < 1e-9);
        assert_eq!(price.missing_ratio, 0.0);
        let empty = schema.by_name("empty").unwrap();
        assert_eq!(empty.missing_ratio, 1.0);
        assert_eq!(empty.distinct, 0);
    }

    #[test]
    fn distinct_counts() {
        let schema = table().schema();
        assert_eq!(schema.by_name("gender").unwrap().distinct, 2);
        assert_eq!(schema.by_name("id").unwrap().distinct, 100);
        assert!(schema.by_name("nope").is_none());
    }
}
