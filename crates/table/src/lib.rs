//! # zeroed-table
//!
//! Tabular-data substrate for the ZeroED error-detection framework.
//!
//! This crate provides the data model every other crate in the workspace builds
//! on:
//!
//! * [`Table`] — an in-memory, string-typed relational table with named columns,
//!   the representation used by the ZeroED paper (all cell values are treated as
//!   strings; empty strings denote missing values).
//! * [`Schema`] / [`ColumnMeta`] — lightweight per-column metadata with inferred
//!   [`ColumnType`]s (numeric, categorical, text, ...).
//! * CSV reading and writing ([`csv`]) without external dependencies.
//! * [`ErrorMask`] — a per-cell boolean matrix marking erroneous cells, produced
//!   by diffing a dirty table against its ground-truth clean version, which is
//!   exactly the error definition used in the paper (Section II).
//! * Detection metrics ([`metrics`]): precision, recall and F1 over cell-level
//!   predictions.
//! * [`errors`] — the five error types of the paper (missing values, typos,
//!   pattern violations, outliers, rule violations) and a heuristic classifier
//!   matching the paper's Table II categorisation rules.
//! * [`intern`] — distinct-value dictionaries ([`TableDict`] / [`ColumnDict`]):
//!   each column gets a `Vec<Arc<str>>` pool of its distinct values plus a
//!   per-row `u32` code vector, built in one pass with [`Table::intern`].
//!   Real tables are dominated by repeated values, so downstream layers
//!   (frequency statistics, pattern generalisation, embeddings in
//!   `zeroed-features`) compute per *distinct* value and scatter by code,
//!   keying their hot maps by `u32` codes instead of owned `String`s. A
//!   dictionary is a snapshot of the table at build time; rebuild after
//!   mutating the table.
//!
//! The crate is deliberately dependency-light and panic-free on user input: all
//! fallible operations return [`TableError`].

pub mod csv;
pub mod errors;
pub mod intern;
pub mod mask;
pub mod metrics;
pub mod schema;
pub mod table;
pub mod value;

pub use errors::{classify_error, ErrorType};
pub use intern::{ColumnDict, TableDict};
pub use mask::ErrorMask;
pub use metrics::DetectionReport;
pub use schema::{ColumnMeta, ColumnType, Schema};
pub use table::{CellRef, Table};

use std::fmt;

/// Errors produced by table construction, CSV parsing and cell addressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A row had a different number of fields than the header.
    RowArity {
        /// Zero-based row index in the input.
        row: usize,
        /// Number of fields found.
        found: usize,
        /// Number of fields expected (header width).
        expected: usize,
    },
    /// The CSV input was empty (no header row).
    EmptyInput,
    /// A quoted CSV field was never terminated.
    UnterminatedQuote {
        /// Line (record) index where the quote started.
        row: usize,
    },
    /// Cell or column index out of bounds.
    OutOfBounds {
        /// Human readable description of the access.
        what: String,
    },
    /// A named column does not exist.
    NoSuchColumn(String),
    /// Two tables that must be congruent (same shape and columns) are not.
    ShapeMismatch(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::RowArity {
                row,
                found,
                expected,
            } => write!(
                f,
                "row {row} has {found} fields but the header has {expected}"
            ),
            TableError::EmptyInput => write!(f, "input contains no header row"),
            TableError::UnterminatedQuote { row } => {
                write!(f, "unterminated quoted field starting in record {row}")
            }
            TableError::OutOfBounds { what } => write!(f, "out of bounds access: {what}"),
            TableError::NoSuchColumn(name) => write!(f, "no such column: {name}"),
            TableError::ShapeMismatch(msg) => write!(f, "table shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for TableError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TableError>;
