//! The five error types of the ZeroED paper and a heuristic classifier.
//!
//! Section II of the paper distinguishes missing values, typos, pattern
//! violations, outliers and rule violations; Table II reports the per-type
//! error rates of each benchmark dataset using the following heuristics, which
//! this module reproduces:
//!
//! * **Missing values (MV)** — explicit or implicit placeholders;
//! * **Typos (T)** — dirty value within edit distance ≤ 3 of the clean value;
//! * **Pattern violations (PV)** — the dirty value's character pattern does not
//!   occur among clean values of the attribute;
//! * **Rule violations (RV)** — the dirty value breaks a functional dependency
//!   that holds on the clean data (detected against provided dependencies);
//! * **Outliers (O)** — dirty values with < 1% frequency in the attribute that
//!   do not fall in the previous classes.

use crate::mask::ErrorMask;
use crate::table::Table;
use crate::value::{edit_distance, is_missing};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The error taxonomy used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ErrorType {
    /// Empty fields or explicit/implicit null placeholders.
    MissingValue,
    /// Character-level corruptions close to the clean value.
    Typo,
    /// Values whose format differs from every clean format of the attribute.
    PatternViolation,
    /// Values far outside the attribute's distribution/domain.
    Outlier,
    /// Cross-attribute inconsistencies (e.g. broken functional dependencies).
    RuleViolation,
}

impl ErrorType {
    /// All five error types in the order used by the paper's tables.
    pub const ALL: [ErrorType; 5] = [
        ErrorType::MissingValue,
        ErrorType::PatternViolation,
        ErrorType::Typo,
        ErrorType::Outlier,
        ErrorType::RuleViolation,
    ];

    /// Short code used in the paper's figures (MV, PV, T, O, RV).
    pub fn code(&self) -> &'static str {
        match self {
            ErrorType::MissingValue => "MV",
            ErrorType::Typo => "T",
            ErrorType::PatternViolation => "PV",
            ErrorType::Outlier => "O",
            ErrorType::RuleViolation => "RV",
        }
    }
}

impl std::fmt::Display for ErrorType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorType::MissingValue => "missing value",
            ErrorType::Typo => "typo",
            ErrorType::PatternViolation => "pattern violation",
            ErrorType::Outlier => "outlier",
            ErrorType::RuleViolation => "rule violation",
        };
        write!(f, "{name}")
    }
}

/// Generalises a value to the coarse `L2` character pattern used for
/// pattern-violation classification (letters → `L`, digits → `D`, whitespace →
/// `_`, everything else → `S`). The full three-level generalisation of §III-B
/// lives in `zeroed-features`; this compact variant is only used to decide
/// whether a dirty value's format appears among clean values.
fn coarse_pattern(value: &str) -> String {
    value
        .chars()
        .map(|c| {
            if c.is_alphabetic() {
                'L'
            } else if c.is_ascii_digit() {
                'D'
            } else if c.is_whitespace() {
                '_'
            } else {
                'S'
            }
        })
        .collect()
}

/// Classifies a single erroneous cell, given the dirty value, the clean value,
/// the set of clean coarse patterns of the attribute and the dirty value's
/// relative frequency within the attribute.
///
/// `violates_rule` should be `true` when the caller knows (from dataset
/// metadata / injected error bookkeeping) that the cell breaks a functional
/// dependency; pass `false` when unknown.
pub fn classify_error(
    dirty: &str,
    clean: &str,
    clean_patterns: &HashSet<String>,
    value_frequency: f64,
    violates_rule: bool,
) -> ErrorType {
    if is_missing(dirty) {
        return ErrorType::MissingValue;
    }
    if violates_rule {
        return ErrorType::RuleViolation;
    }
    if edit_distance(dirty, clean) <= 3 {
        return ErrorType::Typo;
    }
    if !clean_patterns.contains(&coarse_pattern(dirty)) {
        return ErrorType::PatternViolation;
    }
    if value_frequency < 0.01 {
        return ErrorType::Outlier;
    }
    // Fall back to rule violation: the value is well-formed and common, so the
    // inconsistency must be contextual.
    ErrorType::RuleViolation
}

/// Per-type error statistics for a (dirty, clean) table pair, as reported in
/// the paper's Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorProfile {
    /// Overall cell error rate.
    pub error_rate: f64,
    /// Number of erroneous cells.
    pub error_count: usize,
    /// Count of errors per type.
    pub by_type: HashMap<ErrorType, usize>,
}

impl ErrorProfile {
    /// Rate (fraction of all cells) of one error type.
    pub fn rate(&self, ty: ErrorType, total_cells: usize) -> f64 {
        if total_cells == 0 {
            0.0
        } else {
            *self.by_type.get(&ty).unwrap_or(&0) as f64 / total_cells as f64
        }
    }
}

/// Computes the [`ErrorProfile`] of a dirty/clean pair by classifying every
/// differing cell. `rule_violation_cells` lets the caller pass cells known to
/// be rule violations (e.g. from the error injector's bookkeeping).
pub fn profile_errors(
    dirty: &Table,
    clean: &Table,
    rule_violation_cells: &HashSet<(usize, usize)>,
) -> crate::Result<ErrorProfile> {
    let mask = ErrorMask::diff(dirty, clean)?;
    // Pre-compute per-column clean pattern sets and dirty value frequencies.
    let mut clean_patterns: Vec<HashSet<String>> = Vec::with_capacity(dirty.n_cols());
    let mut value_counts: Vec<HashMap<&str, usize>> = Vec::with_capacity(dirty.n_cols());
    for j in 0..dirty.n_cols() {
        let mut pats = HashSet::new();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for i in 0..dirty.n_rows() {
            pats.insert(coarse_pattern(clean.cell(i, j)));
            *counts.entry(dirty.cell(i, j)).or_insert(0) += 1;
        }
        clean_patterns.push(pats);
        value_counts.push(counts);
    }
    let n_rows = dirty.n_rows().max(1);
    let mut by_type: HashMap<ErrorType, usize> = HashMap::new();
    for cell in mask.iter_errors() {
        let d = dirty.cell(cell.row, cell.col);
        let c = clean.cell(cell.row, cell.col);
        let freq =
            value_counts[cell.col].get(d).copied().unwrap_or(0) as f64 / n_rows as f64;
        let ty = classify_error(
            d,
            c,
            &clean_patterns[cell.col],
            freq,
            rule_violation_cells.contains(&(cell.row, cell.col)),
        );
        *by_type.entry(ty).or_insert(0) += 1;
    }
    Ok(ErrorProfile {
        error_rate: mask.error_rate(),
        error_count: mask.error_count(),
        by_type,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns(values: &[&str]) -> HashSet<String> {
        values.iter().map(|v| coarse_pattern(v)).collect()
    }

    #[test]
    fn classify_missing_and_typo() {
        let pats = patterns(&["Bachelor", "Master"]);
        assert_eq!(
            classify_error("", "Bachelor", &pats, 0.2, false),
            ErrorType::MissingValue
        );
        assert_eq!(
            classify_error("NULL", "Bachelor", &pats, 0.2, false),
            ErrorType::MissingValue
        );
        assert_eq!(
            classify_error("Bechxlor", "Bachelor", &pats, 0.001, false),
            ErrorType::Typo
        );
    }

    #[test]
    fn classify_pattern_outlier_rule() {
        let pats = patterns(&["12:30 pm", "1:45 am"]);
        // "half past twelve" has a pattern (all letters) not seen among clean
        // values and is far (edit distance > 3) from the clean value.
        assert_eq!(
            classify_error("half past twelve", "12:30 pm", &pats, 0.001, false),
            ErrorType::PatternViolation
        );
        // Same pattern as clean values, rare, distant from clean value → outlier.
        let pats_num = patterns(&["80000", "64000"]);
        assert_eq!(
            classify_error("99999", "64000", &pats_num, 0.001, false),
            ErrorType::Outlier
        );
        // Known rule violation dominates.
        assert_eq!(
            classify_error("F", "M", &pats, 0.4, true),
            ErrorType::RuleViolation
        );
        // Frequent, well-formed and far from the clean value → rule violation fallback.
        let pats_name = patterns(&["pneumonia", "heart attack"]);
        assert_eq!(
            classify_error("pneumonia", "heart attack", &pats_name, 0.3, false),
            ErrorType::RuleViolation
        );
    }

    #[test]
    fn profile_counts_types() {
        let clean = Table::new(
            "t",
            vec!["name".into(), "code".into()],
            vec![
                vec!["alice".into(), "A-1".into()],
                vec!["bob".into(), "B-2".into()],
                vec!["carla".into(), "C-3".into()],
                vec!["dan".into(), "D-4".into()],
            ],
        )
        .unwrap();
        let mut dirty = clean.clone();
        dirty.set(0, 0, "alicf").unwrap(); // typo
        dirty.set(1, 1, "").unwrap(); // missing
        dirty.set(2, 1, "C3###").unwrap(); // pattern violation
        let profile = profile_errors(&dirty, &clean, &HashSet::new()).unwrap();
        assert_eq!(profile.error_count, 3);
        assert_eq!(profile.by_type.get(&ErrorType::Typo), Some(&1));
        assert_eq!(profile.by_type.get(&ErrorType::MissingValue), Some(&1));
        assert_eq!(profile.by_type.get(&ErrorType::PatternViolation), Some(&1));
        assert!(profile.rate(ErrorType::Typo, dirty.n_cells()) > 0.0);
    }

    #[test]
    fn codes_and_display() {
        assert_eq!(ErrorType::MissingValue.code(), "MV");
        assert_eq!(ErrorType::RuleViolation.code(), "RV");
        assert_eq!(format!("{}", ErrorType::Outlier), "outlier");
        assert_eq!(ErrorType::ALL.len(), 5);
    }
}
