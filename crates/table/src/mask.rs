//! Per-cell boolean error masks.
//!
//! An [`ErrorMask`] marks which cells of a table are erroneous. Ground-truth
//! masks are obtained by diffing a dirty table against its clean version
//! (`D[i,j] != D*[i,j]`, the paper's error definition); detector outputs are
//! also represented as masks so that scoring is uniform across all methods.

use crate::metrics::DetectionReport;
use crate::table::{CellRef, Table};
use crate::{Result, TableError};
use serde::{Deserialize, Serialize};

/// A dense boolean matrix with the same shape as its table: `true` marks an
/// erroneous (or predicted-erroneous) cell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorMask {
    n_rows: usize,
    n_cols: usize,
    flags: Vec<bool>,
}

impl ErrorMask {
    /// Creates an all-false mask of the given shape.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            flags: vec![false; n_rows * n_cols],
        }
    }

    /// Creates an all-false mask with the shape of `table`.
    pub fn for_table(table: &Table) -> Self {
        Self::new(table.n_rows(), table.n_cols())
    }

    /// Computes the ground-truth mask by cell-wise comparison of a dirty table
    /// against its clean counterpart. Any literal difference counts as an
    /// error, mirroring the paper's problem statement.
    pub fn diff(dirty: &Table, clean: &Table) -> Result<Self> {
        dirty.congruent_with(clean)?;
        let mut mask = Self::for_table(dirty);
        for i in 0..dirty.n_rows() {
            for j in 0..dirty.n_cols() {
                if dirty.cell(i, j) != clean.cell(i, j) {
                    mask.set(i, j, true);
                }
            }
        }
        Ok(mask)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        row * self.n_cols + col
    }

    /// Returns the flag at `(row, col)`. Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.flags[self.idx(row, col)]
    }

    /// Checked accessor.
    pub fn try_get(&self, row: usize, col: usize) -> Result<bool> {
        if row >= self.n_rows || col >= self.n_cols {
            return Err(TableError::OutOfBounds {
                what: format!(
                    "mask cell ({row}, {col}) of ({}, {})",
                    self.n_rows, self.n_cols
                ),
            });
        }
        Ok(self.get(row, col))
    }

    /// Sets the flag at `(row, col)`. Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        let i = self.idx(row, col);
        self.flags[i] = value;
    }

    /// Marks a cell as erroneous.
    pub fn mark(&mut self, cell: CellRef) {
        self.set(cell.row, cell.col, true);
    }

    /// Number of cells flagged as errors.
    pub fn error_count(&self) -> usize {
        self.flags.iter().filter(|&&b| b).count()
    }

    /// Fraction of cells flagged as errors.
    pub fn error_rate(&self) -> f64 {
        if self.flags.is_empty() {
            0.0
        } else {
            self.error_count() as f64 / self.flags.len() as f64
        }
    }

    /// Number of cells flagged in a single column.
    pub fn column_error_count(&self, col: usize) -> usize {
        (0..self.n_rows).filter(|&i| self.get(i, col)).count()
    }

    /// Iterator over all flagged cells.
    pub fn iter_errors(&self) -> impl Iterator<Item = CellRef> + '_ {
        (0..self.n_rows).flat_map(move |i| {
            (0..self.n_cols)
                .filter(move |&j| self.get(i, j))
                .map(move |j| CellRef::new(i, j))
        })
    }

    /// Cell-wise OR of two masks (e.g. union of detector outputs).
    pub fn union(&self, other: &ErrorMask) -> Result<ErrorMask> {
        self.check_same_shape(other)?;
        let mut out = self.clone();
        for (a, b) in out.flags.iter_mut().zip(other.flags.iter()) {
            *a = *a || *b;
        }
        Ok(out)
    }

    /// Cell-wise AND of two masks.
    pub fn intersection(&self, other: &ErrorMask) -> Result<ErrorMask> {
        self.check_same_shape(other)?;
        let mut out = self.clone();
        for (a, b) in out.flags.iter_mut().zip(other.flags.iter()) {
            *a = *a && *b;
        }
        Ok(out)
    }

    /// Scores this mask (the prediction) against a ground-truth mask.
    pub fn score_against(&self, truth: &ErrorMask) -> Result<DetectionReport> {
        self.check_same_shape(truth)?;
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fne = 0usize;
        let mut tn = 0usize;
        for (p, t) in self.flags.iter().zip(truth.flags.iter()) {
            match (p, t) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fne += 1,
                (false, false) => tn += 1,
            }
        }
        Ok(DetectionReport::from_counts(tp, fp, fne, tn))
    }

    fn check_same_shape(&self, other: &ErrorMask) -> Result<()> {
        if self.n_rows != other.n_rows || self.n_cols != other.n_cols {
            return Err(TableError::ShapeMismatch(format!(
                "mask shapes differ: ({}, {}) vs ({}, {})",
                self.n_rows, self.n_cols, other.n_rows, other.n_cols
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dirty_clean() -> (Table, Table) {
        let clean = Table::new(
            "t",
            vec!["a".into(), "b".into()],
            vec![
                vec!["1".into(), "x".into()],
                vec!["2".into(), "y".into()],
                vec!["3".into(), "z".into()],
            ],
        )
        .unwrap();
        let mut dirty = clean.clone();
        dirty.set(0, 1, "").unwrap();
        dirty.set(2, 0, "33").unwrap();
        (dirty, clean)
    }

    #[test]
    fn diff_marks_changed_cells() {
        let (dirty, clean) = dirty_clean();
        let mask = ErrorMask::diff(&dirty, &clean).unwrap();
        assert_eq!(mask.error_count(), 2);
        assert!(mask.get(0, 1));
        assert!(mask.get(2, 0));
        assert!(!mask.get(1, 0));
        assert!((mask.error_rate() - 2.0 / 6.0).abs() < 1e-12);
        let cells: Vec<CellRef> = mask.iter_errors().collect();
        assert_eq!(cells, vec![CellRef::new(0, 1), CellRef::new(2, 0)]);
    }

    #[test]
    fn diff_requires_congruent_tables() {
        let (dirty, clean) = dirty_clean();
        assert!(ErrorMask::diff(&dirty, &clean.head(1)).is_err());
    }

    #[test]
    fn union_and_intersection() {
        let mut a = ErrorMask::new(2, 2);
        a.set(0, 0, true);
        a.set(1, 1, true);
        let mut b = ErrorMask::new(2, 2);
        b.set(0, 0, true);
        b.set(0, 1, true);
        let u = a.union(&b).unwrap();
        assert_eq!(u.error_count(), 3);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.error_count(), 1);
        assert!(i.get(0, 0));
        let other_shape = ErrorMask::new(1, 2);
        assert!(a.union(&other_shape).is_err());
    }

    #[test]
    fn scoring() {
        let (dirty, clean) = dirty_clean();
        let truth = ErrorMask::diff(&dirty, &clean).unwrap();
        // Perfect prediction.
        let report = truth.score_against(&truth).unwrap();
        assert_eq!(report.precision, 1.0);
        assert_eq!(report.recall, 1.0);
        assert_eq!(report.f1, 1.0);
        // Predict one of the two errors plus one false positive.
        let mut pred = ErrorMask::for_table(&dirty);
        pred.set(0, 1, true);
        pred.set(1, 0, true);
        let r = pred.score_against(&truth).unwrap();
        assert!((r.precision - 0.5).abs() < 1e-12);
        assert!((r.recall - 0.5).abs() < 1e-12);
        assert!((r.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn checked_access() {
        let m = ErrorMask::new(2, 2);
        assert!(m.try_get(1, 1).is_ok());
        assert!(m.try_get(2, 0).is_err());
        assert_eq!(m.column_error_count(0), 0);
    }
}
