//! The [`Table`] type: an in-memory string-typed relational table.

use crate::schema::Schema;
use crate::{Result, TableError};
use serde::{Deserialize, Serialize};

/// A reference to a single cell, identified by `(row, column)` indices.
///
/// This mirrors the `D[i, j]` notation in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellRef {
    /// Zero-based tuple (row) index.
    pub row: usize,
    /// Zero-based attribute (column) index.
    pub col: usize,
}

impl CellRef {
    /// Creates a new cell reference.
    pub fn new(row: usize, col: usize) -> Self {
        Self { row, col }
    }
}

/// An in-memory relational table with named columns and string cells.
///
/// All values are stored as `String`; the empty string denotes a missing value.
/// This matches the data model of the ZeroED paper where error detection is a
/// binary classification over every cell value `D[i, j]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from column names and row data.
    ///
    /// Returns [`TableError::RowArity`] if any row's width differs from the
    /// number of columns.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<String>,
        rows: Vec<Vec<String>>,
    ) -> Result<Self> {
        let ncols = columns.len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(TableError::RowArity {
                    row: i,
                    found: row.len(),
                    expected: ncols,
                });
            }
        }
        Ok(Self {
            name: name.into(),
            columns,
            rows,
        })
    }

    /// Creates an empty table with the given column names.
    pub fn empty(name: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            name: name.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// The table's name (dataset name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the table.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of tuples (rows).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of attributes (columns).
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Total number of cells.
    pub fn n_cells(&self) -> usize {
        self.n_rows() * self.n_cols()
    }

    /// Column names in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Index of a column by name, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Index of a column by name, as a `Result`.
    pub fn require_column(&self, name: &str) -> Result<usize> {
        self.column_index(name)
            .ok_or_else(|| TableError::NoSuchColumn(name.to_string()))
    }

    /// Borrow the raw rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Borrow a single row.
    pub fn row(&self, i: usize) -> Result<&[String]> {
        self.rows
            .get(i)
            .map(|r| r.as_slice())
            .ok_or_else(|| TableError::OutOfBounds {
                what: format!("row {i} of {}", self.rows.len()),
            })
    }

    /// Get a cell value. Panics on out-of-bounds (use [`Table::get`] for a
    /// checked variant); the unchecked accessor keeps hot loops simple.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Checked cell access.
    pub fn get(&self, row: usize, col: usize) -> Result<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(|s| s.as_str())
            .ok_or_else(|| TableError::OutOfBounds {
                what: format!(
                    "cell ({row}, {col}) of ({}, {})",
                    self.rows.len(),
                    self.columns.len()
                ),
            })
    }

    /// Sets a cell value (checked).
    pub fn set(&mut self, row: usize, col: usize, value: impl Into<String>) -> Result<()> {
        let nrows = self.rows.len();
        let ncols = self.columns.len();
        let cell = self
            .rows
            .get_mut(row)
            .and_then(|r| r.get_mut(col))
            .ok_or_else(|| TableError::OutOfBounds {
                what: format!("cell ({row}, {col}) of ({nrows}, {ncols})"),
            })?;
        *cell = value.into();
        Ok(())
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(TableError::RowArity {
                row: self.rows.len(),
                found: row.len(),
                expected: self.columns.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Returns an owned copy of a column's values.
    pub fn column_values(&self, col: usize) -> Result<Vec<String>> {
        if col >= self.columns.len() {
            return Err(TableError::OutOfBounds {
                what: format!("column {col} of {}", self.columns.len()),
            });
        }
        Ok(self.rows.iter().map(|r| r[col].clone()).collect())
    }

    /// Returns borrowed references to a column's values.
    pub fn column_refs(&self, col: usize) -> Vec<&str> {
        self.rows.iter().map(|r| r[col].as_str()).collect()
    }

    /// Iterator over `(CellRef, &str)` for every cell, row-major.
    pub fn iter_cells(&self) -> impl Iterator<Item = (CellRef, &str)> + '_ {
        self.rows.iter().enumerate().flat_map(|(i, row)| {
            row.iter()
                .enumerate()
                .map(move |(j, v)| (CellRef::new(i, j), v.as_str()))
        })
    }

    /// Returns a new table containing only the first `n` rows (or all rows if
    /// fewer). Useful for the scalability experiments on Tax subsets.
    pub fn head(&self, n: usize) -> Table {
        Table {
            name: self.name.clone(),
            columns: self.columns.clone(),
            rows: self.rows.iter().take(n).cloned().collect(),
        }
    }

    /// Returns a new table containing only the selected row indices.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Table> {
        let mut rows = Vec::with_capacity(indices.len());
        for &i in indices {
            rows.push(self.row(i)?.to_vec());
        }
        Ok(Table {
            name: self.name.clone(),
            columns: self.columns.clone(),
            rows,
        })
    }

    /// Infers the table's [`Schema`] from its contents.
    pub fn schema(&self) -> Schema {
        Schema::infer(self)
    }

    /// Checks that another table has the same shape and column names, which is
    /// required when diffing dirty against clean data.
    pub fn congruent_with(&self, other: &Table) -> Result<()> {
        if self.columns != other.columns {
            return Err(TableError::ShapeMismatch(format!(
                "column names differ: {:?} vs {:?}",
                self.columns, other.columns
            )));
        }
        if self.n_rows() != other.n_rows() {
            return Err(TableError::ShapeMismatch(format!(
                "row counts differ: {} vs {}",
                self.n_rows(),
                other.n_rows()
            )));
        }
        Ok(())
    }

    /// Serialises a tuple as the attribute-value pair string used in LLM
    /// prompts (paper §III-B): `attr1: val1 | attr2: val2 | ...`.
    pub fn serialize_tuple(&self, row: usize) -> Result<String> {
        let r = self.row(row)?;
        let parts: Vec<String> = self
            .columns
            .iter()
            .zip(r.iter())
            .map(|(c, v)| format!("{c}: {v}"))
            .collect();
        Ok(parts.join(" | "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            "tax",
            vec!["Name".into(), "Gender".into(), "Salary".into()],
            vec![
                vec!["Bob Johnson".into(), "M".into(), "80000".into()],
                vec!["Carol Brown".into(), "F".into(), "6000".into()],
                vec!["Dave Green".into(), "M".into(), "64000".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks_arity() {
        let err = Table::new(
            "t",
            vec!["a".into(), "b".into()],
            vec![vec!["1".into()]],
        )
        .unwrap_err();
        assert!(matches!(err, TableError::RowArity { expected: 2, found: 1, .. }));
    }

    #[test]
    fn basic_accessors() {
        let t = sample();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.n_cells(), 9);
        assert_eq!(t.cell(1, 2), "6000");
        assert_eq!(t.get(1, 2).unwrap(), "6000");
        assert!(t.get(9, 0).is_err());
        assert_eq!(t.column_index("Gender"), Some(1));
        assert_eq!(t.column_index("none"), None);
        assert!(t.require_column("none").is_err());
    }

    #[test]
    fn set_and_push() {
        let mut t = sample();
        t.set(0, 2, "90000").unwrap();
        assert_eq!(t.cell(0, 2), "90000");
        assert!(t.set(5, 0, "x").is_err());
        t.push_row(vec!["Eve".into(), "F".into(), "1".into()]).unwrap();
        assert_eq!(t.n_rows(), 4);
        assert!(t.push_row(vec!["too short".into()]).is_err());
    }

    #[test]
    fn column_values_and_iter() {
        let t = sample();
        assert_eq!(
            t.column_values(1).unwrap(),
            vec!["M".to_string(), "F".into(), "M".into()]
        );
        assert!(t.column_values(7).is_err());
        assert_eq!(t.iter_cells().count(), 9);
        let (first_ref, first_val) = t.iter_cells().next().unwrap();
        assert_eq!(first_ref, CellRef::new(0, 0));
        assert_eq!(first_val, "Bob Johnson");
    }

    #[test]
    fn head_and_select() {
        let t = sample();
        assert_eq!(t.head(2).n_rows(), 2);
        assert_eq!(t.head(10).n_rows(), 3);
        let sel = t.select_rows(&[2, 0]).unwrap();
        assert_eq!(sel.cell(0, 0), "Dave Green");
        assert_eq!(sel.cell(1, 0), "Bob Johnson");
        assert!(t.select_rows(&[10]).is_err());
    }

    #[test]
    fn congruence() {
        let t = sample();
        let mut other = sample();
        assert!(t.congruent_with(&other).is_ok());
        other.push_row(vec!["x".into(), "M".into(), "1".into()]).unwrap();
        assert!(t.congruent_with(&other).is_err());
        let different = Table::empty("d", vec!["A".into()]);
        assert!(t.congruent_with(&different).is_err());
    }

    #[test]
    fn tuple_serialization() {
        let t = sample();
        assert_eq!(
            t.serialize_tuple(0).unwrap(),
            "Name: Bob Johnson | Gender: M | Salary: 80000"
        );
    }
}
