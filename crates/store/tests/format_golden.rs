//! Byte-pinned golden encodings of the on-disk format.
//!
//! The same discipline `crates/runtime/tests/request_key_golden.rs` applies
//! to key derivation: a store written by one build must be readable by every
//! later build, so the exact bytes of segment headers and record frames are
//! frozen here. If a test fails because the encoding changed *intentionally*,
//! bump [`zeroed_store::FORMAT_VERSION`] (old segments are then skipped on
//! open instead of misread) and update the golden bytes.

use zeroed_store::codec::encode_record;
use zeroed_store::segment::encode_header;
use zeroed_store::{checksum64, ResponseValue, StoreRecord, FORMAT_VERSION, KEY_SCHEMA_VERSION};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn format_versions_are_pinned() {
    // Both constants participate in the golden bytes below; bump them (and
    // the bytes) together, never silently.
    assert_eq!(FORMAT_VERSION, 1);
    assert_eq!(KEY_SCHEMA_VERSION, 1);
}

#[test]
fn golden_checksums() {
    assert_eq!(checksum64(b""), 0xe220a8397b1dcdaf);
    assert_eq!(checksum64(b"abc"), 0xabe04960c15641ca);
    assert_eq!(checksum64(b"ZEDSTOR1"), 0x6f2e9ded3c0dd572);
}

#[test]
fn golden_segment_header_bytes() {
    // magic "ZEDSTOR1" · format v1 · key schema v1 · segment id 7 · checksum.
    assert_eq!(
        hex(&encode_header(7)),
        "5a454453544f52310100010007000000000000005a814abe547fccd1"
    );
}

#[test]
fn golden_flags_record_frame() {
    // The key is one of the golden RequestKey values pinned in
    // `crates/runtime/tests/request_key_golden.rs` — the exact 128 bits a
    // warm-starting process will derive and look up.
    let record = StoreRecord {
        key: 0xc4020b2ae9c1fd7d505b58fa7c24e6d0,
        input_tokens: 321,
        output_tokens: 13,
        value: ResponseValue::Flags(vec![true, false, true, true]),
    };
    assert_eq!(
        hex(&encode_record(&record)),
        // len=0x29 · checksum · key hi/lo LE · tokens · tag 4 · 4 bools
        "29000000024479172e84ea9f7dfdc1e92a0b02c4d0e6247cfa585b50\
         41010000000000000d00000000000000040400000001000101"
    );
}

#[test]
fn golden_values_record_frame() {
    let record = StoreRecord {
        key: 0x0123456789abcdef_fedcba9876543210,
        input_tokens: 7,
        output_tokens: 2,
        value: ResponseValue::Values(vec!["ab".into(), "c".into()]),
    };
    assert_eq!(
        hex(&encode_record(&record)),
        "300000007aa0b01fc33e95a4efcdab89674523011032547698badcfe\
         0700000000000000020000000000000005020000000200000061620100000063"
    );
}
