//! Byte-pinned golden encodings of the on-disk format.
//!
//! The same discipline `crates/runtime/tests/request_key_golden.rs` applies
//! to key derivation: a store written by one build must be readable by every
//! later build, so the exact bytes of segment headers and record frames are
//! frozen here. If a test fails because the encoding changed *intentionally*,
//! bump [`zeroed_store::FORMAT_VERSION`] (old segments are then decoded
//! through their original layout, or skipped when out of the readable range)
//! and update the golden bytes.
//!
//! Two generations are pinned:
//!
//! * **v2** (current) — frames carry a written-at epoch between the token
//!   counts and the value.
//! * **v1** (read-compat) — the exact bytes PR 4 shipped. These must keep
//!   decoding forever (with epoch 0), because stores written by those builds
//!   are still on disk.

use zeroed_store::codec::{decode_payload, encode_record};
use zeroed_store::segment::{decode_header, encode_header};
use zeroed_store::{
    checksum64, ResponseValue, StoreRecord, FORMAT_VERSION, KEY_SCHEMA_VERSION,
    MIN_READ_FORMAT_VERSION,
};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    let clean: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    clean
        .as_bytes()
        .chunks(2)
        .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).unwrap(), 16).unwrap())
        .collect()
}

#[test]
fn format_versions_are_pinned() {
    // All three constants participate in the golden bytes below; bump them
    // (and the bytes) together, never silently.
    assert_eq!(FORMAT_VERSION, 2);
    assert_eq!(MIN_READ_FORMAT_VERSION, 1);
    assert_eq!(KEY_SCHEMA_VERSION, 1);
}

#[test]
fn golden_checksums() {
    assert_eq!(checksum64(b""), 0xe220a8397b1dcdaf);
    assert_eq!(checksum64(b"abc"), 0xabe04960c15641ca);
    assert_eq!(checksum64(b"ZEDSTOR1"), 0x6f2e9ded3c0dd572);
}

#[test]
fn golden_segment_header_bytes() {
    // magic "ZEDSTOR1" · format v2 · key schema v1 · segment id 7 · checksum.
    assert_eq!(
        hex(&encode_header(7)),
        "5a454453544f523102000100070000000000000091c2bb74209938c9"
    );
}

#[test]
fn golden_flags_record_frame() {
    // The key is one of the golden RequestKey values pinned in
    // `crates/runtime/tests/request_key_golden.rs` — the exact 128 bits a
    // warm-starting process will derive and look up.
    let record = StoreRecord {
        key: 0xc4020b2ae9c1fd7d505b58fa7c24e6d0,
        input_tokens: 321,
        output_tokens: 13,
        epoch: 1_753_000_000,
        value: ResponseValue::Flags(vec![true, false, true, true]),
    };
    assert_eq!(
        hex(&encode_record(&record)),
        // len=0x31 · checksum · key hi/lo LE · tokens · epoch · tag 4 · 4 bools
        "3100000093fec8ff398a2bb67dfdc1e92a0b02c4d0e6247cfa585b50\
         41010000000000000d0000000000000040a87c6800000000040400000001000101"
    );
}

#[test]
fn golden_values_record_frame() {
    let record = StoreRecord {
        key: 0x0123456789abcdef_fedcba9876543210,
        input_tokens: 7,
        output_tokens: 2,
        epoch: 0,
        value: ResponseValue::Values(vec!["ab".into(), "c".into()]),
    };
    assert_eq!(
        hex(&encode_record(&record)),
        "38000000e9e2649bf244d2dbefcdab89674523011032547698badcfe\
         07000000000000000200000000000000000000000000000005020000000200000061620100000063"
    );
}

// ---------------------------------------------------------------------------
// v1 read-compat: the exact bytes the v1 builds wrote, frozen forever.
// ---------------------------------------------------------------------------

/// The v1 segment header golden from PR 4. Its format field says 1, which is
/// within the readable range — `decode_header` must accept it and report the
/// format so frames decode through the v1 layout.
#[test]
fn v1_segment_headers_remain_readable() {
    let v1_header = unhex("5a454453544f52310100010007000000000000005a814abe547fccd1");
    assert_eq!(decode_header(&v1_header), Ok((7, 1)));
}

/// The v1 flags-record golden from PR 4 (no epoch in the payload). It must
/// decode byte-for-byte to the same record, with epoch 0.
#[test]
fn v1_record_frames_remain_readable() {
    let v1_frame = unhex(
        "29000000024479172e84ea9f7dfdc1e92a0b02c4d0e6247cfa585b50\
         41010000000000000d00000000000000040400000001000101",
    );
    let len = u32::from_le_bytes(v1_frame[0..4].try_into().unwrap()) as usize;
    let stored = u64::from_le_bytes(v1_frame[4..12].try_into().unwrap());
    let payload = &v1_frame[12..];
    assert_eq!(payload.len(), len);
    assert_eq!(checksum64(payload), stored, "v1 frame checksums still verify");
    let record = decode_payload(payload, 1).unwrap();
    assert_eq!(record.key, 0xc4020b2ae9c1fd7d505b58fa7c24e6d0);
    assert_eq!(record.input_tokens, 321);
    assert_eq!(record.output_tokens, 13);
    assert_eq!(record.epoch, 0, "v1 records carry no epoch");
    match record.value {
        ResponseValue::Flags(f) => assert_eq!(f, vec![true, false, true, true]),
        other => panic!("wrong variant: {other:?}"),
    }
}
