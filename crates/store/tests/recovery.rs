//! Crash-recovery conformance: arbitrary damage to segment files must never
//! prevent the store from opening, and recovery must return exactly the
//! longest valid record prefix (recovered-prefix semantics).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use zeroed_store::{FsyncPolicy, ResponseStore, ResponseValue, StoreConfig, StoreRecord};

static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

fn temp_dir() -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("zeroed-store-recovery-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn record(key: u128) -> StoreRecord {
    StoreRecord {
        key,
        input_tokens: 50 + key as u64,
        output_tokens: key as u64,
        epoch: zeroed_store::now_epoch(),
        value: ResponseValue::Values(vec![format!("value-{key}"), "padding".into()]),
    }
}

/// Writes `n` records into a fresh store and returns (config, segment path).
fn populated_store(n: u128) -> (StoreConfig, PathBuf) {
    let dir = temp_dir();
    let config = StoreConfig::new(dir.to_str().unwrap());
    let store = ResponseStore::open(config.clone()).unwrap();
    for key in 0..n {
        store.append(&record(key)).unwrap();
    }
    drop(store);
    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "zseg"))
        .expect("one segment written");
    (config, segment)
}

#[test]
fn truncation_at_every_byte_recovers_the_exact_prefix() {
    let (config, segment) = populated_store(6);
    let full = std::fs::read(&segment).unwrap();

    // Locate frame boundaries by replaying recovery on the intact file.
    let store = ResponseStore::open(config.clone()).unwrap();
    assert_eq!(store.len(), 6);
    drop(store);

    // Truncate the file at arbitrary lengths (every 7th byte for speed, plus
    // the exact tail) and check recovered-prefix semantics each time.
    let header_len = 28;
    let mut cuts: Vec<usize> = (0..full.len()).step_by(7).collect();
    cuts.push(full.len() - 1);
    for cut in cuts {
        std::fs::write(&segment, &full[..cut]).unwrap();
        let store = ResponseStore::open(config.clone()).unwrap();
        let report = store.recovery();
        let live = store.load_live().unwrap();
        // Recovered records must be a strict prefix 0..k of what was written.
        for (i, rec) in live.iter().enumerate() {
            assert_eq!(rec.key, i as u128, "cut at {cut}");
            assert_eq!(rec.input_tokens, 50 + i as u64);
        }
        assert_eq!(report.records_recovered, live.len());
        if cut < header_len {
            // Headerless file: skipped wholesale.
            assert_eq!(report.segments_skipped, 1, "cut at {cut}");
            assert_eq!(live.len(), 0);
        } else if cut < full.len() {
            assert!(live.len() < 6, "cut at {cut} must lose the tail");
        }
        // The store stays fully usable: append after recovery.
        store.append(&record(100)).unwrap();
        assert!(store.get(100).unwrap().is_some());
        drop(store);
        // And the post-recovery state reopens cleanly (truncation happened).
        let reopened = ResponseStore::open(config.clone()).unwrap();
        assert_eq!(reopened.recovery().tails_truncated, 0, "cut at {cut}");
        assert!(reopened.get(100).unwrap().is_some());
        drop(reopened);
        // Reset for the next cut: wipe and rewrite the original image.
        for entry in std::fs::read_dir(segment.parent().unwrap()).unwrap() {
            let _ = std::fs::remove_file(entry.unwrap().path());
        }
        std::fs::write(&segment, &full).unwrap();
    }
    let _ = std::fs::remove_dir_all(segment.parent().unwrap());
}

#[test]
fn a_flipped_bit_truncates_from_the_damaged_record() {
    let (config, segment) = populated_store(5);
    let full = std::fs::read(&segment).unwrap();

    // Flip one bit roughly in the middle of the file (inside record ~2).
    let mut corrupt = full.clone();
    let flip_at = full.len() / 2;
    corrupt[flip_at] ^= 0x10;
    std::fs::write(&segment, &corrupt).unwrap();

    let store = ResponseStore::open(config.clone()).unwrap();
    let report = store.recovery();
    assert_eq!(report.tails_truncated, 1);
    assert!(report.bytes_discarded > 0);
    let live = store.load_live().unwrap();
    assert!(!live.is_empty() && live.len() < 5, "prefix before the flip survives");
    for (i, rec) in live.iter().enumerate() {
        assert_eq!(rec.key, i as u128);
    }
    let _ = std::fs::remove_dir_all(segment.parent().unwrap());
}

#[test]
fn zero_length_and_garbage_segments_are_skipped_not_fatal() {
    let (config, segment) = populated_store(3);
    let dir = segment.parent().unwrap().to_path_buf();
    // A zero-length segment (e.g. created then never written before a crash).
    std::fs::write(dir.join("seg-000009.zseg"), b"").unwrap();
    // A garbage file wearing a segment name.
    std::fs::write(dir.join("seg-000010.zseg"), vec![0xabu8; 512]).unwrap();

    let store = ResponseStore::open(config.clone()).unwrap();
    let report = store.recovery();
    assert_eq!(report.segments_scanned, 3);
    assert_eq!(report.segments_skipped, 2);
    assert_eq!(report.records_recovered, 3);
    assert_eq!(store.len(), 3);

    // Compaction reclaims the unusable files.
    store.compact().unwrap();
    assert_eq!(store.len(), 3);
    let remaining: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".zseg"))
        .collect();
    assert_eq!(remaining.len(), 1, "only the compacted generation remains: {remaining:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatched_segments_are_skipped_but_never_deleted() {
    // A segment written under a different format or key-schema version holds
    // valid data belonging to another build (rollback / roll-forward skew).
    // This build must skip it — and compaction must NOT reclaim it, or a
    // temporary version skew becomes permanent data loss.
    let (config, segment) = populated_store(3);
    let dir = segment.parent().unwrap().to_path_buf();

    // Forge a well-formed header carrying a future format version.
    let mut future = zeroed_store::segment::encode_header(42);
    let v2 = (zeroed_store::FORMAT_VERSION + 1).to_le_bytes();
    future[8..10].copy_from_slice(&v2);
    let cksum = zeroed_store::checksum64(&future[0..20]);
    future[20..28].copy_from_slice(&cksum.to_le_bytes());
    let future_path = dir.join("seg-000042.zseg");
    std::fs::write(&future_path, &future).unwrap();

    let store = ResponseStore::open(config.clone()).unwrap();
    assert_eq!(store.recovery().segments_skipped, 1);
    assert_eq!(store.len(), 3);
    store.compact().unwrap();
    assert!(
        future_path.exists(),
        "compaction must preserve version-mismatched segments"
    );
    // Our own data is intact and the store keeps working.
    assert_eq!(store.len(), 3);
    store.append(&record(7)).unwrap();
    drop(store);
    let reopened = ResponseStore::open(config).unwrap();
    assert_eq!(reopened.len(), 4);
    assert!(future_path.exists());
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_compaction_leaves_a_recoverable_store() {
    // Simulate a crash *mid-compaction*: both the old generation and a torn
    // new generation are on disk. Recovery must serve the old records and
    // ignore the torn tail of the new segment.
    let (config, segment) = populated_store(4);
    let dir = segment.parent().unwrap().to_path_buf();
    let old_bytes = std::fs::read(&segment).unwrap();
    // Fake new generation with a higher id: header + half of a record frame.
    let mut torn = Vec::new();
    torn.extend_from_slice(&zeroed_store::segment::encode_header(99));
    let frame = zeroed_store::codec::encode_record(&record(0));
    torn.extend_from_slice(&frame[..frame.len() / 2]);
    std::fs::write(dir.join("seg-000099.zseg"), &torn).unwrap();

    let store = ResponseStore::open(config.clone()).unwrap();
    assert_eq!(store.len(), 4, "old generation still serves");
    assert_eq!(store.recovery().tails_truncated, 1);
    for key in 0..4u128 {
        assert!(store.get(key).unwrap().is_some());
    }
    // New appends land past the interrupted generation's id.
    store.append(&record(55)).unwrap();
    drop(store);
    let reopened = ResponseStore::open(config).unwrap();
    assert_eq!(reopened.len(), 5);
    drop(reopened);
    let _ = old_bytes;
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn completed_compaction_supersedes_the_old_generation() {
    // The flip side: when compaction *finished* (new generation complete)
    // but the old files were not yet deleted, duplicate resolution must
    // prefer the newer segment.
    let dir = temp_dir();
    let mut config = StoreConfig::new(dir.to_str().unwrap());
    config.compact_threshold = 100.0; // manual control
    let store = ResponseStore::open(config.clone()).unwrap();
    store.append(&record(1)).unwrap();
    drop(store);

    // Write a "new generation" segment holding a different value for key 1.
    let mut newer = StoreRecord {
        key: 1,
        input_tokens: 999,
        output_tokens: 9,
        epoch: zeroed_store::now_epoch(),
        value: ResponseValue::Flags(vec![true]),
    };
    let mut bytes = zeroed_store::segment::encode_header(50).to_vec();
    bytes.extend_from_slice(&zeroed_store::codec::encode_record(&newer));
    std::fs::write(dir.join("seg-000050.zseg"), &bytes).unwrap();

    let store = ResponseStore::open(config).unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(store.recovery().records_superseded, 1);
    let served = store.get(1).unwrap().unwrap();
    assert_eq!(served.input_tokens, 999, "the newer generation wins");
    newer.input_tokens = 0;
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsync_always_store_persists_every_record_without_a_clean_shutdown() {
    let dir = temp_dir();
    let mut config = StoreConfig::new(dir.to_str().unwrap());
    config.fsync = FsyncPolicy::Always;
    let store = ResponseStore::open(config).unwrap();
    for key in 0..10u128 {
        store.append(&record(key)).unwrap();
    }
    // No clean drop path taken: leak the store (as an aborting process
    // would). Records were fsynced individually, so the bytes on disk must
    // already hold all ten — verified by scanning the segment image
    // directly. (The leaked handle still holds the single-writer lock for
    // this process, which is itself part of the contract: see
    // `second_store_on_the_same_dir_is_refused_until_the_first_closes`.)
    std::mem::forget(store);
    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "zseg"))
        .expect("one segment written");
    let scan = zeroed_store::segment::scan_segment(&std::fs::read(&segment).unwrap());
    assert!(!scan.torn);
    assert_eq!(scan.records.len(), 10);
    for (i, scanned) in scan.records.iter().enumerate() {
        assert_eq!(scanned.record.key, i as u128);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
