//! `zeroed-store-tool`: read-only inspection of a response-store directory.
//!
//! ```text
//! zeroed-store-tool stat   <store-dir>    layout, segments, live/dead, bytes, epochs
//! zeroed-store-tool ls     <store-dir>    live records: key · kind · tokens · epoch
//! zeroed-store-tool verify <store-dir>    full checksum scan; exit 1 on damage
//! ```
//!
//! The tool never takes the store's advisory locks, never truncates a torn
//! tail and never deletes a file — it is safe to run against a directory
//! that live detector processes are writing. Damage found by `verify` is
//! reported with its exact recovered-prefix length and left untouched (the
//! owning writer's recovery, not an inspection tool, decides when to cut).

use std::path::Path;
use std::process::ExitCode;
use zeroed_store::{inspect, verify, VerifyIssue};

fn usage() -> ExitCode {
    eprintln!("usage: zeroed-store-tool <stat|ls|verify> <store-dir>");
    ExitCode::from(2)
}

/// Renders an epoch (seconds since the Unix epoch) for display; epoch 0
/// marks v1-era records with no timestamp.
fn epoch_str(epoch: u64) -> String {
    if epoch == 0 {
        "-".to_string()
    } else {
        format!("{epoch}")
    }
}

fn cmd_stat(dir: &Path) -> std::io::Result<ExitCode> {
    let report = inspect(dir)?;
    println!("store:    {}", report.root.display());
    println!(
        "layout:   {}",
        if report.sharded {
            format!("sharded ({} shards)", report.shard_count)
        } else {
            "unsharded".to_string()
        }
    );
    let total_segments: usize = report.units.iter().map(|u| u.segments.len()).sum();
    println!(
        "segments: {total_segments} across {} writer dir(s), {} bytes",
        report.units.len(),
        report.total_file_bytes
    );
    println!("live:     {} records", report.live.len());
    println!("dead:     {} records (awaiting their owners' compaction)", report.dead_records());
    match report.epoch_range() {
        Some((min, max)) => println!("epochs:   {} .. {}", epoch_str(min), epoch_str(max)),
        None => println!("epochs:   (no timestamped records)"),
    }
    for (kind, count) in report.kind_counts() {
        println!("  kind {kind:<10} {count}");
    }
    for unit in &report.units {
        let label = match (unit.shard, unit.slot) {
            (Some(shard), Some(slot)) => format!("shard {shard:02} writer {slot:03}"),
            _ => "root".to_string(),
        };
        let bytes: u64 = unit.segments.iter().map(|s| s.file_bytes).sum();
        println!(
            "  {label}: {} segment(s), {} live / {} dead, {} bytes",
            unit.segments.len(),
            unit.live_records,
            unit.dead_records,
            bytes
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_ls(dir: &Path) -> std::io::Result<ExitCode> {
    let report = inspect(dir)?;
    println!("{:<34} {:<10} {:>8} {:>8} {:>12}", "key", "kind", "in_tok", "out_tok", "epoch");
    for entry in &report.live {
        println!(
            "{:032x}  {:<10} {:>8} {:>8} {:>12}",
            entry.key,
            entry.kind,
            entry.input_tokens,
            entry.output_tokens,
            epoch_str(entry.epoch)
        );
    }
    eprintln!("{} live record(s)", report.live.len());
    Ok(ExitCode::SUCCESS)
}

fn cmd_verify(dir: &Path) -> std::io::Result<ExitCode> {
    let issues = verify(dir)?;
    if issues.is_empty() {
        println!("ok: every segment header and record checksum verified");
        return Ok(ExitCode::SUCCESS);
    }
    for issue in &issues {
        match issue {
            VerifyIssue::TornTail {
                path,
                records_recovered,
                valid_bytes,
                discarded_bytes,
            } => println!(
                "TORN   {}: {} intact record(s) in the first {} bytes, {} trailing byte(s) fail the checksum scan",
                path.display(),
                records_recovered,
                valid_bytes,
                discarded_bytes
            ),
            VerifyIssue::UnreadableHeader {
                path,
                issue,
                file_bytes,
            } => println!(
                "HEADER {}: unusable header ({issue:?}), {} byte(s) unreadable",
                path.display(),
                file_bytes
            ),
        }
    }
    println!(
        "{} issue(s) found (nothing was modified; the owning writer's recovery truncates on next open)",
        issues.len()
    );
    Ok(ExitCode::FAILURE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, dir) = match (args.first(), args.get(1)) {
        (Some(command), Some(dir)) if args.len() == 2 => (command.as_str(), Path::new(dir)),
        _ => return usage(),
    };
    let result = match command {
        "stat" => cmd_stat(dir),
        "ls" => cmd_ls(dir),
        "verify" => cmd_verify(dir),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("zeroed-store-tool: {}: {e}", dir.display());
            ExitCode::FAILURE
        }
    }
}
