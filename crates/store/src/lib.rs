//! # zeroed-store
//!
//! Crash-safe, versioned, append-only persistence of completed LLM responses
//! keyed by `zeroed-runtime`'s 128-bit `RequestKey` — the cross-process warm
//! start underneath the in-memory `ResponseCache`.
//!
//! ZeroED's dominant cost is the LLM reasoning stage: criteria analysis,
//! guideline generation and batch labelling re-issue largely identical
//! prompts across benchmark sweeps, service restarts and multi-dataset
//! experiment bins. The runtime already dedups those calls *in-process*; this
//! crate persists every published response so a *later process* can replay
//! them and skip the model entirely.
//!
//! ## Layout
//!
//! A store is a directory of numbered segment files:
//!
//! ```text
//! store-dir/
//!   seg-000000.zseg      sealed segment (earlier generation)
//!   seg-000001.zseg      sealed segment
//!   seg-000002.zseg      active segment (this process appends here)
//!
//! segment file:
//! ┌──────────────────────────── header (28 bytes) ────────────────────────────┐
//! │ magic "ZEDSTOR1" │ format u16 │ key schema u16 │ segment id u64 │ cksum u64│
//! ├──────────────────────────── record frames ────────────────────────────────┤
//! │ len u32 │ checksum u64 │ payload: key u128 · tokens 2×u64 · value         │
//! │ len u32 │ checksum u64 │ payload                                          │
//! │ ...                                                                       │
//! └───────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Records are length-prefixed and content-checksummed ([`codec::checksum64`]
//! over the payload, which starts with the request key). Appending the same
//! key again *supersedes* the earlier record: readers resolve duplicates to
//! the highest `(segment id, offset)`, which makes last-write-wins hold
//! across crashes and half-finished compactions.
//!
//! ## Crash safety
//!
//! Recovery ([`ResponseStore::open`]) scans segments in id order and
//! tolerates arbitrary damage without refusing to open:
//!
//! * a **torn tail** (partial final write) is truncated at the first bad
//!   frame — the valid prefix is recovered exactly;
//! * a **flipped bit** fails the frame checksum and truncates the same way;
//! * a **zero-length or foreign file** fails header validation and is skipped
//!   wholesale (reclaimed at the next compaction);
//! * a **crash mid-compaction** leaves both generations on disk; the new one
//!   has higher segment ids, so duplicate resolution serves its records, and
//!   a torn new generation simply falls back to the still-present old one.
//!
//! Appends always go to a *fresh* segment (never a recovered tail), so one
//! damaged run cannot poison the next. The [`FsyncPolicy`] decides when data
//! is forced to disk: per record, on segment seal, or never.
//!
//! ## Versioning rules
//!
//! The header pins two versions, checked on open:
//!
//! * [`FORMAT_VERSION`] — the byte layout of headers, frames and values. Bump
//!   it when the encoding changes; old segments are then skipped (a warm
//!   start degrades to a cold run, never to garbage).
//! * [`KEY_SCHEMA_VERSION`] — the `RequestKey` derivation scheme, frozen by
//!   the golden-key suite in `crates/runtime/tests/request_key_golden.rs`. If
//!   key derivation changes *intentionally*, bump this constant together with
//!   the golden values: persisted entries keyed under the old scheme must not
//!   be consulted by a process hashing under the new one.
//!
//! `zeroed-runtime` asserts both constants alongside its golden keys, so a
//! drive-by change to either contract fails CI.
//!
//! ## Compaction
//!
//! Superseded and capacity-evicted records are dead weight. When the
//! dead-to-live ratio crosses [`StoreConfig::compact_threshold`], the store
//! rewrites every live record into a fresh generation (fsynced before any old
//! file is deleted) and removes the previous segments.

pub mod codec;
pub mod segment;
pub mod store;

pub use codec::{
    canonical_criteria, checksum64, DecodeError, ResponseValue, StoreRecord, FORMAT_VERSION,
    KEY_SCHEMA_VERSION,
};
pub use segment::{HeaderIssue, HEADER_LEN, MAGIC};
pub use store::{FsyncPolicy, RecoveryReport, ResponseStore, StoreConfig, StoreStats};
