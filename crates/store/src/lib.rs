//! # zeroed-store
//!
//! Crash-safe, versioned, append-only persistence of completed LLM responses
//! keyed by `zeroed-runtime`'s 128-bit `RequestKey` — the cross-process warm
//! start underneath the in-memory `ResponseCache`.
//!
//! ZeroED's dominant cost is the LLM reasoning stage: criteria analysis,
//! guideline generation and batch labelling re-issue largely identical
//! prompts across benchmark sweeps, service restarts and multi-dataset
//! experiment bins. The runtime already dedups those calls *in-process*; this
//! crate persists every published response so a *later process* can replay
//! them and skip the model entirely.
//!
//! ## Quickstart
//!
//! Open → append → reopen → load the live records (what a warm-starting
//! detector does through `zeroed-runtime`'s `StoreLayer`):
//!
//! ```
//! use zeroed_store::{now_epoch, ResponseStore, ResponseValue, StoreConfig, StoreRecord};
//!
//! let dir = std::env::temp_dir().join(format!("zeroed-store-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let config = StoreConfig::new(dir.to_str().unwrap());
//!
//! // First process: append responses, then exit (drop syncs per policy).
//! {
//!     let store = ResponseStore::open(config.clone())?;
//!     store.append(&StoreRecord {
//!         key: 0x0123_4567_89ab_cdef,          // RequestKey::to_u128()
//!         input_tokens: 321,
//!         output_tokens: 13,
//!         epoch: now_epoch(),                  // TTL clock starts here
//!         value: ResponseValue::Flags(vec![true, false]),
//!     })?;
//! }
//!
//! // Second process: recovery scans the segments, then replays everything.
//! let store = ResponseStore::open(config)?;
//! assert_eq!(store.recovery().records_recovered, 1);
//! let live = store.load_live()?;
//! assert_eq!(live.len(), 1);
//! assert_eq!(live[0].input_tokens, 321);
//! # drop(store);
//! # let _ = std::fs::remove_dir_all(&dir);
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! For multi-process fleets, open the same configuration through
//! [`ShardedStore`] with [`StoreConfig::shards`] > 1 — same API, but N
//! processes can append concurrently (see [`shard`] for the layout).
//!
//! ## Layout
//!
//! A store is a directory of numbered segment files:
//!
//! ```text
//! store-dir/
//!   seg-000000.zseg      sealed segment (earlier generation)
//!   seg-000001.zseg      sealed segment
//!   seg-000002.zseg      active segment (this process appends here)
//!
//! segment file:
//! ┌──────────────────────────── header (28 bytes) ────────────────────────────┐
//! │ magic "ZEDSTOR1" │ format u16 │ key schema u16 │ segment id u64 │ cksum u64│
//! ├──────────────────────────── record frames ────────────────────────────────┤
//! │ len u32 │ checksum u64 │ payload: key u128 · tokens 2×u64 · value         │
//! │ len u32 │ checksum u64 │ payload                                          │
//! │ ...                                                                       │
//! └───────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Records are length-prefixed and content-checksummed ([`codec::checksum64`]
//! over the payload, which starts with the request key). Appending the same
//! key again *supersedes* the earlier record: readers resolve duplicates to
//! the highest `(segment id, offset)`, which makes last-write-wins hold
//! across crashes and half-finished compactions.
//!
//! ## Crash safety
//!
//! Recovery ([`ResponseStore::open`]) scans segments in id order and
//! tolerates arbitrary damage without refusing to open:
//!
//! * a **torn tail** (partial final write) is truncated at the first bad
//!   frame — the valid prefix is recovered exactly;
//! * a **flipped bit** fails the frame checksum and truncates the same way;
//! * a **zero-length or foreign file** fails header validation and is skipped
//!   wholesale (reclaimed at the next compaction);
//! * a **crash mid-compaction** leaves both generations on disk; the new one
//!   has higher segment ids, so duplicate resolution serves its records, and
//!   a torn new generation simply falls back to the still-present old one.
//!
//! Appends always go to a *fresh* segment (never a recovered tail), so one
//! damaged run cannot poison the next. The [`FsyncPolicy`] decides when data
//! is forced to disk: per record, on segment seal, or never.
//!
//! ## Versioning rules
//!
//! The header pins two versions, checked on open:
//!
//! * [`FORMAT_VERSION`] — the byte layout of headers, frames and values.
//!   Formats back to [`MIN_READ_FORMAT_VERSION`] stay *readable* (a v1
//!   segment's epoch-less frames decode with epoch 0); anything outside that
//!   range is skipped and preserved on disk for the build that wrote it (a
//!   warm start degrades to a cold run, never to garbage).
//! * [`KEY_SCHEMA_VERSION`] — the `RequestKey` derivation scheme, frozen by
//!   the golden-key suite in `crates/runtime/tests/request_key_golden.rs`. If
//!   key derivation changes *intentionally*, bump this constant together with
//!   the golden values: persisted entries keyed under the old scheme must not
//!   be consulted by a process hashing under the new one.
//!
//! `zeroed-runtime` asserts both constants alongside its golden keys, so a
//! drive-by change to either contract fails CI.
//!
//! ## Compaction and TTL/GC
//!
//! Superseded and capacity-evicted records are dead weight. When the
//! dead-to-live ratio crosses [`StoreConfig::compact_threshold`], the store
//! rewrites every live record into a fresh generation (fsynced before any old
//! file is deleted) and removes the previous segments.
//!
//! The compactor doubles as the garbage collector for stale experiment bins:
//! every record carries a coarse written-at epoch ([`StoreRecord::epoch`]),
//! and with [`StoreConfig::ttl_secs`] set, expired records are dropped at
//! open, filtered by every compaction, and sweepable on demand via
//! [`ResponseStore::gc`]. [`StoreConfig::gc`] `= false` defers all of that to
//! the explicit sweep, for operators who want to inspect stale bins before
//! reclaiming them. Expiry counts surface in [`StoreStats::expired_records`]
//! and, through the pipeline, in `PipelineStats::store_expired_records`.
//!
//! ## Sharding
//!
//! A single store directory is deliberately single-writer (an advisory lock
//! turns concurrent-open data races into a fast, explicit error). For fleets
//! of detector processes sharing one store root, [`ShardedStore`] partitions
//! the key space across `shard-KK/` directories and gives each process its
//! own locked *writer slot* per shard, merging all slots on read — see the
//! [`shard`] module docs for the layout and its invariants.
//!
//! ## Inspection
//!
//! The `zeroed-store-tool` binary (`stat` / `ls` / `verify`, backed by the
//! [`inspect`](mod@inspect) module) answers "what is in this store and is it intact?"
//! without booting a detector — and without taking locks, truncating tails
//! or deleting files, so it is safe against a store that live writers are
//! appending to.

pub mod codec;
pub mod inspect;
pub mod segment;
pub mod shard;
pub mod store;

pub use codec::{
    canonical_criteria, checksum64, now_epoch, DecodeError, ResponseValue, StoreRecord,
    FORMAT_VERSION, KEY_SCHEMA_VERSION, MIN_READ_FORMAT_VERSION,
};
pub use inspect::{inspect, verify, InspectReport, LiveEntry, SegmentReport, UnitReport, VerifyIssue};
pub use segment::{HeaderIssue, HEADER_LEN, MAGIC};
pub use shard::ShardedStore;
pub use store::{FsyncPolicy, RecoveryReport, ResponseStore, StoreConfig, StoreStats};
