//! The on-disk binary codec: primitives, response values and record frames.
//!
//! Everything is little-endian and length-prefixed. Unordered collections
//! (`HashSet` / `HashMap` fields inside criteria) are sorted before encoding
//! so that the same logical value always produces the same bytes — the
//! byte-pinned golden tests in `tests/format_golden.rs` rely on this, and so
//! does checksum verification on recovery.
//!
//! Decoding is defensive: every read is bounds-checked and every enum tag is
//! validated, returning [`DecodeError`] instead of panicking, because decode
//! failures are how segment recovery detects torn or corrupted tails.

use std::collections::{HashMap, HashSet};
use zeroed_criteria::{Check, CriteriaSet, Criterion};
use zeroed_llm::{DistributionAnalysis, ErrorTypeGuide, Guideline};
use zeroed_table::ErrorType;

/// Version of the byte layout described in this module. Bump when the
/// encoding of headers, frames or values changes incompatibly.
///
/// History:
///
/// * **v1** — original layout: record payloads carry `key · tokens · value`.
/// * **v2** — payloads additionally carry a coarse *written-at epoch*
///   (seconds since the Unix epoch, between the token counts and the value)
///   so the TTL/GC policy can expire stale experiment bins. v1 segments
///   remain fully readable: their records decode with epoch 0 ("written at
///   the dawn of time"), which a TTL treats as maximally stale.
pub const FORMAT_VERSION: u16 = 2;

/// The oldest format version this build can still *read*. Segments between
/// [`MIN_READ_FORMAT_VERSION`] and [`FORMAT_VERSION`] are decoded with the
/// corresponding frame layout; anything outside the range is skipped
/// wholesale (and preserved on disk for the build that wrote it).
pub const MIN_READ_FORMAT_VERSION: u16 = 1;

/// Version of the `RequestKey` derivation scheme (`zeroed-runtime`'s
/// 128-bit content-addressed request identity) the store is pinned against.
/// The golden-key suite
/// (`crates/runtime/tests/request_key_golden.rs`) freezes exact 128-bit key
/// values; if key derivation changes intentionally, every persisted entry is
/// unreachable under the new keys, so this constant must be bumped together
/// with the golden values — segments written under a different key schema are
/// skipped on open instead of serving stale entries.
pub const KEY_SCHEMA_VERSION: u16 = 1;

/// A structured LLM response as persisted by the store.
///
/// This is the canonical response value shared with `zeroed-runtime`'s
/// response cache (which re-exports it as `CachedResponse`), so persisting
/// and replaying an entry involves no conversion: a warm start hands back the
/// exact value the wrapped client originally returned.
#[derive(Debug, Clone)]
pub enum ResponseValue {
    /// Criteria set (`generate_criteria` / `refine_criteria`).
    Criteria(CriteriaSet),
    /// Distribution analysis.
    Analysis(DistributionAnalysis),
    /// Detection guideline.
    Guideline(Guideline),
    /// Per-row labels (`label_batch`) or per-column flags (`detect_tuple`).
    Flags(Vec<bool>),
    /// Fabricated error values (`augment_errors`).
    Values(Vec<String>),
}

impl ResponseValue {
    /// Short human-readable name of the variant (what the inspection CLI
    /// prints as the record *kind*).
    pub fn kind_name(&self) -> &'static str {
        match self {
            ResponseValue::Criteria(_) => "criteria",
            ResponseValue::Analysis(_) => "analysis",
            ResponseValue::Guideline(_) => "guideline",
            ResponseValue::Flags(_) => "flags",
            ResponseValue::Values(_) => "values",
        }
    }
}

/// One persisted response: the 128-bit request key, the token cost the
/// original call charged (replayed as savings on a warm hit), the coarse
/// written-at epoch and the value.
#[derive(Debug, Clone)]
pub struct StoreRecord {
    /// The content-addressed request key (`RequestKey::to_u128`).
    pub key: u128,
    /// Prompt tokens the original call consumed.
    pub input_tokens: u64,
    /// Completion tokens the original call produced.
    pub output_tokens: u64,
    /// Coarse written-at timestamp (seconds since the Unix epoch; see
    /// [`now_epoch`]). Records decoded from v1 segments carry 0, which any
    /// TTL treats as maximally stale. The store never stamps this itself —
    /// callers set it (the runtime's persistence layer stamps the wall
    /// clock), which keeps expiry deterministic under test.
    pub epoch: u64,
    /// The response value.
    pub value: ResponseValue,
}

/// The current coarse epoch: whole seconds since the Unix epoch (the
/// granularity [`StoreRecord::epoch`] is stored at — TTLs are measured in
/// seconds, so sub-second precision would be noise on disk).
pub fn now_epoch() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// A decode failure (treated as corruption by segment recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// 64-bit content checksum (rotate-xor-multiply over 8-byte chunks, length
/// folded into the seed, splitmix64 finaliser — the same arithmetic family as
/// the runtime's request keys, with its own seed).
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ (bytes.len() as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
    for chunk in bytes.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = (h.rotate_left(5) ^ u64::from_le_bytes(buf)).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

// ---------------------------------------------------------------------------
// Primitive writers.
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v.as_bytes());
}

fn put_str_vec(buf: &mut Vec<u8>, v: &[String]) {
    put_u32(buf, v.len() as u32);
    for s in v {
        put_str(buf, s);
    }
}

/// Sets are persisted sorted so identical logical values byte-compare equal.
fn put_str_set(buf: &mut Vec<u8>, v: &HashSet<String>) {
    let mut sorted: Vec<&String> = v.iter().collect();
    sorted.sort();
    put_u32(buf, sorted.len() as u32);
    for s in sorted {
        put_str(buf, s);
    }
}

fn put_str_map(buf: &mut Vec<u8>, v: &HashMap<String, String>) {
    let mut sorted: Vec<(&String, &String)> = v.iter().collect();
    sorted.sort();
    put_u32(buf, sorted.len() as u32);
    for (k, val) in sorted {
        put_str(buf, k);
        put_str(buf, val);
    }
}

// ---------------------------------------------------------------------------
// Bounds-checked reader.
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError("unexpected end of payload"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError("invalid bool byte")),
        }
    }

    /// Collection lengths are validated against the bytes actually remaining
    /// (one byte per element minimum) so a corrupted length cannot trigger a
    /// huge allocation before the bounds check fires.
    fn len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(DecodeError("collection length exceeds payload"));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("invalid utf-8 in string"))
    }

    fn str_vec(&mut self) -> Result<Vec<String>, DecodeError> {
        let n = self.len()?;
        (0..n).map(|_| self.str()).collect()
    }

    fn str_set(&mut self) -> Result<HashSet<String>, DecodeError> {
        let n = self.len()?;
        (0..n).map(|_| self.str()).collect()
    }

    fn str_map(&mut self) -> Result<HashMap<String, String>, DecodeError> {
        let n = self.len()?;
        (0..n).map(|_| Ok((self.str()?, self.str()?))).collect()
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Domain-type encodings.
// ---------------------------------------------------------------------------

fn error_type_tag(t: ErrorType) -> u8 {
    match t {
        ErrorType::MissingValue => 1,
        ErrorType::Typo => 2,
        ErrorType::PatternViolation => 3,
        ErrorType::Outlier => 4,
        ErrorType::RuleViolation => 5,
    }
}

fn error_type_from(tag: u8) -> Result<ErrorType, DecodeError> {
    Ok(match tag {
        1 => ErrorType::MissingValue,
        2 => ErrorType::Typo,
        3 => ErrorType::PatternViolation,
        4 => ErrorType::Outlier,
        5 => ErrorType::RuleViolation,
        _ => return Err(DecodeError("invalid error-type tag")),
    })
}

fn put_check(buf: &mut Vec<u8>, check: &Check) {
    match check {
        Check::NotMissing => put_u8(buf, 1),
        Check::PatternTemplate { allowed } => {
            put_u8(buf, 2);
            put_str_set(buf, allowed);
        }
        Check::LengthRange { min, max } => {
            put_u8(buf, 3);
            put_u64(buf, *min as u64);
            put_u64(buf, *max as u64);
        }
        Check::NumericRange { min, max } => {
            put_u8(buf, 4);
            put_f64(buf, *min);
            put_f64(buf, *max);
        }
        Check::Domain { allowed } => {
            put_u8(buf, 5);
            put_str_set(buf, allowed);
        }
        Check::Charset {
            letters,
            digits,
            whitespace,
            symbols,
        } => {
            put_u8(buf, 6);
            put_bool(buf, *letters);
            put_bool(buf, *digits);
            put_bool(buf, *whitespace);
            put_u32(buf, symbols.len() as u32);
            for &c in symbols {
                put_u32(buf, c as u32);
            }
        }
        Check::TokenCountRange { min, max } => {
            put_u8(buf, 7);
            put_u64(buf, *min as u64);
            put_u64(buf, *max as u64);
        }
        Check::FdLookup {
            determinant_col,
            mapping,
        } => {
            put_u8(buf, 8);
            put_u64(buf, *determinant_col as u64);
            put_str_map(buf, mapping);
        }
        Check::CrossKeyword { other_col, pairs } => {
            put_u8(buf, 9);
            put_u64(buf, *other_col as u64);
            put_u32(buf, pairs.len() as u32);
            for (trigger, required) in pairs {
                put_str(buf, trigger);
                put_str(buf, required);
            }
        }
    }
}

fn read_check(r: &mut Reader<'_>) -> Result<Check, DecodeError> {
    Ok(match r.u8()? {
        1 => Check::NotMissing,
        2 => Check::PatternTemplate {
            allowed: r.str_set()?,
        },
        3 => Check::LengthRange {
            min: r.u64()? as usize,
            max: r.u64()? as usize,
        },
        4 => Check::NumericRange {
            min: r.f64()?,
            max: r.f64()?,
        },
        5 => Check::Domain {
            allowed: r.str_set()?,
        },
        6 => Check::Charset {
            letters: r.bool()?,
            digits: r.bool()?,
            whitespace: r.bool()?,
            symbols: {
                let n = r.len()?;
                (0..n)
                    .map(|_| {
                        char::from_u32(r.u32()?).ok_or(DecodeError("invalid char scalar"))
                    })
                    .collect::<Result<Vec<char>, _>>()?
            },
        },
        7 => Check::TokenCountRange {
            min: r.u64()? as usize,
            max: r.u64()? as usize,
        },
        8 => Check::FdLookup {
            determinant_col: r.u64()? as usize,
            mapping: r.str_map()?,
        },
        9 => Check::CrossKeyword {
            other_col: r.u64()? as usize,
            pairs: {
                let n = r.len()?;
                (0..n)
                    .map(|_| Ok((r.str()?, r.str()?)))
                    .collect::<Result<Vec<_>, DecodeError>>()?
            },
        },
        _ => return Err(DecodeError("invalid check tag")),
    })
}

fn put_criteria(buf: &mut Vec<u8>, set: &CriteriaSet) {
    put_u64(buf, set.column as u64);
    put_u32(buf, set.criteria.len() as u32);
    for c in &set.criteria {
        put_str(buf, &c.name);
        put_str(buf, &c.rationale);
        put_check(buf, &c.check);
    }
}

fn read_criteria(r: &mut Reader<'_>) -> Result<CriteriaSet, DecodeError> {
    let column = r.u64()? as usize;
    let n = r.len()?;
    let criteria = (0..n)
        .map(|_| {
            Ok(Criterion {
                name: r.str()?,
                rationale: r.str()?,
                check: read_check(r)?,
            })
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    Ok(CriteriaSet { column, criteria })
}

fn put_analysis(buf: &mut Vec<u8>, a: &DistributionAnalysis) {
    put_str(buf, &a.column);
    put_u64(buf, a.total_records as u64);
    put_u64(buf, a.distinct_values as u64);
    put_f64(buf, a.missing_ratio);
    put_u32(buf, a.frequent_values.len() as u32);
    for (v, c) in &a.frequent_values {
        put_str(buf, v);
        put_u64(buf, *c as u64);
    }
    put_str_vec(buf, &a.rare_values);
    put_u32(buf, a.frequent_patterns.len() as u32);
    for (p, c) in &a.frequent_patterns {
        put_str(buf, p);
        put_u64(buf, *c as u64);
    }
    match a.numeric_summary {
        Some((min, mean, max)) => {
            put_u8(buf, 1);
            put_f64(buf, min);
            put_f64(buf, mean);
            put_f64(buf, max);
        }
        None => put_u8(buf, 0),
    }
    put_str_vec(buf, &a.findings);
}

fn read_analysis(r: &mut Reader<'_>) -> Result<DistributionAnalysis, DecodeError> {
    Ok(DistributionAnalysis {
        column: r.str()?,
        total_records: r.u64()? as usize,
        distinct_values: r.u64()? as usize,
        missing_ratio: r.f64()?,
        frequent_values: {
            let n = r.len()?;
            (0..n)
                .map(|_| Ok((r.str()?, r.u64()? as usize)))
                .collect::<Result<Vec<_>, DecodeError>>()?
        },
        rare_values: r.str_vec()?,
        frequent_patterns: {
            let n = r.len()?;
            (0..n)
                .map(|_| Ok((r.str()?, r.u64()? as usize)))
                .collect::<Result<Vec<_>, DecodeError>>()?
        },
        numeric_summary: match r.u8()? {
            0 => None,
            1 => Some((r.f64()?, r.f64()?, r.f64()?)),
            _ => return Err(DecodeError("invalid option tag")),
        },
        findings: r.str_vec()?,
    })
}

fn put_guideline(buf: &mut Vec<u8>, g: &Guideline) {
    put_str(buf, &g.column);
    put_str(buf, &g.explanation);
    put_u32(buf, g.error_types.len() as u32);
    for guide in &g.error_types {
        put_u8(buf, error_type_tag(guide.error_type));
        put_str_vec(buf, &guide.examples);
        put_str(buf, &guide.causes);
        put_str(buf, &guide.detection);
    }
}

fn read_guideline(r: &mut Reader<'_>) -> Result<Guideline, DecodeError> {
    Ok(Guideline {
        column: r.str()?,
        explanation: r.str()?,
        error_types: {
            let n = r.len()?;
            (0..n)
                .map(|_| {
                    Ok(ErrorTypeGuide {
                        error_type: error_type_from(r.u8()?)?,
                        examples: r.str_vec()?,
                        causes: r.str()?,
                        detection: r.str()?,
                    })
                })
                .collect::<Result<Vec<_>, DecodeError>>()?
        },
    })
}

/// Canonical byte encoding of a criteria set: identical logical sets produce
/// identical bytes regardless of `HashSet`/`HashMap` iteration order (sorted
/// on encode). Cache-key derivation folds this — never `Debug` formatting,
/// whose set ordering varies per hasher instance and would silently split
/// keys across processes.
pub fn canonical_criteria(set: &CriteriaSet) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_criteria(&mut buf, set);
    buf
}

const TAG_CRITERIA: u8 = 1;
const TAG_ANALYSIS: u8 = 2;
const TAG_GUIDELINE: u8 = 3;
const TAG_FLAGS: u8 = 4;
const TAG_VALUES: u8 = 5;

fn put_value(buf: &mut Vec<u8>, value: &ResponseValue) {
    match value {
        ResponseValue::Criteria(set) => {
            put_u8(buf, TAG_CRITERIA);
            put_criteria(buf, set);
        }
        ResponseValue::Analysis(a) => {
            put_u8(buf, TAG_ANALYSIS);
            put_analysis(buf, a);
        }
        ResponseValue::Guideline(g) => {
            put_u8(buf, TAG_GUIDELINE);
            put_guideline(buf, g);
        }
        ResponseValue::Flags(flags) => {
            put_u8(buf, TAG_FLAGS);
            put_u32(buf, flags.len() as u32);
            for &f in flags {
                put_bool(buf, f);
            }
        }
        ResponseValue::Values(values) => {
            put_u8(buf, TAG_VALUES);
            put_str_vec(buf, values);
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<ResponseValue, DecodeError> {
    Ok(match r.u8()? {
        TAG_CRITERIA => ResponseValue::Criteria(read_criteria(r)?),
        TAG_ANALYSIS => ResponseValue::Analysis(read_analysis(r)?),
        TAG_GUIDELINE => ResponseValue::Guideline(read_guideline(r)?),
        TAG_FLAGS => ResponseValue::Flags({
            let n = r.len()?;
            (0..n).map(|_| r.bool()).collect::<Result<Vec<_>, _>>()?
        }),
        TAG_VALUES => ResponseValue::Values(r.str_vec()?),
        _ => return Err(DecodeError("invalid response-value tag")),
    })
}

// ---------------------------------------------------------------------------
// Record frames.
// ---------------------------------------------------------------------------

/// Bytes of a record frame's fixed prefix: payload length (u32) + payload
/// checksum (u64).
pub const FRAME_PREFIX_LEN: usize = 12;

/// Encodes a record payload at the current [`FORMAT_VERSION`] (no frame
/// prefix): key, token counts, written-at epoch, value.
pub fn encode_payload(record: &StoreRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    put_u64(&mut buf, (record.key >> 64) as u64);
    put_u64(&mut buf, record.key as u64);
    put_u64(&mut buf, record.input_tokens);
    put_u64(&mut buf, record.output_tokens);
    put_u64(&mut buf, record.epoch);
    put_value(&mut buf, &record.value);
    buf
}

/// Encodes a full record frame: `[payload_len u32][checksum u64][payload]`.
/// The checksum covers the payload bytes; the length is folded into the
/// checksum seed implicitly via the payload length itself.
pub fn encode_record(record: &StoreRecord) -> Vec<u8> {
    let payload = encode_payload(record);
    let mut frame = Vec::with_capacity(FRAME_PREFIX_LEN + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u64(&mut frame, checksum64(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes a record payload written at format version `format` (see
/// [`FORMAT_VERSION`] for the layout history; v1 payloads carry no epoch and
/// decode with epoch 0). The whole payload must be consumed — trailing bytes
/// are corruption.
pub fn decode_payload(payload: &[u8], format: u16) -> Result<StoreRecord, DecodeError> {
    if !(MIN_READ_FORMAT_VERSION..=FORMAT_VERSION).contains(&format) {
        return Err(DecodeError("unreadable format version"));
    }
    let mut r = Reader::new(payload);
    let hi = r.u64()?;
    let lo = r.u64()?;
    let record = StoreRecord {
        key: ((hi as u128) << 64) | lo as u128,
        input_tokens: r.u64()?,
        output_tokens: r.u64()?,
        epoch: if format >= 2 { r.u64()? } else { 0 },
        value: read_value(&mut r)?,
    };
    if !r.done() {
        return Err(DecodeError("trailing bytes after payload"));
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_criteria() -> CriteriaSet {
        CriteriaSet {
            column: 3,
            criteria: vec![
                Criterion::new("not_missing", "values required", Check::NotMissing),
                Criterion::new(
                    "domain",
                    "known states only",
                    Check::Domain {
                        allowed: ["ma", "co", "az"].iter().map(|s| s.to_string()).collect(),
                    },
                ),
                Criterion::new(
                    "fd",
                    "city determines state",
                    Check::FdLookup {
                        determinant_col: 0,
                        mapping: [("boston", "ma"), ("denver", "co")]
                            .iter()
                            .map(|(a, b)| (a.to_string(), b.to_string()))
                            .collect(),
                    },
                ),
            ],
        }
    }

    #[test]
    fn all_variants_round_trip() {
        let records = vec![
            StoreRecord {
                key: 0xdead_beef_cafe_f00d_0123_4567_89ab_cdef,
                input_tokens: 120,
                output_tokens: 9,
                epoch: 1_753_000_000,
                value: ResponseValue::Criteria(sample_criteria()),
            },
            StoreRecord {
                key: 1,
                input_tokens: 0,
                output_tokens: 0,
                epoch: 0,
                value: ResponseValue::Analysis(DistributionAnalysis {
                    column: "zip".into(),
                    total_records: 50_000,
                    distinct_values: 213,
                    missing_ratio: 0.0125,
                    frequent_values: vec![("35233".into(), 900)],
                    rare_values: vec!["9021".into()],
                    frequent_patterns: vec![("D[5]".into(), 48_000)],
                    numeric_summary: Some((1015.0, 51234.7, 99999.0)),
                    findings: vec!["mostly five-digit".into()],
                }),
            },
            StoreRecord {
                key: 2,
                input_tokens: 7,
                output_tokens: 7,
                epoch: 42,
                value: ResponseValue::Guideline(Guideline {
                    column: "zip".into(),
                    explanation: "US postal code".into(),
                    error_types: vec![ErrorTypeGuide {
                        error_type: ErrorType::PatternViolation,
                        examples: vec!["9021".into()],
                        causes: "truncation".into(),
                        detection: "five digits".into(),
                    }],
                }),
            },
            StoreRecord {
                key: 3,
                input_tokens: 44,
                output_tokens: 5,
                epoch: u64::MAX,
                value: ResponseValue::Flags(vec![true, false, false, true]),
            },
            StoreRecord {
                key: u128::MAX,
                input_tokens: u64::MAX,
                output_tokens: 1,
                epoch: 7,
                value: ResponseValue::Values(vec!["".into(), "größe".into()]),
            },
        ];
        for record in &records {
            let frame = encode_record(record);
            let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
            let checksum = u64::from_le_bytes(frame[4..12].try_into().unwrap());
            assert_eq!(len, frame.len() - FRAME_PREFIX_LEN);
            assert_eq!(checksum, checksum64(&frame[FRAME_PREFIX_LEN..]));
            let decoded = decode_payload(&frame[FRAME_PREFIX_LEN..], FORMAT_VERSION).unwrap();
            assert_eq!(decoded.key, record.key);
            assert_eq!(decoded.input_tokens, record.input_tokens);
            assert_eq!(decoded.output_tokens, record.output_tokens);
            assert_eq!(decoded.epoch, record.epoch);
            // Values carry no PartialEq (HashSet fields); compare re-encodings.
            assert_eq!(encode_payload(&decoded), encode_payload(record));
        }
    }

    #[test]
    fn v1_payloads_decode_with_epoch_zero() {
        // A v1 payload is the v2 payload with the 8 epoch bytes (offset
        // 32..40, between the token counts and the value) spliced out.
        let record = StoreRecord {
            key: 77,
            input_tokens: 10,
            output_tokens: 3,
            epoch: 1_753_000_000,
            value: ResponseValue::Flags(vec![true, false]),
        };
        let v2 = encode_payload(&record);
        let mut v1 = v2[..32].to_vec();
        v1.extend_from_slice(&v2[40..]);
        let decoded = decode_payload(&v1, 1).unwrap();
        assert_eq!(decoded.key, 77);
        assert_eq!(decoded.input_tokens, 10);
        assert_eq!(decoded.output_tokens, 3);
        assert_eq!(decoded.epoch, 0, "v1 records are maximally stale");
        match decoded.value {
            ResponseValue::Flags(f) => assert_eq!(f, vec![true, false]),
            other => panic!("wrong variant: {other:?}"),
        }
        // A v2 payload must not decode as v1 (the epoch bytes would corrupt
        // the value) and unknown versions are rejected outright.
        assert!(decode_payload(&v2, 1).is_err());
        assert!(decode_payload(&v2, 0).is_err());
        assert!(decode_payload(&v2, FORMAT_VERSION + 1).is_err());
    }

    #[test]
    fn unordered_collections_encode_deterministically() {
        // Two HashSets built in different insertion orders must produce the
        // same bytes (sorted on encode).
        let a: HashSet<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let b: HashSet<String> = ["z", "x", "y"].iter().map(|s| s.to_string()).collect();
        let mut buf_a = Vec::new();
        let mut buf_b = Vec::new();
        put_check(&mut buf_a, &Check::Domain { allowed: a });
        put_check(&mut buf_b, &Check::Domain { allowed: b });
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn corrupt_payloads_decode_to_errors_not_panics() {
        let record = StoreRecord {
            key: 42,
            input_tokens: 10,
            output_tokens: 2,
            epoch: 99,
            value: ResponseValue::Criteria(sample_criteria()),
        };
        let payload = encode_payload(&record);
        // Truncations at every prefix length: always an error at the format
        // that produced the payload, never a panic at any readable format.
        for cut in 0..payload.len() {
            let _ = decode_payload(&payload[..cut], FORMAT_VERSION).unwrap_err();
            let _ = decode_payload(&payload[..cut], 1);
        }
        // Single-byte corruption either still decodes (e.g. a flipped token
        // count) or errors — it must never panic. (The checksum layer above
        // rejects these before decode in practice.)
        for i in 0..payload.len() {
            let mut bad = payload.clone();
            bad[i] ^= 0xff;
            let _ = decode_payload(&bad, FORMAT_VERSION);
        }
        // Trailing garbage is rejected.
        let mut extended = payload.clone();
        extended.push(0);
        assert!(decode_payload(&extended, FORMAT_VERSION).is_err());
    }

    #[test]
    fn checksum_is_length_and_content_sensitive() {
        assert_ne!(checksum64(b""), checksum64(b"\0"));
        assert_ne!(checksum64(b"\0"), checksum64(b"\0\0"));
        assert_ne!(checksum64(b"abcdefgh"), checksum64(b"abcdefgi"));
        assert_eq!(checksum64(b"stable"), checksum64(b"stable"));
    }
}
