//! [`ShardedStore`]: key-space-partitioned stores for concurrent writers.
//!
//! A single [`ResponseStore`] is deliberately single-writer: an exclusive
//! advisory lock on its directory stops two processes racing segment ids and
//! deleting each other's generations at compaction. That is correct but it
//! serialises a *fleet* — the north-star deployment runs many detector
//! processes against one shared response store, and "second opener loses"
//! does not scale past one.
//!
//! The sharded layout keeps every single-writer invariant intact while
//! letting any number of processes write concurrently:
//!
//! ```text
//! store-root/
//!   sharding.meta            shard count, fixed at creation
//!   shard-00/                keys with key % N == 0
//!     writer-000/            ← a complete ResponseStore dir (lock, segments)
//!     writer-001/            ← claimed by a second concurrent process
//!   shard-01/
//!     writer-000/
//!   ...
//! ```
//!
//! * The 128-bit `RequestKey` space is partitioned across `N` shard
//!   directories (`shard-KK/`, key routed by `key mod N`).
//! * Within a shard, each opener claims the first **writer slot**
//!   (`writer-WWW/`) whose advisory lock it can take, creating a new slot if
//!   every existing one is held. A slot is an ordinary [`ResponseStore`] —
//!   its own lock, its own appender, its own compactor, its own TTL/GC — so
//!   no two processes ever contend on (or corrupt) the same segment files,
//!   and appends from K processes proceed with zero cross-process lock
//!   traffic.
//! * Reads merge the owned slot with **read-only scans** of the other slots'
//!   segments. Foreign scans never lock, truncate or delete anything; a torn
//!   tail another writer is mid-append on simply ends that scan early, which
//!   is exactly the recovered-prefix semantics recovery would apply.
//!
//! Duplicate keys across slots are benign by construction: the store is
//! content-addressed (`RequestKey` covers everything a deterministic client's
//! answer depends on), so two writers that persisted the same key persisted
//! the same response, and the merge may pick either. Within one slot the
//! usual last-write-wins ordering holds.
//!
//! The shard count is recorded in `sharding.meta` when the store is first
//! created and is immutable afterwards — re-opening with a different
//! [`StoreConfig::shards`] uses the persisted count, because the key→shard
//! mapping must match what the existing records were routed by. A directory
//! that already holds *unsharded* segments (a v1-era store, or one created
//! with `shards <= 1`) keeps its flat layout and opens as a plain
//! single-writer store.

use crate::codec::StoreRecord;
use crate::segment::{parse_segment_file_name, scan_segment};
use crate::store::{expired_at, RecoveryReport, ResponseStore, StoreConfig, StoreStats};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// File recording the shard count at the store root.
pub const META_FILE: &str = "sharding.meta";

/// Upper bound on writer slots per shard — purely a runaway guard; real
/// deployments hold a handful of slots (one per concurrently open process).
const MAX_WRITER_SLOTS: usize = 256;

/// Key-ordered last-write-wins accumulator: repeated inserts for one key
/// overwrite in place, first-seen order is preserved. This is the one
/// duplicate-resolution rule every read-side merge shares — slot scans,
/// cross-slot merges, the warm-start preload and the inspection tool all
/// resolve "exactly as recovery resolves", through this type.
pub(crate) struct LastWriteWins<T> {
    merged: Vec<T>,
    position: HashMap<u128, usize>,
}

impl<T> LastWriteWins<T> {
    pub(crate) fn new() -> Self {
        Self {
            merged: Vec::new(),
            position: HashMap::new(),
        }
    }

    /// Inserts (or overwrites) the value for `key`; returns `true` when the
    /// key had been seen before (the insert superseded an earlier value).
    pub(crate) fn insert(&mut self, key: u128, value: T) -> bool {
        match self.position.get(&key) {
            Some(&i) => {
                self.merged[i] = value;
                true
            }
            None => {
                self.position.insert(key, self.merged.len());
                self.merged.push(value);
                false
            }
        }
    }

    /// The merged values, in first-seen key order.
    pub(crate) fn into_vec(self) -> Vec<T> {
        self.merged
    }
}

/// One shard: its directory plus the writer slot this handle owns.
struct Shard {
    dir: PathBuf,
    slot_index: usize,
    slot: ResponseStore,
}

enum Mode {
    /// Unsharded: the root directory *is* a single [`ResponseStore`]
    /// (backwards-compatible with every store written before sharding).
    Single(ResponseStore),
    /// Sharded: `shard-KK/` directories, one owned writer slot each.
    Sharded { root: PathBuf, shards: Vec<Shard> },
}

/// A response store whose key space may be partitioned across several
/// independently locked segment directories (see the module docs).
///
/// The API mirrors [`ResponseStore`]; `zeroed-runtime`'s `StoreLayer` holds a
/// `ShardedStore` and is oblivious to the layout underneath.
pub struct ShardedStore {
    config: StoreConfig,
    mode: Mode,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("dir", &self.config.dir)
            .field("shards", &self.shard_count())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ShardedStore {
    /// Opens (or creates) the store at `config.dir`.
    ///
    /// The layout is decided once, at creation: `config.shards > 1` on a
    /// fresh directory creates the sharded layout and records the count in
    /// [`META_FILE`]; every later open (whatever its config says) follows
    /// the recorded layout. A directory already holding flat `seg-*.zseg`
    /// files opens as a plain single-writer store.
    pub fn open(config: StoreConfig) -> io::Result<Self> {
        let root = PathBuf::from(&config.dir);
        std::fs::create_dir_all(&root)?;
        let shard_count = resolve_shard_count(&root, config.shards)?;
        if shard_count <= 1 {
            let store = ResponseStore::open(config.clone())?;
            return Ok(Self {
                config,
                mode: Mode::Single(store),
            });
        }
        let mut shards = Vec::with_capacity(shard_count);
        for k in 0..shard_count {
            let dir = root.join(format!("shard-{k:02}"));
            let (slot_index, slot) = claim_writer_slot(&dir, &config)?;
            shards.push(Shard {
                dir,
                slot_index,
                slot,
            });
        }
        Ok(Self {
            config,
            mode: Mode::Sharded { root, shards },
        })
    }

    /// Number of key-space shards (1 when unsharded).
    pub fn shard_count(&self) -> usize {
        match &self.mode {
            Mode::Single(_) => 1,
            Mode::Sharded { shards, .. } => shards.len(),
        }
    }

    /// Whether the on-disk layout is sharded.
    pub fn is_sharded(&self) -> bool {
        matches!(self.mode, Mode::Sharded { .. })
    }

    /// The writer-slot index this handle owns in each shard (empty when
    /// unsharded). Slot `k` of the result belongs to `shard-k`.
    pub fn owned_slots(&self) -> Vec<usize> {
        match &self.mode {
            Mode::Single(_) => Vec::new(),
            Mode::Sharded { shards, .. } => shards.iter().map(|s| s.slot_index).collect(),
        }
    }

    /// The store root directory.
    pub fn dir(&self) -> &Path {
        match &self.mode {
            Mode::Single(store) => store.dir(),
            Mode::Sharded { root, .. } => root,
        }
    }

    fn shard_of(&self, key: u128) -> usize {
        match &self.mode {
            Mode::Single(_) => 0,
            Mode::Sharded { shards, .. } => (key % shards.len() as u128) as usize,
        }
    }

    /// Appends (or supersedes) one record in the shard its key routes to.
    pub fn append(&self, record: &StoreRecord) -> io::Result<u64> {
        match &self.mode {
            Mode::Single(store) => store.append(record),
            Mode::Sharded { shards, .. } => shards[self.shard_of(record.key)].slot.append(record),
        }
    }

    /// Fetches the live record for `key`: the owned writer slot first, then
    /// a read-only scan of the shard's other slots.
    ///
    /// Note the asymmetry: the owned slot answers from its index (one frame
    /// read), but a miss there falls back to scanning the shard's foreign
    /// slots end to end — foreign slots belong to other live processes, so
    /// no index over them can stay fresh. Point lookups against a sharded
    /// store are therefore a tooling/test surface; the runtime's bulk path
    /// is [`ShardedStore::load_live`], which pays the foreign scan once for
    /// the whole preload.
    pub fn get(&self, key: u128) -> io::Result<Option<StoreRecord>> {
        match &self.mode {
            Mode::Single(store) => store.get(key),
            Mode::Sharded { shards, .. } => {
                let shard = &shards[self.shard_of(key)];
                if let Some(record) = shard.slot.get(key)? {
                    return Ok(Some(record));
                }
                let foreign = self.scan_foreign_slots(shard)?;
                Ok(foreign.into_iter().find(|r| r.key == key))
            }
        }
    }

    /// Loads every live record across all shards and writer slots — the
    /// warm-start preload path. Records from foreign slots (other processes'
    /// writers, past or present) are merged in by key; the owned slot wins
    /// conflicts, which is safe because identical keys hold identical
    /// content-addressed values.
    pub fn load_live(&self) -> io::Result<Vec<StoreRecord>> {
        match &self.mode {
            Mode::Single(store) => store.load_live(),
            Mode::Sharded { shards, .. } => {
                let mut merged = LastWriteWins::new();
                for shard in shards {
                    let foreign = self.scan_foreign_slots(shard)?;
                    let owned = shard.slot.load_live()?;
                    for record in foreign.into_iter().chain(owned) {
                        merged.insert(record.key, record);
                    }
                }
                Ok(merged.into_vec())
            }
        }
    }

    /// Read-only merge of every slot in `shard` except the owned one:
    /// segments scanned in `(slot, segment id, offset)` order, duplicate keys
    /// resolved to the latest position, expiry applied exactly as the owned
    /// slots apply it. Never locks, truncates or deletes anything.
    fn scan_foreign_slots(&self, shard: &Shard) -> io::Result<Vec<StoreRecord>> {
        let mut merged = LastWriteWins::new();
        let mut slots: Vec<(usize, PathBuf)> = list_writer_slots(&shard.dir)?;
        slots.retain(|(index, _)| *index != shard.slot_index);
        slots.sort_by_key(|(index, _)| *index);
        for (_, slot_dir) in slots {
            for record in scan_slot_read_only(&slot_dir, &self.config)? {
                merged.insert(record.key, record);
            }
        }
        Ok(merged.into_vec())
    }

    /// Aggregated recovery report across the owned writer slots.
    pub fn recovery(&self) -> RecoveryReport {
        match &self.mode {
            Mode::Single(store) => store.recovery(),
            Mode::Sharded { shards, .. } => shards
                .iter()
                .fold(RecoveryReport::default(), |acc, s| {
                    acc.merge(&s.slot.recovery())
                }),
        }
    }

    /// Aggregated counters across the owned writer slots. Foreign slots
    /// belong to other handles and report through *their* stores — in
    /// particular, TTL expiries of foreign records are *enforced* on every
    /// read here (expired records are never served) but *accounted* by the
    /// slot's owner when it next opens or compacts, so each expiry is
    /// counted exactly once fleet-wide rather than once per reader.
    pub fn stats(&self) -> StoreStats {
        match &self.mode {
            Mode::Single(store) => store.stats(),
            Mode::Sharded { shards, .. } => shards
                .iter()
                .fold(StoreStats::default(), |acc, s| acc.merge(&s.slot.stats())),
        }
    }

    /// Live records in the owned writer slots (foreign slots are not
    /// counted; use [`ShardedStore::load_live`] for the full merged view).
    pub fn len(&self) -> usize {
        match &self.mode {
            Mode::Single(store) => store.len(),
            Mode::Sharded { shards, .. } => shards.iter().map(|s| s.slot.len()).sum(),
        }
    }

    /// Whether the owned writer slots hold no live records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compacts every owned writer slot.
    pub fn compact(&self) -> io::Result<()> {
        match &self.mode {
            Mode::Single(store) => store.compact(),
            Mode::Sharded { shards, .. } => {
                for shard in shards {
                    shard.slot.compact()?;
                }
                Ok(())
            }
        }
    }

    /// Runs the TTL sweep over every owned writer slot, returning the total
    /// number of expired records.
    pub fn gc(&self) -> io::Result<u64> {
        match &self.mode {
            Mode::Single(store) => store.gc(),
            Mode::Sharded { shards, .. } => {
                let mut expired = 0;
                for shard in shards {
                    expired += shard.slot.gc()?;
                }
                Ok(expired)
            }
        }
    }

    /// Durability barrier: fsyncs every owned slot's active segment.
    pub fn sync(&self) -> io::Result<()> {
        match &self.mode {
            Mode::Single(store) => store.sync(),
            Mode::Sharded { shards, .. } => {
                for shard in shards {
                    shard.slot.sync()?;
                }
                Ok(())
            }
        }
    }
}

/// Decides the shard count for `root`: the persisted [`META_FILE`] wins; a
/// directory already holding flat segments (or ever opened as a flat store)
/// is unsharded; otherwise the requested count is recorded and used.
///
/// The whole decision runs under an exclusive lock on `root/.layout.lock`,
/// and whichever layout is chosen leaves a durable marker before the lock
/// releases (`sharding.meta` for sharded, the flat store's `.lock` file for
/// unsharded). Without that, a flat opener and a sharded creator racing on
/// an empty directory could each pick a different layout — the sharded
/// creator would publish `sharding.meta`, and every flat segment the other
/// process then wrote would become silently unreachable behind it.
fn resolve_shard_count(root: &Path, requested: usize) -> io::Result<usize> {
    let layout_lock = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(root.join(".layout.lock"))?;
    layout_lock.lock()?;
    // Critical section (released when `layout_lock` drops).
    let meta = root.join(META_FILE);
    if let Some(count) = read_meta(&meta)? {
        return Ok(count);
    }
    let flat_marker = root.join(".lock");
    let has_flat_store = flat_marker.exists()
        || std::fs::read_dir(root)?.any(|entry| {
            entry
                .ok()
                .and_then(|e| e.file_name().to_str().and_then(parse_segment_file_name))
                .is_some()
        });
    if has_flat_store || requested <= 1 {
        // Legacy / unsharded layout: no meta file, root is the store. Leave
        // the flat store's lock file in place *now* so a sharded creator
        // that grabs the layout lock next already sees the decision, even
        // before the flat `ResponseStore::open` has run.
        let _ = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&flat_marker)?;
        return Ok(1);
    }
    std::fs::write(&meta, format!("shards={requested}\n"))?;
    Ok(requested)
}

pub(crate) fn read_meta(meta: &Path) -> io::Result<Option<usize>> {
    match std::fs::read_to_string(meta) {
        Ok(text) => {
            let count = text
                .lines()
                .find_map(|line| line.strip_prefix("shards="))
                .and_then(|v| v.trim().parse::<usize>().ok())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("malformed {}: {text:?}", meta.display()),
                    )
                })?;
            Ok(Some(count.max(1)))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Claims the first writer slot in `shard_dir` whose advisory lock is free,
/// creating a new slot directory when every existing one is held by another
/// live process.
fn claim_writer_slot(
    shard_dir: &Path,
    config: &StoreConfig,
) -> io::Result<(usize, ResponseStore)> {
    std::fs::create_dir_all(shard_dir)?;
    for index in 0..MAX_WRITER_SLOTS {
        let slot_dir = shard_dir.join(writer_slot_name(index));
        let slot_config = StoreConfig {
            dir: slot_dir.to_string_lossy().into_owned(),
            shards: 1,
            ..config.clone()
        };
        match ResponseStore::open(slot_config) {
            Ok(store) => return Ok((index, store)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::new(
        io::ErrorKind::WouldBlock,
        format!(
            "all {MAX_WRITER_SLOTS} writer slots of {} are locked by live processes",
            shard_dir.display()
        ),
    ))
}

fn writer_slot_name(index: usize) -> String {
    format!("writer-{index:03}")
}

/// Parses a writer-slot index out of a directory name.
fn parse_writer_slot_name(name: &str) -> Option<usize> {
    name.strip_prefix("writer-")?.parse().ok()
}

/// Lists `(slot index, path)` for every writer slot under `shard_dir`.
pub(crate) fn list_writer_slots(shard_dir: &Path) -> io::Result<Vec<(usize, PathBuf)>> {
    let mut slots = Vec::new();
    let entries = match std::fs::read_dir(shard_dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(slots),
        Err(e) => return Err(e),
    };
    for entry in entries.flatten() {
        if let Some(index) = entry.file_name().to_str().and_then(parse_writer_slot_name) {
            slots.push((index, entry.path()));
        }
    }
    Ok(slots)
}

/// Scans one writer slot's segments without taking its lock or mutating
/// anything: segments in id order, duplicates resolved last-write-wins,
/// torn tails ending the affected segment early (another process may be
/// mid-append — its incomplete frame is simply not visible yet). Segment
/// files that vanish mid-scan (the owner compacted) are skipped; any record
/// missed in that race is recomputed by the caller's pipeline, never served
/// corrupted. Expired records are filtered but not counted — expiry
/// accounting belongs to the slot's owner (see [`ShardedStore::stats`]).
fn scan_slot_read_only(slot_dir: &Path, config: &StoreConfig) -> io::Result<Vec<StoreRecord>> {
    let mut segment_ids: Vec<u64> = match std::fs::read_dir(slot_dir) {
        Ok(entries) => entries
            .filter_map(|entry| {
                let entry = entry.ok()?;
                parse_segment_file_name(entry.file_name().to_str()?)
            })
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    segment_ids.sort_unstable();

    let now = crate::codec::now_epoch();
    let mut merged = LastWriteWins::new();
    for id in segment_ids {
        let path = slot_dir.join(crate::segment::segment_file_name(id));
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        let scan = scan_segment(&bytes);
        for scanned in scan.records {
            if config.gc && expired_at(config.ttl_secs, scanned.record.epoch, now) {
                continue;
            }
            merged.insert(scanned.record.key, scanned.record);
        }
    }
    Ok(merged.into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{now_epoch, ResponseValue};
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

    fn temp_dir() -> PathBuf {
        let n = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!(
            "zeroed-shard-unit-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(key: u128) -> StoreRecord {
        StoreRecord {
            key,
            input_tokens: 10 + key as u64,
            output_tokens: key as u64,
            epoch: now_epoch(),
            value: ResponseValue::Values(vec![format!("v{key}")]),
        }
    }

    fn sharded_config(dir: &Path, shards: usize) -> StoreConfig {
        StoreConfig::new(dir.to_str().unwrap()).with_shards(shards)
    }

    #[test]
    fn keys_partition_across_shard_directories() {
        let dir = temp_dir();
        let store = ShardedStore::open(sharded_config(&dir, 4)).unwrap();
        assert!(store.is_sharded());
        assert_eq!(store.shard_count(), 4);
        for key in 0..32u128 {
            store.append(&record(key)).unwrap();
        }
        assert_eq!(store.len(), 32);
        for k in 0..4 {
            let shard_dir = dir.join(format!("shard-{k:02}"));
            assert!(shard_dir.join("writer-000").is_dir(), "shard {k} has a slot");
        }
        // Every record is found through the routed lookup.
        for key in 0..32u128 {
            let got = store.get(key).unwrap().unwrap();
            assert_eq!(got.input_tokens, 10 + key as u64);
        }
        assert!(store.get(999).unwrap().is_none());
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_handles_claim_distinct_slots_and_merge_on_read() {
        let dir = temp_dir();
        let a = ShardedStore::open(sharded_config(&dir, 2)).unwrap();
        // A second handle on the same root must not be refused (the whole
        // point of sharded writers) — it claims the next slot per shard.
        let b = ShardedStore::open(sharded_config(&dir, 2)).unwrap();
        assert_eq!(a.owned_slots(), vec![0, 0]);
        assert_eq!(b.owned_slots(), vec![1, 1]);
        for key in 0..10u128 {
            a.append(&record(key)).unwrap();
        }
        for key in 10..20u128 {
            b.append(&record(key)).unwrap();
        }
        // Each handle sees its own records *and* the other writer's.
        for key in 0..20u128 {
            assert!(a.get(key).unwrap().is_some(), "a must see key {key}");
            assert!(b.get(key).unwrap().is_some(), "b must see key {key}");
        }
        assert_eq!(a.load_live().unwrap().len(), 20);
        assert_eq!(b.load_live().unwrap().len(), 20);
        // Per-handle stats stay attributable to the handle's own slots.
        assert_eq!(a.stats().appended_records, 10);
        assert_eq!(b.stats().appended_records, 10);
        drop(a);
        drop(b);
        // A fresh handle reclaims slot 0 and still reads everything.
        let c = ShardedStore::open(sharded_config(&dir, 2)).unwrap();
        assert_eq!(c.owned_slots(), vec![0, 0]);
        assert_eq!(c.load_live().unwrap().len(), 20);
        drop(c);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_count_is_pinned_by_the_meta_file() {
        let dir = temp_dir();
        let store = ShardedStore::open(sharded_config(&dir, 3)).unwrap();
        for key in 0..9u128 {
            store.append(&record(key)).unwrap();
        }
        drop(store);
        // Re-opening with a *different* requested count follows the recorded
        // layout — otherwise the key→shard mapping would orphan every record.
        let store = ShardedStore::open(sharded_config(&dir, 8)).unwrap();
        assert_eq!(store.shard_count(), 3);
        for key in 0..9u128 {
            assert!(store.get(key).unwrap().is_some());
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsharded_directories_keep_their_flat_layout() {
        let dir = temp_dir();
        // A legacy store created by ResponseStore directly (flat segments).
        {
            let store = ResponseStore::open(StoreConfig::new(dir.to_str().unwrap())).unwrap();
            store.append(&record(1)).unwrap();
        }
        // Opening through ShardedStore with shards requested must not convert
        // the layout (the flat segments would become unreachable).
        let store = ShardedStore::open(sharded_config(&dir, 4)).unwrap();
        assert!(!store.is_sharded());
        assert_eq!(store.shard_count(), 1);
        assert!(store.get(1).unwrap().is_some());
        assert!(!dir.join(META_FILE).exists());
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_flat_opener_pins_the_layout_before_writing_any_segment() {
        // The bootstrap race: a flat store is *open* (no segments appended
        // yet) when a sharded creator arrives. The creator must not publish
        // a sharded layout over it — the flat writer's future segments would
        // become unreachable behind sharding.meta.
        let dir = temp_dir();
        let flat = ShardedStore::open(sharded_config(&dir, 1)).unwrap();
        let err = ShardedStore::open(sharded_config(&dir, 4)).unwrap_err();
        assert_eq!(
            err.kind(),
            io::ErrorKind::WouldBlock,
            "the root is a live flat store; refuse rather than re-layout"
        );
        assert!(!dir.join(META_FILE).exists(), "no sharded layout was created");
        flat.append(&record(1)).unwrap();
        drop(flat);
        // Even after the flat store closes with zero-or-more segments, the
        // layout stays pinned flat (its .lock file is the durable marker).
        let reopened = ShardedStore::open(sharded_config(&dir, 4)).unwrap();
        assert!(!reopened.is_sharded());
        assert!(reopened.get(1).unwrap().is_some());
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shards_one_behaves_exactly_like_a_plain_store() {
        let dir = temp_dir();
        let store = ShardedStore::open(sharded_config(&dir, 1)).unwrap();
        assert!(!store.is_sharded());
        store.append(&record(5)).unwrap();
        assert_eq!(store.load_live().unwrap().len(), 1);
        // Single-writer semantics still hold for the unsharded layout.
        let err = ShardedStore::open(sharded_config(&dir, 1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_slot_scans_tolerate_a_torn_tail() {
        let dir = temp_dir();
        let a = ShardedStore::open(sharded_config(&dir, 2)).unwrap();
        let b = ShardedStore::open(sharded_config(&dir, 2)).unwrap();
        for key in 0..6u128 {
            b.append(&record(key)).unwrap();
        }
        b.sync().unwrap();
        drop(b);
        // Tear the tail of one of b's segments (as if b died mid-append).
        let mut torn_any = false;
        for k in 0..2 {
            let slot = dir.join(format!("shard-{k:02}")).join("writer-001");
            for entry in std::fs::read_dir(&slot).unwrap().flatten() {
                let path = entry.path();
                if path.extension().is_some_and(|e| e == "zseg") {
                    let bytes = std::fs::read(&path).unwrap();
                    if bytes.len() > 40 {
                        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
                        torn_any = true;
                    }
                    break;
                }
            }
        }
        assert!(torn_any);
        // a still reads: intact records survive, torn ones are just absent,
        // and the foreign slot's files are not modified by the scan.
        let live = a.load_live().unwrap();
        assert!(!live.is_empty() && live.len() < 6);
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ttl_applies_to_foreign_slots_too() {
        let dir = temp_dir();
        let now = now_epoch();
        let fresh_config = sharded_config(&dir, 2);
        let stale = StoreRecord {
            epoch: now.saturating_sub(10_000),
            ..record(3)
        };
        {
            let a = ShardedStore::open(fresh_config.clone()).unwrap();
            let b = ShardedStore::open(fresh_config.clone()).unwrap();
            b.append(&stale).unwrap();
            b.append(&record(4)).unwrap();
            drop(b);
            drop(a);
        }
        let ttl_config = fresh_config.with_ttl_secs(3_600);
        let c = ShardedStore::open(ttl_config).unwrap();
        // c owns slot 0 (empty); b's records are foreign. The stale one is
        // filtered by the same TTL the owned slots enforce.
        let live = c.load_live().unwrap();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].key, 4);
        assert!(c.get(3).unwrap().is_none());
        drop(c);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
