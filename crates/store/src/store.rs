//! [`ResponseStore`]: the crash-safe, append-only, generationally compacted
//! segment store.
//!
//! ## Write path
//!
//! Appends go to the *active* segment (created lazily; every process run
//! starts a fresh segment rather than appending to a possibly-torn tail).
//! When the active segment exceeds [`StoreConfig::segment_max_bytes`] it is
//! sealed (optionally fsynced) and a new one is started. Re-appending a key
//! supersedes the earlier record: recovery and compaction both resolve
//! duplicates to the record in the highest `(segment, offset)` position, so
//! last-write-wins holds across crashes.
//!
//! ## Recovery
//!
//! [`ResponseStore::open`] scans every segment in id order. Torn or corrupted
//! tails are truncated at the first bad frame (see
//! [`crate::segment::scan_segment`]); segments with damaged or
//! version-mismatched headers are skipped wholesale. Opening never fails on
//! *content* — only real I/O errors (permissions, missing directory parent)
//! surface as `Err`.
//!
//! ## Compaction
//!
//! Superseded and capacity-evicted records are *dead*: they occupy disk but
//! can never be served. When `dead / max(live, 1)` crosses
//! [`StoreConfig::compact_threshold`], the store rewrites every live record
//! into a fresh segment (fsynced before any old file is deleted, so a crash
//! mid-compaction leaves a recoverable superset) and deletes the old
//! generation.

use crate::codec::{encode_record, now_epoch, StoreRecord, FORMAT_VERSION, FRAME_PREFIX_LEN};
use crate::segment::{
    encode_header, parse_segment_file_name, scan_segment, segment_file_name, HEADER_LEN,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// When the store calls `fsync` on segment data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsyncPolicy {
    /// Never fsync (durability left to the OS; fastest, survives process
    /// crashes but not power loss).
    Never,
    /// Fsync when a segment is sealed, after compaction and on
    /// [`ResponseStore::sync`] — the default.
    OnSeal,
    /// Fsync after every appended record (every published response is durable
    /// before the append returns).
    Always,
}

/// Configuration of a [`ResponseStore`] (and, through
/// [`crate::ShardedStore`], of every writer slot in a sharded store).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Directory holding the segment files (created if missing). For a
    /// sharded store this is the *root*; each shard's writer slots live in
    /// `shard-KK/writer-WWW/` subdirectories underneath it.
    pub dir: String,
    /// Maximum live entries retained (0 = unbounded). When an append pushes
    /// the live count past the capacity, the oldest live entries are evicted
    /// (they become dead records reclaimed by compaction). In a sharded
    /// store the bound applies per writer slot.
    pub capacity: usize,
    /// Fsync policy for appended data.
    pub fsync: FsyncPolicy,
    /// Active-segment size that triggers a roll to a new segment.
    pub segment_max_bytes: u64,
    /// Dead-to-live record ratio beyond which the store compacts.
    pub compact_threshold: f64,
    /// Number of key-space shards (0 or 1 = unsharded single-directory
    /// layout, the default). Only consulted when *creating* a store through
    /// [`crate::ShardedStore::open`]; an existing directory keeps the layout
    /// it was created with (recorded in `sharding.meta`).
    pub shards: usize,
    /// Seconds a record stays servable after its written-at epoch
    /// ([`StoreRecord::epoch`]); 0 disables expiry. v1 records (epoch 0) are
    /// maximally stale, so any TTL expires them.
    pub ttl_secs: u64,
    /// Automatically enforce the TTL: expired records found at open are
    /// dropped during recovery (compacting the store if enough of it died),
    /// and every compaction filters newly expired entries. When `false`,
    /// expiry happens only on an explicit [`ResponseStore::gc`] call — an
    /// operator choice for inspecting stale experiment bins before
    /// reclaiming them.
    pub gc: bool,
}

impl StoreConfig {
    /// A configuration with default tuning for `dir`.
    pub fn new(dir: impl Into<String>) -> Self {
        Self {
            dir: dir.into(),
            capacity: 0,
            fsync: FsyncPolicy::OnSeal,
            segment_max_bytes: 8 << 20,
            compact_threshold: 0.5,
            shards: 1,
            ttl_secs: 0,
            gc: true,
        }
    }

    /// Partitions the key space across `shards` independent segment
    /// directories (see [`crate::ShardedStore`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Expires records `ttl_secs` after their written-at epoch.
    pub fn with_ttl_secs(mut self, ttl_secs: u64) -> Self {
        self.ttl_secs = ttl_secs;
        self
    }
}

/// What [`ResponseStore::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segment files scanned.
    pub segments_scanned: usize,
    /// Segments skipped wholesale (broken or version-mismatched headers).
    pub segments_skipped: usize,
    /// Records recovered into the live index (after duplicate resolution).
    pub records_recovered: usize,
    /// Recovered records superseded by a later record for the same key
    /// (dead on arrival).
    pub records_superseded: usize,
    /// Truncation events (torn/corrupt tails cut off).
    pub tails_truncated: usize,
    /// Bytes discarded by truncation and skipped segments.
    pub bytes_discarded: u64,
    /// Records dropped at open because their TTL had lapsed (only when
    /// [`StoreConfig::gc`] is set; they become dead records for compaction).
    pub records_expired: usize,
}

impl RecoveryReport {
    /// Component-wise sum (used by [`crate::ShardedStore`] to aggregate the
    /// per-slot reports).
    pub fn merge(&self, other: &RecoveryReport) -> RecoveryReport {
        RecoveryReport {
            segments_scanned: self.segments_scanned + other.segments_scanned,
            segments_skipped: self.segments_skipped + other.segments_skipped,
            records_recovered: self.records_recovered + other.records_recovered,
            records_superseded: self.records_superseded + other.records_superseded,
            tails_truncated: self.tails_truncated + other.tails_truncated,
            bytes_discarded: self.bytes_discarded + other.bytes_discarded,
            records_expired: self.records_expired + other.records_expired,
        }
    }
}

/// Counters describing store activity since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live (servable) records.
    pub live_records: u64,
    /// Dead records awaiting compaction (superseded or evicted).
    pub dead_records: u64,
    /// Records appended since open.
    pub appended_records: u64,
    /// Frame bytes appended since open.
    pub appended_bytes: u64,
    /// Live entries evicted by the capacity bound.
    pub evicted_records: u64,
    /// Records expired by the TTL policy (at open, during compaction, or by
    /// an explicit [`ResponseStore::gc`] sweep).
    pub expired_records: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Wall time [`ResponseStore::open`] spent opening this store, including
    /// crash recovery, TTL expiry at open and any open-triggered compaction,
    /// in nanoseconds.
    pub open_nanos: u64,
    /// Wall time spent inside completed compactions, in nanoseconds.
    pub compaction_nanos: u64,
    /// Wall time spent in explicit [`ResponseStore::gc`] sweeps (including
    /// compactions those sweeps triggered, which also count toward
    /// `compaction_nanos`), in nanoseconds.
    pub gc_nanos: u64,
    /// Wall time spent waiting on `fsync`, in nanoseconds.
    pub fsync_nanos: u64,
}

impl StoreStats {
    /// Component-wise sum (used by [`crate::ShardedStore`] to aggregate the
    /// per-slot counters).
    pub fn merge(&self, other: &StoreStats) -> StoreStats {
        StoreStats {
            live_records: self.live_records + other.live_records,
            dead_records: self.dead_records + other.dead_records,
            appended_records: self.appended_records + other.appended_records,
            appended_bytes: self.appended_bytes + other.appended_bytes,
            evicted_records: self.evicted_records + other.evicted_records,
            expired_records: self.expired_records + other.expired_records,
            compactions: self.compactions + other.compactions,
            fsyncs: self.fsyncs + other.fsyncs,
            open_nanos: self.open_nanos + other.open_nanos,
            compaction_nanos: self.compaction_nanos + other.compaction_nanos,
            gc_nanos: self.gc_nanos + other.gc_nanos,
            fsync_nanos: self.fsync_nanos + other.fsync_nanos,
        }
    }
}

struct IndexEntry {
    segment: u64,
    offset: u64,
    frame_len: u32,
    seq: u64,
    /// Written-at epoch, mirrored from the record so TTL sweeps run off the
    /// in-memory index without touching disk.
    epoch: u64,
}

struct ActiveSegment {
    id: u64,
    file: File,
    bytes: u64,
    records: u64,
}

struct Inner {
    index: HashMap<u128, IndexEntry>,
    /// Insertion order for capacity eviction (lazy: stale entries are skipped
    /// when their seq no longer matches the index).
    order: VecDeque<(u64, u128)>,
    next_seq: u64,
    /// Sealed segments by id (recovered ones and rolled ones).
    sealed: Vec<u64>,
    /// Segments skipped at open because their header carries a *different
    /// version* (format or key schema). Their data is valid under another
    /// build, so compaction must leave them on disk — deleting them would
    /// turn a version skew (rollback/roll-forward) into permanent data loss.
    /// Corrupt/garbage segments are not preserved.
    preserved: Vec<u64>,
    active: Option<ActiveSegment>,
    next_segment_id: u64,
    dead_records: u64,
    /// Frame format version of each on-disk segment (recovered segments keep
    /// the version their header declares; segments this process writes are
    /// always the current [`FORMAT_VERSION`]).
    formats: HashMap<u64, u16>,
    /// Live records decoded during the open scan, kept so the warm-start
    /// preload does not read and decode the whole store a second time.
    /// Mirrors the index (superseded/evicted entries removed); consumed by
    /// the first [`ResponseStore::load_live`], invalidated by any append or
    /// compaction in between.
    stash: Option<HashMap<u128, (u64, StoreRecord)>>,
}

#[derive(Default)]
struct Counters {
    appended_records: AtomicU64,
    appended_bytes: AtomicU64,
    evicted_records: AtomicU64,
    expired_records: AtomicU64,
    compactions: AtomicU64,
    fsyncs: AtomicU64,
    open_nanos: AtomicU64,
    compaction_nanos: AtomicU64,
    gc_nanos: AtomicU64,
    fsync_nanos: AtomicU64,
}

/// The crash-safe on-disk response store (see module docs).
pub struct ResponseStore {
    dir: PathBuf,
    config: StoreConfig,
    inner: Mutex<Inner>,
    counters: Counters,
    recovery: RecoveryReport,
    /// Exclusive advisory lock on `dir/.lock`, held for the store's
    /// lifetime. The OS releases it when the process dies, so a crash never
    /// leaves a stale lock — unlike a pid file.
    _dir_lock: File,
}

impl std::fmt::Debug for ResponseStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseStore")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .field("recovery", &self.recovery)
            .finish()
    }
}

impl ResponseStore {
    /// Opens (or creates) the store at `config.dir`, running recovery over
    /// existing segments. Damaged content is truncated or skipped, never
    /// fatal; only real I/O errors return `Err`.
    pub fn open(config: StoreConfig) -> io::Result<Self> {
        let t_open = Instant::now();
        let dir = PathBuf::from(&config.dir);
        std::fs::create_dir_all(&dir)?;

        // Single-writer enforcement: two stores on one directory would race
        // segment ids and delete each other's generations at compaction. An
        // OS advisory lock (auto-released on process death — "never refuse
        // to open" still holds after a crash) turns that silent data loss
        // into an immediate, explicit error.
        let dir_lock = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(dir.join(".lock"))?;
        dir_lock.try_lock().map_err(|_| {
            io::Error::new(
                io::ErrorKind::WouldBlock,
                format!(
                    "response store at {} is already open in another ResponseStore \
                     (single-writer; close the other instance first)",
                    dir.display()
                ),
            )
        })?;

        let mut segment_ids: Vec<u64> = std::fs::read_dir(&dir)?
            .filter_map(|entry| {
                let entry = entry.ok()?;
                parse_segment_file_name(entry.file_name().to_str()?)
            })
            .collect();
        segment_ids.sort_unstable();

        let mut report = RecoveryReport::default();
        let mut inner = Inner {
            index: HashMap::new(),
            order: VecDeque::new(),
            next_seq: 0,
            sealed: Vec::new(),
            preserved: Vec::new(),
            active: None,
            next_segment_id: segment_ids.last().map_or(0, |&last| last + 1),
            dead_records: 0,
            formats: HashMap::new(),
            stash: Some(HashMap::new()),
        };
        let now = now_epoch();

        for &id in &segment_ids {
            let path = dir.join(segment_file_name(id));
            let bytes = std::fs::read(&path)?;
            let scan = scan_segment(&bytes);
            report.segments_scanned += 1;
            report.bytes_discarded += scan.discarded_bytes;
            if let Some(issue) = scan.header_issue {
                // Unusable wholesale. Corrupt files (zero-length, garbage,
                // damaged headers) are reclaimed at the next compaction;
                // *version-mismatched* segments hold valid data another build
                // wrote, so they are preserved for that build to reclaim.
                if matches!(
                    issue,
                    crate::segment::HeaderIssue::FormatVersion
                        | crate::segment::HeaderIssue::KeySchemaVersion
                ) {
                    inner.preserved.push(id);
                }
                report.segments_skipped += 1;
                continue;
            }
            if scan.torn {
                report.tails_truncated += 1;
                // Cut the corrupt tail so later appends/compactions never
                // resurrect garbage behind a valid prefix.
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(scan.valid_len)?;
            }
            inner.formats.insert(id, scan.format);
            for scanned in scan.records {
                // TTL enforcement at open: an expired record is dead on
                // arrival — skipped entirely (it must also not resurrect a
                // key a previous record established, so it is dropped before
                // duplicate resolution, not after).
                if config.gc && expired_at(config.ttl_secs, scanned.record.epoch, now) {
                    report.records_expired += 1;
                    inner.dead_records += 1;
                    continue;
                }
                let seq = inner.next_seq;
                inner.next_seq += 1;
                let previous = inner.index.insert(
                    scanned.record.key,
                    IndexEntry {
                        segment: id,
                        offset: scanned.offset,
                        frame_len: scanned.frame_len,
                        seq,
                        epoch: scanned.record.epoch,
                    },
                );
                inner.order.push_back((seq, scanned.record.key));
                if previous.is_some() {
                    report.records_superseded += 1;
                    inner.dead_records += 1;
                }
                // Keep the decoded record for the warm-start preload (the
                // scan already paid for the decode; last write wins here just
                // as it does in the index).
                if let Some(stash) = inner.stash.as_mut() {
                    stash.insert(scanned.record.key, (seq, scanned.record));
                }
            }
            inner.sealed.push(id);
        }
        report.records_recovered = inner.index.len();

        let store = Self {
            dir,
            config,
            inner: Mutex::new(inner),
            counters: Counters::default(),
            recovery: report,
            _dir_lock: dir_lock,
        };
        store
            .counters
            .expired_records
            .store(report.records_expired as u64, Ordering::Relaxed);
        // Enforce the capacity bound on recovered entries too (oldest out),
        // and reclaim stale experiment bins right away: if TTL expiry just
        // killed enough of the store, compact before serving (open is the
        // natural maintenance point for a store whose writers come and go).
        {
            let mut inner = store.inner.lock().unwrap_or_else(|e| e.into_inner());
            store.evict_over_capacity(&mut inner);
            if store.config.gc && report.records_expired > 0 && store.should_compact(&inner) {
                store.compact_locked(&mut inner)?;
            }
        }
        store.counters.open_nanos.store(
            t_open.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        Ok(store)
    }

    /// The recovery report from open.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Number of live (servable) records.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).index.len()
    }

    /// Whether the store holds no live records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        StoreStats {
            live_records: inner.index.len() as u64,
            dead_records: inner.dead_records,
            appended_records: self.counters.appended_records.load(Ordering::Relaxed),
            appended_bytes: self.counters.appended_bytes.load(Ordering::Relaxed),
            evicted_records: self.counters.evicted_records.load(Ordering::Relaxed),
            expired_records: self.counters.expired_records.load(Ordering::Relaxed),
            compactions: self.counters.compactions.load(Ordering::Relaxed),
            fsyncs: self.counters.fsyncs.load(Ordering::Relaxed),
            open_nanos: self.counters.open_nanos.load(Ordering::Relaxed),
            compaction_nanos: self.counters.compaction_nanos.load(Ordering::Relaxed),
            gc_nanos: self.counters.gc_nanos.load(Ordering::Relaxed),
            fsync_nanos: self.counters.fsync_nanos.load(Ordering::Relaxed),
        }
    }

    fn segment_path(&self, id: u64) -> PathBuf {
        self.dir.join(segment_file_name(id))
    }

    fn fsync(&self, file: &File) -> io::Result<()> {
        let t = Instant::now();
        file.sync_data()?;
        self.counters
            .fsync_nanos
            .fetch_add(t.elapsed().as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
        self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Creates segment `id` with its header written.
    fn create_segment(&self, id: u64) -> io::Result<ActiveSegment> {
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(self.segment_path(id))?;
        file.write_all(&encode_header(id))?;
        Ok(ActiveSegment {
            id,
            file,
            bytes: HEADER_LEN as u64,
            records: 0,
        })
    }

    /// Seals the active segment (fsync per policy) and moves it to `sealed`.
    fn seal_active(&self, inner: &mut Inner) -> io::Result<()> {
        if let Some(active) = inner.active.take() {
            if self.config.fsync != FsyncPolicy::Never {
                self.fsync(&active.file)?;
            }
            inner.sealed.push(active.id);
        }
        Ok(())
    }

    fn ensure_active(&self, inner: &mut Inner, frame_len: u64) -> io::Result<()> {
        let roll = match &inner.active {
            Some(active) => {
                active.records > 0 && active.bytes + frame_len > self.config.segment_max_bytes
            }
            None => true,
        };
        if roll {
            self.seal_active(inner)?;
            let id = inner.next_segment_id;
            inner.next_segment_id += 1;
            inner.active = Some(self.create_segment(id)?);
            inner.formats.insert(id, FORMAT_VERSION);
        }
        Ok(())
    }

    fn evict_over_capacity(&self, inner: &mut Inner) {
        if self.config.capacity == 0 {
            return;
        }
        while inner.index.len() > self.config.capacity {
            let Some((seq, key)) = inner.order.pop_front() else {
                break;
            };
            // Lazy queue: skip entries superseded since they were enqueued.
            let current = inner.index.get(&key).map(|e| e.seq) == Some(seq);
            if current {
                inner.index.remove(&key);
                if let Some(stash) = inner.stash.as_mut() {
                    stash.remove(&key);
                }
                inner.dead_records += 1;
                self.counters.evicted_records.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Appends (or supersedes) one record, returning the frame bytes written.
    /// May seal/roll segments, fsync (per policy) and trigger compaction.
    pub fn append(&self, record: &StoreRecord) -> io::Result<u64> {
        let frame = encode_record(record);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // The preload stash no longer mirrors the index once anything is
        // appended; later load_live calls take the (always-correct) disk path.
        inner.stash = None;
        self.ensure_active(&mut inner, frame.len() as u64)?;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let offset = inner.active.as_ref().expect("ensure_active installed one").bytes;
        let write_result = {
            let active = inner.active.as_mut().expect("checked above");
            active.file.write_all(&frame)
        };
        if let Err(e) = write_result {
            // A partial frame may be on disk past `offset` with the cursor
            // advanced: the segment's tail is now garbage and its cursor
            // disagrees with our offsets. Truncate back to the last good
            // frame (best effort) and abandon the segment — already-indexed
            // records before `offset` stay readable, the next append rolls a
            // fresh segment, and recovery would cut the same tail anyway.
            let abandoned = inner.active.take().expect("checked above");
            let _ = abandoned.file.set_len(offset);
            inner.sealed.push(abandoned.id);
            return Err(e);
        }
        let active = inner.active.as_mut().expect("checked above");
        active.bytes += frame.len() as u64;
        active.records += 1;
        let segment = active.id;
        if self.config.fsync == FsyncPolicy::Always {
            let file = &inner.active.as_ref().expect("still active").file;
            self.fsync(file)?;
        }
        let previous = inner.index.insert(
            record.key,
            IndexEntry {
                segment,
                offset,
                frame_len: frame.len() as u32,
                seq,
                epoch: record.epoch,
            },
        );
        inner.order.push_back((seq, record.key));
        if previous.is_some() {
            inner.dead_records += 1;
        }
        self.counters.appended_records.fetch_add(1, Ordering::Relaxed);
        self.counters
            .appended_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.evict_over_capacity(&mut inner);
        if self.should_compact(&inner) {
            self.compact_locked(&mut inner)?;
        }
        Ok(frame.len() as u64)
    }

    fn should_compact(&self, inner: &Inner) -> bool {
        inner.dead_records > 0
            && inner.dead_records as f64 / inner.index.len().max(1) as f64
                > self.config.compact_threshold
    }

    /// Reads one frame's payload from disk and decodes it at the segment's
    /// recorded format version.
    fn read_entry(&self, entry: &IndexEntry, format: u16) -> io::Result<StoreRecord> {
        let mut file = File::open(self.segment_path(entry.segment))?;
        file.seek(SeekFrom::Start(entry.offset + FRAME_PREFIX_LEN as u64))?;
        let mut payload = vec![0u8; entry.frame_len as usize - FRAME_PREFIX_LEN];
        file.read_exact(&mut payload)?;
        crate::codec::decode_payload(&payload, format)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Whether the TTL policy hides records whose epoch has lapsed by `now`
    /// from reads (expiry is *enforced* on every read path; *reclaiming* the
    /// frames is the job of open/gc/compaction).
    fn read_filter_expired(&self) -> bool {
        self.config.gc && self.config.ttl_secs > 0
    }

    /// Fetches the live record for `key`, reading it from disk. Records
    /// whose TTL lapsed after open are not served (matching what a sharded
    /// reader's foreign scan — or the next open — would conclude).
    pub fn get(&self, key: u128) -> io::Result<Option<StoreRecord>> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.index.get(&key) {
            Some(entry) => {
                if self.read_filter_expired()
                    && expired_at(self.config.ttl_secs, entry.epoch, now_epoch())
                {
                    return Ok(None);
                }
                let format = segment_format(&inner, entry.segment);
                Ok(Some(self.read_entry(entry, format)?))
            }
            None => Ok(None),
        }
    }

    /// Reads and decodes a batch of live entries, opening each referenced
    /// segment file exactly once. Returns `(seq, record)` pairs in arbitrary
    /// order; the caller sorts as needed.
    fn read_entries_grouped(
        &self,
        formats: &HashMap<u64, u16>,
        entries: &[(u64, u64, u64, u32)], // (seq, segment, offset, frame_len)
    ) -> io::Result<Vec<(u64, StoreRecord)>> {
        let mut by_segment: std::collections::BTreeMap<u64, Vec<(u64, u64, u32)>> =
            std::collections::BTreeMap::new();
        for &(seq, segment, offset, frame_len) in entries {
            by_segment
                .entry(segment)
                .or_default()
                .push((seq, offset, frame_len));
        }
        let mut out = Vec::with_capacity(entries.len());
        for (segment, frames) in by_segment {
            let bytes = std::fs::read(self.segment_path(segment))?;
            let format = formats.get(&segment).copied().unwrap_or(FORMAT_VERSION);
            for (seq, offset, frame_len) in frames {
                let start = offset as usize + FRAME_PREFIX_LEN;
                let end = offset as usize + frame_len as usize;
                let payload = bytes.get(start..end).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        "segment shrank under a live index entry",
                    )
                })?;
                let record = crate::codec::decode_payload(payload, format)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                out.push((seq, record));
            }
        }
        Ok(out)
    }

    fn live_entry_list(inner: &Inner) -> Vec<(u64, u64, u64, u32)> {
        inner
            .index
            .values()
            .map(|e| (e.seq, e.segment, e.offset, e.frame_len))
            .collect()
    }

    /// Loads every live record (in stable append order) — the warm-start
    /// preload path. Each segment file is read once, however many records it
    /// holds. Records whose TTL lapsed after open are filtered, exactly as
    /// [`ResponseStore::get`] filters them.
    pub fn load_live(&self) -> io::Result<Vec<StoreRecord>> {
        let now = now_epoch();
        let expired = |epoch: u64| {
            self.read_filter_expired() && expired_at(self.config.ttl_secs, epoch, now)
        };
        // The lock is held across the reads so a concurrent compaction
        // cannot delete a segment out from under the index snapshot.
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // First load after open: the recovery scan already decoded every
        // live record — serve (and free) that stash instead of reading and
        // decoding the whole store a second time.
        if let Some(stash) = inner.stash.take() {
            debug_assert_eq!(stash.len(), inner.index.len());
            drop(inner);
            let mut records: Vec<(u64, StoreRecord)> = stash.into_values().collect();
            records.sort_by_key(|&(seq, _)| seq);
            return Ok(records
                .into_iter()
                .filter(|(_, record)| !expired(record.epoch))
                .map(|(_, record)| record)
                .collect());
        }
        let entries: Vec<(u64, u64, u64, u32)> = inner
            .index
            .values()
            .filter(|e| !expired(e.epoch))
            .map(|e| (e.seq, e.segment, e.offset, e.frame_len))
            .collect();
        let mut records = self.read_entries_grouped(&inner.formats, &entries)?;
        drop(inner);
        records.sort_by_key(|&(seq, _)| seq);
        Ok(records.into_iter().map(|(_, record)| record).collect())
    }

    /// Rewrites live records into a fresh generation and deletes the old
    /// segments. Normally triggered automatically by the dead-ratio
    /// threshold; public for tests and maintenance.
    pub fn compact(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> io::Result<()> {
        let t_compact = Instant::now();
        inner.stash = None;
        // Seal the active segment so its content is readable and accounted.
        self.seal_active(inner)?;

        // Read every live record, one pass per segment file, then restore
        // stable append order. Re-encoding (rather than raw frame copy)
        // validates each record a final time, so compaction can never carry
        // corruption forward.
        let mut records =
            self.read_entries_grouped(&inner.formats, &Self::live_entry_list(inner))?;
        records.sort_by_key(|&(seq, _)| seq);

        // The compactor is also the TTL garbage collector: records whose TTL
        // lapsed since open are dropped here instead of being carried into
        // the new generation.
        if self.config.gc && self.config.ttl_secs > 0 {
            let now = now_epoch();
            let before = records.len();
            records.retain(|(_, record)| !expired_at(self.config.ttl_secs, record.epoch, now));
            let expired = (before - records.len()) as u64;
            self.counters.expired_records.fetch_add(expired, Ordering::Relaxed);
        }

        let new_id = inner.next_segment_id;
        inner.next_segment_id += 1;
        let mut new_segment = self.create_segment(new_id)?;
        let mut new_entries: HashMap<u128, IndexEntry> = HashMap::with_capacity(records.len());
        let mut new_order: VecDeque<(u64, u128)> = VecDeque::with_capacity(records.len());
        for (i, (_, record)) in records.iter().enumerate() {
            let frame = encode_record(record);
            let offset = new_segment.bytes;
            new_segment.file.write_all(&frame)?;
            new_segment.bytes += frame.len() as u64;
            new_segment.records += 1;
            new_entries.insert(
                record.key,
                IndexEntry {
                    segment: new_id,
                    offset,
                    frame_len: frame.len() as u32,
                    seq: i as u64,
                    epoch: record.epoch,
                },
            );
            new_order.push_back((i as u64, record.key));
        }
        let live_count = records.len();
        drop(records);
        // The new generation must be durable before the old one disappears —
        // a crash in between leaves both (recovery resolves to the newest id).
        self.fsync(&new_segment.file)?;

        // Remove the old generation: every segment file except the one just
        // written — sealed segments, the abandoned active one, and corrupt
        // skipped files alike. Version-preserved segments are exempt: those
        // hold valid data written under a different format/key-schema
        // version, and only a build speaking that version may reclaim them.
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if let Some(id) = entry
                    .file_name()
                    .to_str()
                    .and_then(parse_segment_file_name)
                {
                    if id != new_id && !inner.preserved.contains(&id) {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }

        inner.sealed = vec![new_id];
        inner.active = None;
        inner.index = new_entries;
        inner.order = new_order;
        inner.next_seq = live_count as u64;
        inner.dead_records = 0;
        inner.formats = HashMap::from([(new_id, FORMAT_VERSION)]);
        self.counters.compactions.fetch_add(1, Ordering::Relaxed);
        self.counters.compaction_nanos.fetch_add(
            t_compact.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        Ok(())
    }

    /// Sweeps the TTL over the live index — entries whose TTL has lapsed
    /// since open become dead — and compacts if the sweep pushed the dead
    /// ratio over the threshold. Returns how many records expired. This is
    /// the explicit GC entry point for stores configured with
    /// [`StoreConfig::gc`] `= false` (automatic stores run the same logic at
    /// open and inside every compaction).
    pub fn gc(&self) -> io::Result<u64> {
        if self.config.ttl_secs == 0 {
            return Ok(0);
        }
        let t_gc = Instant::now();
        let now = now_epoch();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let expired_keys: Vec<u128> = inner
            .index
            .iter()
            .filter(|(_, entry)| expired_at(self.config.ttl_secs, entry.epoch, now))
            .map(|(&key, _)| key)
            .collect();
        for key in &expired_keys {
            inner.index.remove(key);
            if let Some(stash) = inner.stash.as_mut() {
                stash.remove(key);
            }
            inner.dead_records += 1;
        }
        let expired = expired_keys.len() as u64;
        self.counters.expired_records.fetch_add(expired, Ordering::Relaxed);
        if expired > 0 && self.should_compact(&inner) {
            self.compact_locked(&mut inner)?;
        }
        self.counters
            .gc_nanos
            .fetch_add(t_gc.elapsed().as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
        Ok(expired)
    }

    /// Forces an fsync of the active segment (a durability barrier regardless
    /// of policy). No-op when nothing has been appended.
    pub fn sync(&self) -> io::Result<()> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(active) = &inner.active {
            self.fsync(&active.file)?;
        }
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for ResponseStore {
    fn drop(&mut self) {
        if self.config.fsync != FsyncPolicy::Never {
            let _ = self.sync();
        }
    }
}

/// Whether a record written at `epoch` has outlived `ttl_secs` by `now`
/// (`ttl_secs == 0` disables expiry). Shared with the sharded store's
/// read-only foreign-slot scans so one expiry rule governs every path.
pub(crate) fn expired_at(ttl_secs: u64, epoch: u64, now: u64) -> bool {
    ttl_secs > 0 && epoch.saturating_add(ttl_secs) < now
}

/// The frame format of `segment` (segments this process writes are always
/// current; only recovered ones can be older).
fn segment_format(inner: &Inner, segment: u64) -> u16 {
    inner.formats.get(&segment).copied().unwrap_or(FORMAT_VERSION)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ResponseValue;
    use std::sync::atomic::AtomicU32;

    static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

    fn temp_dir() -> PathBuf {
        let n = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!(
            "zeroed-store-unit-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(key: u128, flags: &[bool]) -> StoreRecord {
        record_at(key, flags, now_epoch())
    }

    fn record_at(key: u128, flags: &[bool], epoch: u64) -> StoreRecord {
        StoreRecord {
            key,
            input_tokens: 100 + key as u64,
            output_tokens: key as u64,
            epoch,
            value: ResponseValue::Flags(flags.to_vec()),
        }
    }

    fn flags_of(record: &StoreRecord) -> &[bool] {
        match &record.value {
            ResponseValue::Flags(f) => f,
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn append_reopen_replays_records() {
        let dir = temp_dir();
        let config = StoreConfig::new(dir.to_str().unwrap());
        {
            let store = ResponseStore::open(config.clone()).unwrap();
            assert!(store.is_empty());
            store.append(&record(1, &[true])).unwrap();
            store.append(&record(2, &[false, true])).unwrap();
            assert_eq!(store.len(), 2);
        }
        let store = ResponseStore::open(config).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.recovery().records_recovered, 2);
        assert_eq!(store.recovery().tails_truncated, 0);
        let live = store.load_live().unwrap();
        assert_eq!(live.len(), 2);
        assert_eq!(live[0].key, 1);
        assert_eq!(flags_of(&live[1]), &[false, true]);
        assert_eq!(live[1].input_tokens, 102);
        let fetched = store.get(2).unwrap().unwrap();
        assert_eq!(flags_of(&fetched), &[false, true]);
        assert!(store.get(99).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewriting_a_key_supersedes_and_last_write_wins_across_reopen() {
        let dir = temp_dir();
        let mut config = StoreConfig::new(dir.to_str().unwrap());
        config.compact_threshold = 100.0; // keep dead records around
        {
            let store = ResponseStore::open(config.clone()).unwrap();
            store.append(&record(5, &[false])).unwrap();
            store.append(&record(5, &[true])).unwrap();
            assert_eq!(store.len(), 1);
            assert_eq!(store.stats().dead_records, 1);
            assert_eq!(flags_of(&store.get(5).unwrap().unwrap()), &[true]);
        }
        let store = ResponseStore::open(config).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.recovery().records_superseded, 1);
        assert_eq!(flags_of(&store.get(5).unwrap().unwrap()), &[true]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_and_compaction_collapses_generations() {
        let dir = temp_dir();
        let mut config = StoreConfig::new(dir.to_str().unwrap());
        config.segment_max_bytes = 150; // force frequent rolls
        config.compact_threshold = 100.0;
        let store = ResponseStore::open(config.clone()).unwrap();
        for round in 0..4 {
            for key in 0..6u128 {
                store.append(&record(key, &[round % 2 == 0])).unwrap();
            }
        }
        assert_eq!(store.len(), 6);
        assert_eq!(store.stats().dead_records, 18);
        let seg_count = |dir: &PathBuf| {
            std::fs::read_dir(dir)
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .ends_with(".zseg")
                })
                .count()
        };
        assert!(seg_count(&dir) > 1, "rolling must have produced segments");

        store.compact().unwrap();
        assert_eq!(store.len(), 6);
        assert_eq!(store.stats().dead_records, 0);
        assert_eq!(store.stats().compactions, 1);
        assert_eq!(seg_count(&dir), 1, "one compacted segment remains");
        // Values survived (last write was round 3 → false).
        for key in 0..6u128 {
            assert_eq!(flags_of(&store.get(key).unwrap().unwrap()), &[false]);
        }
        drop(store);
        let store = ResponseStore::open(config).unwrap();
        assert_eq!(store.len(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_ratio_triggers_automatic_compaction() {
        let dir = temp_dir();
        let mut config = StoreConfig::new(dir.to_str().unwrap());
        config.compact_threshold = 0.5;
        let store = ResponseStore::open(config).unwrap();
        store.append(&record(1, &[true])).unwrap();
        store.append(&record(2, &[true])).unwrap();
        // Two supersedes push dead/live to 1.0 > 0.5 → compaction fires.
        store.append(&record(1, &[false])).unwrap();
        store.append(&record(2, &[false])).unwrap();
        assert!(store.stats().compactions >= 1);
        assert_eq!(store.stats().dead_records, 0);
        assert_eq!(store.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_evicts_oldest_live_entries() {
        let dir = temp_dir();
        let mut config = StoreConfig::new(dir.to_str().unwrap());
        config.capacity = 3;
        config.compact_threshold = 100.0;
        let store = ResponseStore::open(config.clone()).unwrap();
        for key in 0..5u128 {
            store.append(&record(key, &[true])).unwrap();
        }
        assert_eq!(store.len(), 3);
        assert_eq!(store.stats().evicted_records, 2);
        assert!(store.get(0).unwrap().is_none());
        assert!(store.get(1).unwrap().is_none());
        assert!(store.get(4).unwrap().is_some());
        drop(store);
        // Recovery enforces the bound too.
        let store = ResponseStore::open(config).unwrap();
        assert_eq!(store.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_store_on_the_same_dir_is_refused_until_the_first_closes() {
        let dir = temp_dir();
        let config = StoreConfig::new(dir.to_str().unwrap());
        let first = ResponseStore::open(config.clone()).unwrap();
        first.append(&record(1, &[true])).unwrap();
        // A concurrent writer would race segment ids and delete the first
        // store's generations at compaction — refused up front instead.
        let err = ResponseStore::open(config.clone()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        drop(first);
        // The lock dies with the holder: reopening now succeeds.
        let second = ResponseStore::open(config).unwrap();
        assert_eq!(second.len(), 1);
        drop(second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_records_are_dropped_at_open_and_reclaimed() {
        let dir = temp_dir();
        let now = now_epoch();
        let mut config = StoreConfig::new(dir.to_str().unwrap()).with_ttl_secs(3_600);
        config.compact_threshold = 0.25;
        {
            // Write without a TTL so the stale records land on disk.
            let store = ResponseStore::open(StoreConfig::new(dir.to_str().unwrap())).unwrap();
            store.append(&record_at(1, &[true], now.saturating_sub(10_000))).unwrap();
            store.append(&record_at(2, &[true], now.saturating_sub(20_000))).unwrap();
            store.append(&record_at(3, &[true], now)).unwrap();
            store.append(&record_at(4, &[false], 0)).unwrap(); // v1-style epoch
        }
        let store = ResponseStore::open(config.clone()).unwrap();
        assert_eq!(store.recovery().records_expired, 3);
        assert_eq!(store.len(), 1, "only the fresh record survives");
        assert!(store.get(1).unwrap().is_none());
        assert!(store.get(3).unwrap().is_some());
        assert_eq!(store.stats().expired_records, 3);
        // 3 dead vs 1 live crossed the threshold: open compacted the bin.
        assert_eq!(store.stats().compactions, 1);
        assert_eq!(store.stats().dead_records, 0);
        drop(store);
        // The compacted store no longer contains the expired frames at all.
        let reopened = ResponseStore::open(config).unwrap();
        assert_eq!(reopened.recovery().records_expired, 0);
        assert_eq!(reopened.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_false_serves_stale_records_until_an_explicit_sweep() {
        let dir = temp_dir();
        let now = now_epoch();
        let mut config = StoreConfig::new(dir.to_str().unwrap()).with_ttl_secs(60);
        config.gc = false;
        config.compact_threshold = 0.25;
        let store = ResponseStore::open(config.clone()).unwrap();
        store.append(&record_at(1, &[true], now.saturating_sub(1_000))).unwrap();
        store.append(&record_at(2, &[true], now)).unwrap();
        drop(store);

        // gc = false: the stale record is still recovered and served.
        let store = ResponseStore::open(config).unwrap();
        assert_eq!(store.recovery().records_expired, 0);
        assert_eq!(store.len(), 2);
        assert!(store.get(1).unwrap().is_some());
        // The explicit sweep expires it (and compacts past the threshold).
        assert_eq!(store.gc().unwrap(), 1);
        assert_eq!(store.len(), 1);
        assert!(store.get(1).unwrap().is_none());
        assert!(store.get(2).unwrap().is_some());
        assert_eq!(store.stats().expired_records, 1);
        assert_eq!(store.gc().unwrap(), 0, "a second sweep finds nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reads_never_serve_records_that_expired_after_open() {
        // A record that outlives its TTL while the store handle stays open
        // must disappear from get()/load_live() immediately — the same
        // verdict a sharded foreign reader or the next open would reach —
        // even before gc()/compaction reclaims the frame.
        let dir = temp_dir();
        let now = now_epoch();
        let mut config = StoreConfig::new(dir.to_str().unwrap()).with_ttl_secs(3_600);
        config.compact_threshold = 100.0;
        let store = ResponseStore::open(config).unwrap();
        store.append(&record_at(1, &[true], now.saturating_sub(10_000))).unwrap();
        store.append(&record_at(2, &[true], now)).unwrap();
        assert!(store.get(1).unwrap().is_none(), "expired record is hidden from get");
        assert!(store.get(2).unwrap().is_some());
        let live = store.load_live().unwrap();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].key, 2);
        // The frame itself is still on disk until gc/compaction reclaims it.
        assert_eq!(store.len(), 2);
        assert_eq!(store.gc().unwrap(), 1);
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_filters_entries_that_expired_since_open() {
        let dir = temp_dir();
        let now = now_epoch();
        let mut config = StoreConfig::new(dir.to_str().unwrap()).with_ttl_secs(3_600);
        config.compact_threshold = 100.0; // manual compaction only
        let store = ResponseStore::open(config).unwrap();
        // Appended while the store is open (bypasses open-time expiry).
        store.append(&record_at(1, &[true], now.saturating_sub(10_000))).unwrap();
        store.append(&record_at(2, &[true], now)).unwrap();
        assert_eq!(store.len(), 2);
        store.compact().unwrap();
        assert_eq!(store.len(), 1, "the compactor drops the expired record");
        assert!(store.get(1).unwrap().is_none());
        assert_eq!(store.stats().expired_records, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policies_issue_syncs() {
        let dir = temp_dir();
        let mut config = StoreConfig::new(dir.to_str().unwrap());
        config.fsync = FsyncPolicy::Always;
        let store = ResponseStore::open(config).unwrap();
        store.append(&record(1, &[true])).unwrap();
        store.append(&record(2, &[true])).unwrap();
        assert!(store.stats().fsyncs >= 2);
        store.sync().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn maintenance_wall_times_are_accounted() {
        let dir = temp_dir();
        let mut config = StoreConfig::new(dir.to_str().unwrap());
        config.fsync = FsyncPolicy::Always;
        config.ttl_secs = 1;
        config.gc = false;
        let store = ResponseStore::open(config).unwrap();
        let stats = store.stats();
        assert!(stats.open_nanos > 0, "open wall time recorded");
        assert_eq!(stats.compaction_nanos, 0);
        assert_eq!(stats.gc_nanos, 0);

        store.append(&record(1, &[true])).unwrap();
        assert!(store.stats().fsync_nanos > 0, "Always policy timed its sync");

        store.compact().unwrap();
        let stats = store.stats();
        assert_eq!(stats.compactions, 1);
        assert!(stats.compaction_nanos > 0, "compaction wall time recorded");

        store.gc().unwrap();
        assert!(store.stats().gc_nanos > 0, "gc sweep wall time recorded");

        // Aggregation sums timing fields like any other counter.
        let doubled = stats.merge(&stats);
        assert_eq!(doubled.open_nanos, stats.open_nanos * 2);
        assert_eq!(doubled.compaction_nanos, stats.compaction_nanos * 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
