//! Read-only store inspection: what `zeroed-store-tool` prints.
//!
//! Everything in this module opens files for reading only — no advisory
//! locks are taken, no tails are truncated, no segments are deleted, so it
//! is safe to point at a store that live detector processes are writing
//! (an in-flight append shows up as a torn tail, exactly as a crash would,
//! and is reported without being "repaired").
//!
//! Three questions, three entry points:
//!
//! * [`inspect`] — *what is in this store?* Layout (sharded or flat), every
//!   segment of every writer slot, live/dead record counts after duplicate
//!   resolution, byte totals and the live records' key/kind/cost/epoch
//!   metadata (`stat` and `ls`).
//! * [`verify`] — *is it intact?* The full checksum scan, reporting torn
//!   tails, corrupt frames and unreadable headers per file (`verify`).
//! * Both work on unsharded (v1-era) directories and on the
//!   `shard-KK/writer-WWW/` layout of [`crate::ShardedStore`].

use crate::segment::{parse_segment_file_name, scan_segment, HeaderIssue};
use crate::shard::{list_writer_slots, read_meta, LastWriteWins, META_FILE};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// One segment file as the scan saw it.
#[derive(Debug)]
pub struct SegmentReport {
    /// Path of the segment file.
    pub path: PathBuf,
    /// Segment id parsed from the file name.
    pub id: u64,
    /// Format version from the header (0 when the header is unusable).
    pub format: u16,
    /// Why the segment was skipped wholesale, if it was.
    pub header_issue: Option<HeaderIssue>,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Records recovered by the scan.
    pub records: usize,
    /// Whether the scan hit a torn/corrupt tail.
    pub torn: bool,
    /// Bytes of the valid prefix (header + intact frames).
    pub valid_bytes: u64,
    /// Bytes past the valid prefix.
    pub discarded_bytes: u64,
}

/// One segment directory (the flat root, or one writer slot of one shard).
#[derive(Debug)]
pub struct UnitReport {
    /// The directory scanned.
    pub dir: PathBuf,
    /// Shard index (`None` for an unsharded root).
    pub shard: Option<usize>,
    /// Writer-slot index (`None` for an unsharded root).
    pub slot: Option<usize>,
    /// Per-segment scan results, in segment-id order.
    pub segments: Vec<SegmentReport>,
    /// Distinct live keys within this unit (duplicates resolved
    /// last-write-wins, exactly as recovery resolves them).
    pub live_records: usize,
    /// Superseded records within this unit (dead weight awaiting the
    /// owner's compaction).
    pub dead_records: usize,
}

/// Metadata of one live record (the payload value itself is not retained).
#[derive(Debug, Clone, Copy)]
pub struct LiveEntry {
    /// The 128-bit request key.
    pub key: u128,
    /// Response kind ([`crate::ResponseValue::kind_name`]).
    pub kind: &'static str,
    /// Prompt tokens the original call consumed.
    pub input_tokens: u64,
    /// Completion tokens the original call produced.
    pub output_tokens: u64,
    /// Written-at epoch (0 for v1 records).
    pub epoch: u64,
}

/// Everything [`inspect`] found.
#[derive(Debug)]
pub struct InspectReport {
    /// The store root.
    pub root: PathBuf,
    /// Whether the root uses the sharded layout.
    pub sharded: bool,
    /// Shard count (1 when unsharded).
    pub shard_count: usize,
    /// Every segment directory scanned.
    pub units: Vec<UnitReport>,
    /// Live records after global duplicate resolution (across writer slots;
    /// content-addressed keys make cross-slot duplicates interchangeable).
    pub live: Vec<LiveEntry>,
    /// Total bytes across every segment file.
    pub total_file_bytes: u64,
}

impl InspectReport {
    /// Dead records across all units (superseded within their unit; dead
    /// weight the owning writers' compactors will reclaim).
    pub fn dead_records(&self) -> usize {
        self.units.iter().map(|u| u.dead_records).sum()
    }

    /// `(min, max)` written-at epoch over the live records that carry one.
    /// `None` when no record does (an empty store, or a pure v1-era store
    /// whose records decode with epoch 0 — "no timestamp", not "1970").
    pub fn epoch_range(&self) -> Option<(u64, u64)> {
        let mut range: Option<(u64, u64)> = None;
        for entry in self.live.iter().filter(|e| e.epoch > 0) {
            range = Some(match range {
                None => (entry.epoch, entry.epoch),
                Some((min, max)) => (min.min(entry.epoch), max.max(entry.epoch)),
            });
        }
        range
    }

    /// Live-record counts per response kind, sorted by kind name.
    pub fn kind_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for entry in &self.live {
            *counts.entry(entry.kind).or_insert(0) += 1;
        }
        let mut out: Vec<_> = counts.into_iter().collect();
        out.sort();
        out
    }
}

/// One integrity problem [`verify`] found.
#[derive(Debug)]
pub enum VerifyIssue {
    /// A segment whose tail failed the checksum scan (torn write, bit rot,
    /// or a concurrent writer's in-flight append).
    TornTail {
        /// The damaged file.
        path: PathBuf,
        /// Intact records before the damage.
        records_recovered: usize,
        /// Bytes of the valid prefix.
        valid_bytes: u64,
        /// Bytes past it.
        discarded_bytes: u64,
    },
    /// A segment whose header could not be used (foreign file, damaged
    /// first sector, or a format/key-schema version this build cannot read).
    UnreadableHeader {
        /// The skipped file.
        path: PathBuf,
        /// What was wrong with the header.
        issue: HeaderIssue,
        /// Total file size.
        file_bytes: u64,
    },
}

impl VerifyIssue {
    /// The file the issue concerns.
    pub fn path(&self) -> &Path {
        match self {
            VerifyIssue::TornTail { path, .. } => path,
            VerifyIssue::UnreadableHeader { path, .. } => path,
        }
    }
}

/// Lists every segment directory under `root`: the root itself when the
/// layout is flat, otherwise each `shard-KK/writer-WWW/`.
fn segment_units(root: &Path) -> io::Result<(bool, usize, Vec<(Option<usize>, Option<usize>, PathBuf)>)> {
    let shard_count = read_meta(&root.join(META_FILE))?.unwrap_or(1);
    if shard_count <= 1 {
        return Ok((false, 1, vec![(None, None, root.to_path_buf())]));
    }
    let mut units = Vec::new();
    for shard in 0..shard_count {
        let shard_dir = root.join(format!("shard-{shard:02}"));
        let mut slots = list_writer_slots(&shard_dir)?;
        slots.sort_by_key(|&(index, _)| index);
        for (slot, dir) in slots {
            units.push((Some(shard), Some(slot), dir));
        }
    }
    Ok((true, shard_count, units))
}

fn scan_unit(
    shard: Option<usize>,
    slot: Option<usize>,
    dir: &Path,
    live: &mut LastWriteWins<LiveEntry>,
) -> io::Result<UnitReport> {
    let mut segment_ids: Vec<u64> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|entry| {
                let entry = entry.ok()?;
                parse_segment_file_name(entry.file_name().to_str()?)
            })
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    segment_ids.sort_unstable();

    let mut segments = Vec::with_capacity(segment_ids.len());
    let mut unit_keys: HashMap<u128, usize> = HashMap::new();
    let mut unit_records = 0usize;
    for id in segment_ids {
        let path = dir.join(crate::segment::segment_file_name(id));
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        let scan = scan_segment(&bytes);
        for scanned in &scan.records {
            unit_records += 1;
            *unit_keys.entry(scanned.record.key).or_insert(0) += 1;
            let entry = LiveEntry {
                key: scanned.record.key,
                kind: scanned.record.value.kind_name(),
                input_tokens: scanned.record.input_tokens,
                output_tokens: scanned.record.output_tokens,
                epoch: scanned.record.epoch,
            };
            live.insert(entry.key, entry);
        }
        segments.push(SegmentReport {
            path,
            id,
            format: scan.format,
            header_issue: scan.header_issue,
            file_bytes: bytes.len() as u64,
            records: scan.records.len(),
            torn: scan.torn,
            valid_bytes: scan.valid_len,
            discarded_bytes: scan.discarded_bytes,
        });
    }
    Ok(UnitReport {
        dir: dir.to_path_buf(),
        shard,
        slot,
        segments,
        live_records: unit_keys.len(),
        dead_records: unit_records - unit_keys.len(),
    })
}

/// Scans the store at `root` without mutating it (see the module docs).
pub fn inspect(root: &Path) -> io::Result<InspectReport> {
    let (sharded, shard_count, unit_dirs) = segment_units(root)?;
    let mut live = LastWriteWins::new();
    let mut units = Vec::with_capacity(unit_dirs.len());
    for (shard, slot, dir) in unit_dirs {
        units.push(scan_unit(shard, slot, &dir, &mut live)?);
    }
    let total_file_bytes = units
        .iter()
        .flat_map(|u| u.segments.iter())
        .map(|s| s.file_bytes)
        .sum();
    Ok(InspectReport {
        root: root.to_path_buf(),
        sharded,
        shard_count,
        units,
        live: live.into_vec(),
        total_file_bytes,
    })
}

/// Runs the full checksum scan over every segment of every unit and returns
/// the problems found (empty = clean). Strictly read-only: a deliberately
/// truncated segment is *reported*, with its exact recovered-prefix length,
/// and left byte-for-byte untouched.
pub fn verify(root: &Path) -> io::Result<Vec<VerifyIssue>> {
    let report = inspect(root)?;
    let mut issues = Vec::new();
    for unit in report.units {
        for segment in unit.segments {
            if let Some(issue) = segment.header_issue {
                issues.push(VerifyIssue::UnreadableHeader {
                    path: segment.path,
                    issue,
                    file_bytes: segment.file_bytes,
                });
            } else if segment.torn {
                issues.push(VerifyIssue::TornTail {
                    path: segment.path,
                    records_recovered: segment.records,
                    valid_bytes: segment.valid_bytes,
                    discarded_bytes: segment.discarded_bytes,
                });
            }
        }
    }
    Ok(issues)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{now_epoch, ResponseValue, StoreRecord};
    use crate::store::{ResponseStore, StoreConfig};
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

    fn temp_dir() -> PathBuf {
        let n = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!(
            "zeroed-inspect-unit-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(key: u128) -> StoreRecord {
        StoreRecord {
            key,
            input_tokens: 100 + key as u64,
            output_tokens: key as u64,
            epoch: now_epoch(),
            value: ResponseValue::Flags(vec![true]),
        }
    }

    /// Byte-level snapshot of every file under a directory tree.
    fn snapshot(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
        let mut files = Vec::new();
        let mut stack = vec![dir.to_path_buf()];
        while let Some(current) = stack.pop() {
            for entry in std::fs::read_dir(&current).unwrap().flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else {
                    files.push((path.clone(), std::fs::read(&path).unwrap()));
                }
            }
        }
        files.sort();
        files
    }

    #[test]
    fn inspect_reports_flat_stores() {
        let dir = temp_dir();
        let mut config = StoreConfig::new(dir.to_str().unwrap());
        config.compact_threshold = 100.0;
        let store = ResponseStore::open(config).unwrap();
        store.append(&record(1)).unwrap();
        store.append(&record(2)).unwrap();
        store.append(&record(1)).unwrap(); // supersede → 1 dead
        store.sync().unwrap();

        let report = inspect(&dir).unwrap();
        assert!(!report.sharded);
        assert_eq!(report.shard_count, 1);
        assert_eq!(report.units.len(), 1);
        assert_eq!(report.live.len(), 2);
        assert_eq!(report.dead_records(), 1);
        assert!(report.total_file_bytes > 0);
        assert_eq!(report.kind_counts(), vec![("flags", 2)]);
        let (min, max) = report.epoch_range().unwrap();
        assert!(min <= max && max <= now_epoch());
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inspect_walks_sharded_layouts() {
        let dir = temp_dir();
        let config = StoreConfig::new(dir.to_str().unwrap()).with_shards(3);
        let store = crate::ShardedStore::open(config).unwrap();
        for key in 0..12u128 {
            store.append(&record(key)).unwrap();
        }
        store.sync().unwrap();
        let report = inspect(&dir).unwrap();
        assert!(report.sharded);
        assert_eq!(report.shard_count, 3);
        assert_eq!(report.units.len(), 3, "one claimed slot per shard");
        assert_eq!(report.live.len(), 12);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_flags_a_truncated_segment_without_modifying_anything() {
        let dir = temp_dir();
        let store = ResponseStore::open(StoreConfig::new(dir.to_str().unwrap())).unwrap();
        for key in 0..5u128 {
            store.append(&record(key)).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        assert!(verify(&dir).unwrap().is_empty(), "clean store verifies clean");

        // Deliberately truncate the segment mid-frame.
        let segment = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "zseg"))
            .unwrap();
        let bytes = std::fs::read(&segment).unwrap();
        std::fs::write(&segment, &bytes[..bytes.len() - 7]).unwrap();

        let before = snapshot(&dir);
        let issues = verify(&dir).unwrap();
        let after = snapshot(&dir);
        assert_eq!(before, after, "verify must not modify the store");

        assert_eq!(issues.len(), 1);
        match &issues[0] {
            VerifyIssue::TornTail {
                path,
                records_recovered,
                valid_bytes,
                discarded_bytes,
            } => {
                assert_eq!(path, &segment);
                assert_eq!(*records_recovered, 4);
                assert!(*valid_bytes > 0 && *discarded_bytes > 0);
            }
            other => panic!("expected a torn tail, got {other:?}"),
        }

        // A garbage file is reported as an unreadable header.
        std::fs::write(dir.join("seg-000042.zseg"), vec![0u8; 64]).unwrap();
        let issues = verify(&dir).unwrap();
        assert_eq!(issues.len(), 2);
        assert!(issues.iter().any(|i| matches!(
            i,
            VerifyIssue::UnreadableHeader {
                issue: HeaderIssue::BadMagic,
                ..
            }
        )));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
