//! Segment files: versioned headers, sequential record frames and the
//! recovery scan.
//!
//! A segment is an append-only file `seg-NNNNNN.zseg`:
//!
//! ```text
//! ┌──────────────────────────── header (28 bytes) ────────────────────────────┐
//! │ magic "ZEDSTOR1" │ format u16 │ key schema u16 │ segment id u64 │ cksum u64│
//! └───────────────────────────────────────────────────────────────────────────┘
//! ┌── record frame ──┐┌── record frame ──┐ ...
//! │ len u32 │ cksum u64 │ payload (len bytes) │
//! └──────────────────┘
//! ```
//!
//! The recovery scan walks frames front to back and stops at the first
//! inconsistency — a frame that runs past the end of the file (torn tail), a
//! checksum mismatch (bit rot / partial write) or a payload that fails to
//! decode. Everything before that point is recovered; everything after is
//! reported as discarded and the caller truncates the file at the boundary.
//! A segment whose header is damaged or whose versions do not match is
//! skipped wholesale — recovery never refuses to open a store.

use crate::codec::{
    checksum64, decode_payload, StoreRecord, FORMAT_VERSION, FRAME_PREFIX_LEN, KEY_SCHEMA_VERSION,
    MIN_READ_FORMAT_VERSION,
};

/// Magic bytes opening every segment file.
pub const MAGIC: [u8; 8] = *b"ZEDSTOR1";

/// Byte length of the segment header.
pub const HEADER_LEN: usize = 28;

/// Renders the file name of segment `id`.
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:06}.zseg")
}

/// Parses a segment id back out of a file name produced by
/// [`segment_file_name`].
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let stem = name.strip_prefix("seg-")?.strip_suffix(".zseg")?;
    stem.parse().ok()
}

/// Encodes a segment header for segment `id` at the current format and key
/// schema versions.
pub fn encode_header(id: u64) -> [u8; HEADER_LEN] {
    let mut out = [0u8; HEADER_LEN];
    out[0..8].copy_from_slice(&MAGIC);
    out[8..10].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    out[10..12].copy_from_slice(&KEY_SCHEMA_VERSION.to_le_bytes());
    out[12..20].copy_from_slice(&id.to_le_bytes());
    let checksum = checksum64(&out[0..20]);
    out[20..28].copy_from_slice(&checksum.to_le_bytes());
    out
}

/// Why a segment's contents were not usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderIssue {
    /// File shorter than a header.
    TooShort,
    /// Magic bytes wrong (not a segment file / first sector lost).
    BadMagic,
    /// Header checksum mismatch.
    BadChecksum,
    /// Format version outside the range this build can read
    /// (`MIN_READ_FORMAT_VERSION..=FORMAT_VERSION`).
    FormatVersion,
    /// Key-schema version is not the one this build's request keys follow
    /// (entries would be unreachable or, worse, wrongly reachable).
    KeySchemaVersion,
}

/// Validates a segment header, returning the encoded segment id and the
/// format version its frames were written at (any version in
/// `MIN_READ_FORMAT_VERSION..=FORMAT_VERSION` is readable — older formats
/// decode through their original frame layout).
pub fn decode_header(bytes: &[u8]) -> Result<(u64, u16), HeaderIssue> {
    if bytes.len() < HEADER_LEN {
        return Err(HeaderIssue::TooShort);
    }
    if bytes[0..8] != MAGIC {
        return Err(HeaderIssue::BadMagic);
    }
    let stored = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    if stored != checksum64(&bytes[0..20]) {
        return Err(HeaderIssue::BadChecksum);
    }
    let format = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
    if !(MIN_READ_FORMAT_VERSION..=FORMAT_VERSION).contains(&format) {
        return Err(HeaderIssue::FormatVersion);
    }
    let key_schema = u16::from_le_bytes(bytes[10..12].try_into().unwrap());
    if key_schema != KEY_SCHEMA_VERSION {
        return Err(HeaderIssue::KeySchemaVersion);
    }
    Ok((u64::from_le_bytes(bytes[12..20].try_into().unwrap()), format))
}

/// One recovered record and where its frame starts in the segment.
#[derive(Debug)]
pub struct ScannedRecord {
    /// Byte offset of the frame (length prefix) within the segment file.
    pub offset: u64,
    /// Total frame length in bytes (prefix + payload).
    pub frame_len: u32,
    /// The decoded record.
    pub record: StoreRecord,
}

/// Outcome of scanning one segment's bytes.
#[derive(Debug)]
pub struct SegmentScan {
    /// Format version the segment's frames were written at (0 when the
    /// header was unusable).
    pub format: u16,
    /// Records recovered, in file order.
    pub records: Vec<ScannedRecord>,
    /// Byte length of the valid prefix (header + recovered frames). When
    /// shorter than the file, the caller truncates to this length.
    pub valid_len: u64,
    /// Bytes past the valid prefix (the torn/corrupt tail).
    pub discarded_bytes: u64,
    /// Whether a corrupt tail was found (`discarded_bytes` may be zero for a
    /// frame torn exactly at its length prefix).
    pub torn: bool,
    /// Header problem, if the segment was skipped wholesale.
    pub header_issue: Option<HeaderIssue>,
}

/// Scans a full segment image, recovering the longest valid record prefix.
/// Frames are decoded at the format version the header declares, so v1
/// segments (no per-record epoch) recover exactly.
pub fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let format = match decode_header(bytes) {
        Ok((_, format)) => format,
        Err(issue) => {
            return SegmentScan {
                format: 0,
                records: Vec::new(),
                valid_len: 0,
                discarded_bytes: bytes.len() as u64,
                torn: !bytes.is_empty(),
                header_issue: Some(issue),
            };
        }
    };
    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        if pos == bytes.len() {
            // Clean end of segment.
            return SegmentScan {
                format,
                records,
                valid_len: pos as u64,
                discarded_bytes: 0,
                torn: false,
                header_issue: None,
            };
        }
        let frame_ok = (|| {
            if bytes.len() - pos < FRAME_PREFIX_LEN {
                return None; // torn inside the prefix
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
            let start = pos + FRAME_PREFIX_LEN;
            if bytes.len() - start < len {
                return None; // torn inside the payload
            }
            let payload = &bytes[start..start + len];
            if checksum64(payload) != checksum {
                return None; // bit rot / partial overwrite
            }
            let record = decode_payload(payload, format).ok()?;
            Some(ScannedRecord {
                offset: pos as u64,
                frame_len: (FRAME_PREFIX_LEN + len) as u32,
                record,
            })
        })();
        match frame_ok {
            Some(scanned) => {
                pos += scanned.frame_len as usize;
                records.push(scanned);
            }
            None => {
                return SegmentScan {
                    format,
                    records,
                    valid_len: pos as u64,
                    discarded_bytes: (bytes.len() - pos) as u64,
                    torn: true,
                    header_issue: None,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode_record, ResponseValue};

    fn record(key: u128, flag: bool) -> StoreRecord {
        StoreRecord {
            key,
            input_tokens: 10,
            output_tokens: 2,
            epoch: 1_000 + key as u64,
            value: ResponseValue::Flags(vec![flag]),
        }
    }

    fn segment_with(records: &[StoreRecord]) -> Vec<u8> {
        let mut bytes = encode_header(7).to_vec();
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
        }
        bytes
    }

    #[test]
    fn header_round_trips_and_rejects_tampering() {
        let header = encode_header(42);
        assert_eq!(decode_header(&header), Ok((42, FORMAT_VERSION)));
        assert_eq!(decode_header(&header[..10]), Err(HeaderIssue::TooShort));
        let mut bad_magic = header;
        bad_magic[0] ^= 0xff;
        assert_eq!(decode_header(&bad_magic), Err(HeaderIssue::BadMagic));
        let mut bad_id = encode_header(42);
        bad_id[12] ^= 1; // id changed without re-checksumming
        assert_eq!(decode_header(&bad_id), Err(HeaderIssue::BadChecksum));
    }

    #[test]
    fn version_mismatches_are_detected() {
        let mut wrong_format = encode_header(1);
        wrong_format[8..10].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let checksum = checksum64(&wrong_format[0..20]);
        wrong_format[20..28].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(decode_header(&wrong_format), Err(HeaderIssue::FormatVersion));

        let mut wrong_schema = encode_header(1);
        wrong_schema[10..12].copy_from_slice(&(KEY_SCHEMA_VERSION + 1).to_le_bytes());
        let checksum = checksum64(&wrong_schema[0..20]);
        wrong_schema[20..28].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            decode_header(&wrong_schema),
            Err(HeaderIssue::KeySchemaVersion)
        );
    }

    /// Builds a v1 segment image: v1 header plus frames whose payloads carry
    /// no epoch (the 8 bytes at offset 32..40 of a v2 payload spliced out).
    fn v1_segment_with(records: &[StoreRecord]) -> Vec<u8> {
        let mut header = encode_header(3);
        header[8..10].copy_from_slice(&1u16.to_le_bytes());
        let checksum = checksum64(&header[0..20]);
        header[20..28].copy_from_slice(&checksum.to_le_bytes());
        let mut bytes = header.to_vec();
        for r in records {
            let v2 = crate::codec::encode_payload(r);
            let mut v1 = v2[..32].to_vec();
            v1.extend_from_slice(&v2[40..]);
            bytes.extend_from_slice(&(v1.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&checksum64(&v1).to_le_bytes());
            bytes.extend_from_slice(&v1);
        }
        bytes
    }

    #[test]
    fn v1_segments_scan_with_epoch_zero() {
        let bytes = v1_segment_with(&[record(1, true), record(2, false)]);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.header_issue, None, "v1 headers stay readable");
        assert_eq!(scan.format, 1);
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), 2);
        for (i, scanned) in scan.records.iter().enumerate() {
            assert_eq!(scanned.record.key, i as u128 + 1);
            assert_eq!(scanned.record.epoch, 0, "v1 records decode as epoch 0");
        }
        // A torn v1 tail truncates exactly like a v2 one.
        let torn = scan_segment(&bytes[..bytes.len() - 3]);
        assert!(torn.torn);
        assert_eq!(torn.records.len(), 1);
    }

    #[test]
    fn scan_recovers_all_records_from_a_clean_segment() {
        let bytes = segment_with(&[record(1, true), record(2, false), record(3, true)]);
        let scan = scan_segment(&bytes);
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.records[1].record.key, 2);
    }

    #[test]
    fn scan_truncates_at_a_torn_tail() {
        let full = segment_with(&[record(1, true), record(2, false)]);
        let second_frame_at = scan_segment(&full).records[1].offset as usize;
        // Cut mid-way through the second frame: only the first survives.
        for cut in second_frame_at + 1..full.len() {
            let scan = scan_segment(&full[..cut]);
            assert!(scan.torn, "cut at {cut}");
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len as usize, second_frame_at, "cut at {cut}");
            assert_eq!(scan.discarded_bytes as usize, cut - second_frame_at);
        }
    }

    #[test]
    fn scan_stops_at_a_flipped_bit() {
        let full = segment_with(&[record(1, true), record(2, false), record(3, true)]);
        let second_frame_at = scan_segment(&full).records[1].offset as usize;
        let mut corrupt = full.clone();
        corrupt[second_frame_at + FRAME_PREFIX_LEN + 3] ^= 0x40;
        let scan = scan_segment(&corrupt);
        assert!(scan.torn);
        assert_eq!(scan.records.len(), 1, "records after the flip are lost");
        assert_eq!(scan.valid_len as usize, second_frame_at);
    }

    #[test]
    fn scan_skips_segments_with_broken_headers() {
        assert_eq!(
            scan_segment(&[]).header_issue,
            Some(HeaderIssue::TooShort),
            "zero-length segment"
        );
        let scan = scan_segment(b"garbage that is long enough to not be short");
        assert_eq!(scan.header_issue, Some(HeaderIssue::BadMagic));
        assert_eq!(scan.records.len(), 0);
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(segment_file_name(7), "seg-000007.zseg");
        assert_eq!(parse_segment_file_name("seg-000007.zseg"), Some(7));
        assert_eq!(parse_segment_file_name("seg-1000000.zseg"), Some(1_000_000));
        assert_eq!(parse_segment_file_name("seg-x.zseg"), None);
        assert_eq!(parse_segment_file_name("other.bin"), None);
    }
}
